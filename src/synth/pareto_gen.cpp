#include "synth/pareto_gen.h"

#include <algorithm>
#include <cmath>

namespace ermes::synth {

using sysmodel::Implementation;
using sysmodel::ParetoSet;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

ParetoSet generate_pareto_set(std::int64_t base_latency, double base_area,
                              std::size_t points, util::Rng& rng,
                              const ParetoGenConfig& config) {
  points = std::max<std::size_t>(1, points);
  ParetoSet set;
  // Point k (0-based) halves the latency k times relative to the base and
  // multiplies the area accordingly. The base point is the slowest/smallest.
  for (std::size_t k = 0; k < points; ++k) {
    Implementation impl;
    impl.name = "u" + std::to_string(std::size_t{1} << k);  // unroll factor
    const double speedup = std::pow(2.0, static_cast<double>(k)) *
                           (1.0 + rng.uniform_real(-config.jitter / 2,
                                                   config.jitter / 2));
    impl.latency = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               static_cast<double>(base_latency) / speedup)));
    const double factor =
        std::pow(config.area_per_speedup, static_cast<double>(k)) *
        (1.0 + rng.uniform_real(-config.jitter, config.jitter));
    impl.area = base_area * factor;
    set.add(impl);
  }
  set.prune_to_frontier();
  return set;
}

std::size_t attach_pareto_sets(SystemModel& sys, std::uint64_t seed,
                               const ParetoGenConfig& config) {
  util::Rng rng(seed);
  std::size_t total = 0;
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (sys.is_source(p) || sys.is_sink(p) || sys.primed(p)) continue;
    if (sys.process_name(p).rfind("relay", 0) == 0) continue;
    const std::size_t points = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_points),
        static_cast<std::int64_t>(config.max_points)));
    const double base_area =
        sys.area(p) > 0.0 ? sys.area(p)
                          : 0.01 * static_cast<double>(sys.latency(p) + 1);
    ParetoSet set =
        generate_pareto_set(sys.latency(p), base_area, points, rng, config);
    total += set.size();
    // Keep the process at its slowest/smallest point: the last of the
    // frontier in latency order is the base implementation.
    const std::size_t base_index = set.size() - 1;
    sys.set_implementations(p, std::move(set), base_index);
  }
  return total;
}

}  // namespace ermes::synth
