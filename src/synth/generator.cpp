#include "synth/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace ermes::synth {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

sysmodel::SystemModel generate_soc(const GeneratorConfig& config) {
  util::Rng rng(config.seed);
  const std::int32_t n_total = std::max<std::int32_t>(3, config.num_processes);

  // Feedback loops: each consumes two relay processes (a plain one and a
  // primed one, i.e. a double-buffered register stage) and three channels.
  // The double buffer is what makes rendezvous feedback robust: a TMG cycle
  // threading the pair crosses a token in either direction, so no token-free
  // cycle can ride the loop.
  std::int32_t feedback =
      static_cast<std::int32_t>(std::llround(
          config.feedback_fraction *
          std::max<std::int32_t>(0, config.num_channels - n_total)));
  feedback = std::min(feedback, (n_total - 3) / 6);
  feedback = std::max(feedback, 0);

  const std::int32_t core_count = n_total - 2 - 2 * feedback;
  assert(core_count >= 1);
  const std::int32_t layers =
      config.num_layers > 0
          ? std::min(config.num_layers, core_count)
          : std::max<std::int32_t>(
                2, static_cast<std::int32_t>(std::lround(
                       std::sqrt(static_cast<double>(core_count)))));

  auto proc_latency = [&] {
    return rng.uniform_int(config.min_process_latency,
                           config.max_process_latency);
  };
  auto chan_latency = [&] {
    return rng.uniform_int(config.min_channel_latency,
                           config.max_channel_latency);
  };

  SystemModel sys;
  const ProcessId src = sys.add_process("src", proc_latency());
  std::vector<std::vector<ProcessId>> layer(
      static_cast<std::size_t>(layers));
  for (std::int32_t i = 0; i < core_count; ++i) {
    const auto l = static_cast<std::size_t>(
        std::min<std::int32_t>(layers - 1, i * layers / core_count));
    const ProcessId p = sys.add_process(
        "p" + std::to_string(l) + "_" + std::to_string(layer[l].size()),
        proc_latency());
    layer[l].push_back(p);
  }
  const ProcessId snk = sys.add_process("snk", proc_latency());

  std::int32_t chan_counter = 0;
  std::set<std::pair<ProcessId, ProcessId>> used_pairs;
  auto add_channel = [&](ProcessId from, ProcessId to) -> bool {
    if (from == to) return false;
    if (!used_pairs.insert({from, to}).second) return false;
    sys.add_channel("c" + std::to_string(chan_counter++), from, to,
                    chan_latency());
    return true;
  };

  // Backbone: each core process gets one incoming channel from the previous
  // layer (layer 0 from the source).
  for (std::size_t l = 0; l < layer.size(); ++l) {
    for (ProcessId p : layer[l]) {
      const ProcessId from =
          l == 0 ? src : layer[l - 1][rng.index(layer[l - 1].size())];
      add_channel(from, p);
    }
  }

  // Out-degree fix, last layer first: every process must reach the sink.
  for (std::size_t l = layer.size(); l-- > 0;) {
    for (ProcessId p : layer[l]) {
      if (!sys.output_order(p).empty()) continue;
      if (l + 1 < layer.size()) {
        const auto& next = layer[l + 1];
        if (add_channel(p, next[rng.index(next.size())])) continue;
      }
      add_channel(p, snk);
    }
  }

  // Reconvergent forward extras until the forward budget is met.
  const std::int32_t forward_budget =
      std::max(sys.num_channels(),
               config.num_channels - 3 * feedback);
  std::int32_t attempts = 0;
  while (sys.num_channels() < forward_budget &&
         attempts < 20 * forward_budget) {
    ++attempts;
    const auto li = rng.index(layer.size());
    if (layer[li].empty()) continue;
    const ProcessId from = layer[li][rng.index(layer[li].size())];
    // Prefer short skips (reconvergence) but allow long ones.
    const std::size_t max_skip = layer.size() - li;
    ProcessId to;
    if (max_skip <= 1 || rng.flip(0.2)) {
      to = snk;
    } else {
      const std::size_t lj =
          li + 1 + rng.index(std::min<std::size_t>(max_skip - 1, 3));
      const auto& tgt = layer[std::min(lj, layer.size() - 1)];
      if (tgt.empty()) continue;
      to = tgt[rng.index(tgt.size())];
    }
    add_channel(from, to);
  }

  // Feedback loops through double-buffered relay pairs. Every budgeted
  // relay pair is placed (the process count is part of the generator
  // contract); a loop from a process back to itself via the relays is legal
  // and still a cycle.
  for (std::int32_t k = 0; k < feedback; ++k) {
    const std::size_t j =
        layer.size() > 1 ? 1 + rng.index(layer.size() - 1) : 0;
    const std::size_t i = rng.index(j + 1);
    const ProcessId from = layer[j][rng.index(layer[j].size())];
    const ProcessId to = layer[i][rng.index(layer[i].size())];
    const ProcessId relay_a =
        sys.add_process("relay" + std::to_string(k) + "_a", 1);
    const ProcessId relay_b =
        sys.add_process("relay" + std::to_string(k) + "_b", 1);
    sys.set_primed(relay_b, true);
    add_channel(from, relay_a);
    add_channel(relay_a, relay_b);
    add_channel(relay_b, to);
  }

  return sys;
}

}  // namespace ermes::synth
