#pragma once
// Pareto-set generation — the HLS characterization stand-in.
//
// A commercial HLS tool driven by knobs (loop unrolling, pipelining,
// resource sharing) produces a latency/area Pareto frontier per process; the
// paper obtains 171 such points for the 26 MPEG-2 processes via the
// compositional DSE of Liu-Carloni (DATE'12). This module synthesizes
// frontiers with the same qualitative shape: halving latency costs roughly
// 1.6-2.2x area (duplicated functional units plus control overhead).

#include <cstdint>

#include "sysmodel/implementation.h"
#include "sysmodel/system.h"
#include "util/rng.h"

namespace ermes::synth {

struct ParetoGenConfig {
  std::size_t min_points = 2;
  std::size_t max_points = 8;
  /// Area multiplier per 2x speedup, jittered per point.
  double area_per_speedup = 1.9;
  double jitter = 0.15;
};

/// Generates a frontier around (base_latency, base_area): `points`
/// implementations spanning roughly [base/2^(k-1), base] latency.
sysmodel::ParetoSet generate_pareto_set(std::int64_t base_latency,
                                        double base_area, std::size_t points,
                                        util::Rng& rng,
                                        const ParetoGenConfig& config = {});

/// Attaches generated Pareto sets to every non-testbench process of `sys`
/// (sources/sinks and primed relays keep fixed implementations). The
/// current latency/area of each process is kept as the *selected* point
/// (slowest/smallest of its new frontier by default). Returns the number of
/// Pareto points created.
std::size_t attach_pareto_sets(sysmodel::SystemModel& sys, std::uint64_t seed,
                               const ParetoGenConfig& config = {});

}  // namespace ermes::synth
