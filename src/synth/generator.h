#pragma once
// Synthetic SoC benchmark generator (paper Section 6, scalability study).
//
// Generates layered system graphs "with characteristics similar to those of
// the MPEG-2, including the presence of feedback loops and reconvergent
// paths": a testbench source feeding a layered core, extra skip-layer
// channels (reconvergence), and feedback channels routed through primed
// relay processes (the register stage every real feedback loop carries, and
// what keeps a rendezvous loop deadlock-free at all).

#include <cstdint>

#include "sysmodel/system.h"
#include "util/rng.h"

namespace ermes::synth {

struct GeneratorConfig {
  /// Total processes including the testbench source/sink and any feedback
  /// relay processes (>= 3).
  std::int32_t num_processes = 32;
  /// Target channel count; clamped up to the spanning backbone if needed.
  std::int32_t num_channels = 48;
  /// Layers of the core pipeline; 0 = choose automatically (~sqrt(N)).
  std::int32_t num_layers = 0;
  /// Fraction of the extra (non-backbone) channels that become feedback
  /// loops (each consumes one relay process from the budget).
  double feedback_fraction = 0.1;
  std::int64_t min_channel_latency = 1;
  std::int64_t max_channel_latency = 64;
  std::int64_t min_process_latency = 1;
  std::int64_t max_process_latency = 64;
  std::uint64_t seed = 1;
};

/// Generates a connected system: every process reachable from the source
/// and reaching the sink, no self-loops, feedback via primed relays.
sysmodel::SystemModel generate_soc(const GeneratorConfig& config);

}  // namespace ermes::synth
