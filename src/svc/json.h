#pragma once
// Minimal JSON document model for the analysis-service protocol.
//
// The NDJSON protocol (src/svc/protocol.h) needs a real JSON *parser* —
// unlike the telemetry exporters (obs/json.h), which only emit — because the
// daemon reads requests from untrusted clients. The parser is a strict
// recursive-descent over the RFC 8259 grammar with a hard nesting-depth
// limit, so hostile input (malformed, truncated, deeply nested) produces a
// structured error and never a crash, an uncaught throw, or unbounded
// recursion.
//
// The value model is deliberately small: one tagged struct, object members
// in insertion order (serialization is deterministic), numbers kept both as
// double and — when the literal is integral and in range — as an exact
// int64. A kRaw kind splices pre-serialized JSON (e.g. the obs registry
// snapshot) into a document without reparsing it.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ermes::svc {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject, kRaw };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double value);
  static JsonValue integer(std::int64_t value);
  static JsonValue string(std::string_view s);
  static JsonValue array();
  static JsonValue object();
  /// Pre-serialized JSON emitted verbatim. The caller vouches for validity.
  static JsonValue raw(std::string json);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True when the number has an exact int64 value (integer literals in
  /// range, and integral doubles — "2e0" counts; "1.5" and 2^63 do not).
  bool is_integer() const { return kind_ == Kind::kNumber && is_int_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int() const { return int_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Appends to an array (no-op with an assert-free pass on other kinds).
  void push_back(JsonValue value);
  /// Sets an object member (appends; last set wins on serialization by
  /// overwriting the existing slot).
  void set(std::string_view key, JsonValue value);
  /// Appends an object member without scanning for an existing slot — the
  /// parser's O(1) path, which has already rejected duplicate keys.
  void append_member(std::string key, JsonValue value);

  /// Compact, deterministic serialization (no whitespace, members in
  /// insertion order, UTF-8 passed through, control characters escaped).
  std::string to_string() const;

 private:
  void append_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;  // string payload or raw JSON
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // with a byte offset
  JsonValue value;
};

inline constexpr int kJsonMaxDepth = 64;

/// Strict parse of one JSON document (trailing non-whitespace is an error).
/// Never throws; depth beyond `max_depth` and any syntax error return a
/// structured failure.
JsonParseResult json_parse(std::string_view text, int max_depth = kJsonMaxDepth);

}  // namespace ermes::svc
