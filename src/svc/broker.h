#pragma once
// Request broker of the analysis service: admission control, deadlines, and
// execution of protocol requests on a shared thread pool + warm cache.
//
// The broker is the transport-free core of `ermes serve` (the socket layer
// in svc/server.h feeds it lines and writes back whatever it produces), so
// every production behaviour is testable in-process:
//
//   * Bounded admission: at most `queue_depth` requests may be admitted but
//     not yet executing; request number queue_depth+1 is rejected with
//     `overloaded` immediately instead of blocking the connection. Heavy
//     requests therefore shed load instead of accumulating unbounded memory
//     and latency — the client retries against a healthier instant.
//   * Deadlines: an admitted request carries an absolute deadline (its
//     `deadline_ms`, else the broker default, else none). Expiry is checked
//     before execution starts and cooperatively between DSE iterations /
//     sweep points through dse::ExplorerOptions::should_stop; an expired
//     request returns `deadline_exceeded` and frees its worker — it is never
//     hard-killed, so caches and metrics stay coherent.
//   * One process-wide warm analysis::EvalCache shared by all clients and
//     requests: repeat targets (the DSE exploration-pressure workload) hit
//     the memo across connections, which is the entire point of running
//     ERMES as a daemon rather than a cold CLI process per evaluation.
//   * Request coalescing: an admitted pure request (analyze/order/explore/
//     sweep) publishes its coalesce key — a 64-bit mix of op, model text,
//     and parameters — while in flight; identical requests arriving
//     meanwhile attach as followers instead of consuming a queue slot and a
//     worker, and the leader fans its outcome (success or error alike) out
//     to each under the follower's own wire id. A thundering herd asking
//     one question costs one solve.
//   * Cross-request batching: admitted analyze requests park briefly in a
//     drain queue; the worker that picks them up stages every distinct
//     model of the backlog through one EvalCache::analyze_batch call (one
//     CycleMeanSolver::solve_batch per shared CSR structure), then answers
//     each request from the memo — bit-identical to serial execution by
//     cache purity, but paying one structure compile for the whole batch.
//   * Drain: begin_drain() atomically flips admission off (subsequent
//     requests get `shutting_down`); drain() blocks until the in-flight set
//     is empty. The `shutdown` op responds, then begins the drain.
//   * Incremental sessions (protocol v2): `open_session` parses a model
//     (optionally hierarchical) into a named comp::IncrementalAnalyzer that
//     stays warm across requests; `patch` applies a batch of component
//     patches atomically and re-analyzes only the dirtied SCCs. The session
//     table is bounded (`max_sessions`, `overloaded` beyond) and each
//     session is serialized by its own mutex, so patches to one session
//     never block requests against another.
//
// Metrics are mirrored into the obs registry (svc.requests.*,
// svc.queue.waiting, svc.request_ns); the `stats` op snapshots them.
//
// Telemetry (when obs is enabled): each admitted request runs under an
// obs::RequestContext carrying its wire id, so queue-wait, parse,
// cache-probe, solve, and render time are attributed per request. Latency
// lands in HDR quantile instruments (svc.request_ns, svc.queue_wait_ns, and
// per-op svc.op_ns.<op>), request traffic in a 10-second sliding window
// (rps). Requests slower than `slow_request_ms` emit one NDJSON line with
// the per-stage breakdown to `slow_log_sink`; `trace_sample` > 1 records
// ObsSpans for only every Nth request so tracing stays affordable under
// load. The `stats` op (v2) and the `metrics` op (Prometheus text) expose
// all of it without an open session.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/eval_cache.h"
#include "exec/thread_pool.h"
#include "obs/quantile.h"
#include "svc/protocol.h"

namespace ermes::tmg {
class CycleMeanSolver;
}  // namespace ermes::tmg

namespace ermes::svc {

struct BrokerOptions {
  /// Request-execution parallelism (dedicated pool workers). 0 = all cores.
  std::size_t workers = 0;
  /// Maximum admitted-but-not-yet-executing requests before `overloaded`.
  std::size_t queue_depth = 64;
  /// Default deadline applied when a request does not carry one. 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// Maximum concurrently open incremental sessions; `open_session` beyond
  /// this is rejected with `overloaded`.
  std::size_t max_sessions = 64;
  /// Test hook: sleep this long inside every DSE iteration's cancellation
  /// poll, making `explore` deliberately slow so the deadline and overload
  /// paths are exercised deterministically (tests/bench only).
  std::int64_t test_iter_delay_ms = 0;
  /// Requests slower than this (wall time, end of execute) emit one NDJSON
  /// line with their id, op, and per-stage time breakdown. 0 = disabled.
  std::int64_t slow_request_ms = 0;
  /// Span-sampling period: every Nth admitted request records ObsSpans;
  /// the rest suppress them (counters/histograms stay exact for all).
  /// <= 1 traces every request.
  std::int64_t trace_sample = 1;
  /// Sink for slow-request NDJSON lines (one complete JSON object, no
  /// trailing newline). Unset = stderr. Injectable so tests capture lines.
  std::function<void(const std::string&)> slow_log_sink = {};
  /// Byte budget for the shared eval cache (`ermes serve --cache-mb`).
  /// 0 = unbounded (the historical behaviour).
  std::int64_t cache_bytes = 0;
  /// Snapshot path (`ermes serve --cache-file`): loaded at construction
  /// when the file exists (a corrupt or incompatible file is logged and the
  /// cache starts cold), written by save_cache() — which the server calls
  /// on clean shutdown — and by the v2 `cache_save` op. Empty = no
  /// persistence.
  std::string cache_file;
  /// Background snapshot interval (`ermes serve --cache-save-secs`): when
  /// > 0 and cache_file is set, a saver thread writes the snapshot every N
  /// seconds through the same atomic tmp+rename writer — skipping intervals
  /// in which nothing new was inserted. 0 (the default) = save only on
  /// clean shutdown and explicit `cache_save` requests.
  std::int64_t cache_save_secs = 0;
  /// Upper bound on analyze requests drained into one cross-request
  /// solve_batch staging pass (see handle_line). Bounded so one worker
  /// never serializes an arbitrarily long backlog.
  std::size_t analyze_batch_max = 16;
  /// Test hook: sleep this long at the start of every request execution so
  /// concurrent identical requests deterministically pile onto an in-flight
  /// leader (coalescing tests) and analyze backlogs form (batching tests).
  std::int64_t test_exec_delay_ms = 0;
};

class Broker {
 public:
  explicit Broker(BrokerOptions options = {});
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Response sink: invoked exactly once per handle_line call with the full
  /// response line (no trailing newline). Runs on a pool worker for admitted
  /// requests, or inline on the caller for rejections and parse failures.
  using DoneFn = std::function<void(std::string)>;

  /// Parses, validates, admits, and (asynchronously) executes one request
  /// line. Never throws; never blocks on the queue.
  void handle_line(const std::string& line, DoneFn done);

  /// Synchronous convenience for tests and the smoke driver: blocks until
  /// the response is ready.
  std::string handle_line_sync(const std::string& line);

  /// Stops admission: subsequent requests are rejected with shutting_down.
  /// Idempotent; invokes the drain callback (once) when one is registered.
  void begin_drain();
  /// True once begin_drain() ran.
  bool draining() const { return draining_.load(); }
  /// Blocks until every admitted request has completed.
  void drain();
  /// Hook for the server: called from begin_drain() (possibly on a worker
  /// thread executing a `shutdown` request) to wake the accept loop.
  void set_drain_callback(std::function<void()> callback);

  /// The process-wide warm cache shared across all requests.
  analysis::EvalCache& cache() { return cache_; }

  /// Writes the cache snapshot to options().cache_file (no-op returning
  /// true when no cache_file is configured). The server calls this after a
  /// clean drain; the `cache_save` op calls it on demand.
  bool save_cache(std::string* error);
  /// Entries restored from the snapshot at construction (0 when none).
  std::size_t cache_restored() const { return cache_restored_; }

  struct Stats {
    std::int64_t accepted = 0;
    std::int64_t completed = 0;
    std::int64_t bad_requests = 0;
    std::int64_t rejected_overloaded = 0;
    std::int64_t rejected_shutting_down = 0;
    std::int64_t deadline_exceeded = 0;
    std::int64_t internal_errors = 0;
    std::int64_t waiting = 0;    // admitted, not yet executing
    std::int64_t in_flight = 0;  // admitted, not yet responded
    std::int64_t sessions = 0;   // open incremental sessions
    std::int64_t coalesced = 0;  // requests answered from another's solve
    std::int64_t batched = 0;    // analyze requests staged via solve_batch
    std::int64_t cache_saves = 0;  // background snapshot writes
  };
  Stats stats() const;

  const BrokerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Op-level outcome of one executed request, captured before id/version
  /// encoding so a coalesced leader can fan the same result (or the same
  /// error) out to every attached follower under the follower's own id.
  struct Outcome {
    bool ok = false;
    JsonValue result;                          // when ok
    ErrorCode code = ErrorCode::kInternal;     // when !ok
    std::string message;                       // when !ok
  };

  /// One follower attached to an in-flight identical request.
  struct Waiter {
    JsonValue id;
    int version = kProtocolVersion;
    DoneFn done;
  };
  struct CoalesceEntry {
    // The leader's exact question, verified on every attach: the 64-bit
    // coalesce key is a non-cryptographic mix, so two different requests
    // can collide — and a collider must run its own solve, never silently
    // receive the leader's answer to a different question.
    Op op = Op::kStats;
    bool hier = false;
    std::int64_t tct = 0;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 0;
    std::int64_t deadline_ms = 0;
    std::string soc;
    std::vector<Waiter> followers;
  };

  /// An admitted analyze request parked for cross-request batch staging.
  struct PendingAnalyze {
    Request request;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point admitted{};
    DoneFn done;
    std::uint64_t key = 0;                  // coalesce key (0 = none)
    std::shared_ptr<CoalesceEntry> entry;   // leader's fan-out entry
  };

  /// Executes an admitted request (worker thread) and emits the response.
  /// `queue_wait_ns` is the admission -> execution-start delay, attributed
  /// to the request's queue_wait stage. When `outcome` is non-null it is
  /// filled on every path (success, error, exception) for coalesce fan-out.
  void execute(const Request& request, bool has_deadline,
               Clock::time_point deadline, std::int64_t queue_wait_ns,
               const DoneFn& done, Outcome* outcome = nullptr);

  /// Coalesce key of a request: 64-bit mix of op + model text + parameters
  /// for the pure ops (analyze/order/explore/sweep); 0 for everything else
  /// (stats, sessions, shutdown, ... must execute individually).
  static std::uint64_t coalesce_key(const Request& request);

  /// True when `request` asks exactly the question `entry`'s leader is
  /// answering (field-by-field; the hash key alone is not collision-free).
  static bool coalesce_match(const CoalesceEntry& entry,
                             const Request& request);

  /// Atomically removes the coalesce entry and returns its followers. Must
  /// run before the leader's response is delivered: once a client sees the
  /// reply, a new identical request has to start a fresh solve instead of
  /// attaching to this finished one.
  std::vector<Waiter> detach_followers(
      std::uint64_t key, const std::shared_ptr<CoalesceEntry>& entry);

  /// Answers every detached follower from the leader's outcome, each
  /// re-encoded with its own id and protocol version.
  void fan_out(std::vector<Waiter> followers, const Outcome& outcome);

  /// Worker task: takes up to analyze_batch_max parked analyze requests,
  /// pre-stages their misses through one EvalCache::analyze_batch call
  /// (one solve_batch per shared CSR structure), then executes each request
  /// normally — the memo now answers them bit-identically to serial runs.
  void drain_analyze_queue();

  /// Background saver thread body (cache_save_secs > 0).
  void saver_loop();
  JsonValue run_analyze(const Request& request, std::string* soc_error);
  JsonValue run_order(const Request& request, std::string* soc_error);
  /// Returns ok=false with kDeadlineExceeded semantics via *cancelled.
  JsonValue run_explore(const Request& request,
                        const std::function<bool()>& should_stop,
                        std::string* soc_error, bool* cancelled);
  JsonValue run_sweep(const Request& request,
                      const std::function<bool()>& should_stop,
                      std::string* soc_error, bool* cancelled);
  JsonValue run_stats(int version);
  JsonValue run_metrics();
  JsonValue run_cache_save(std::string* error, ErrorCode* code);
  // Session ops: on failure they set *error and *code (bad_request for
  // unknown/duplicate sessions and model errors, overloaded for a full
  // session table) and return null.
  JsonValue run_open_session(const Request& request, std::string* error,
                             ErrorCode* code);
  JsonValue run_patch(const Request& request, std::string* error,
                      ErrorCode* code);
  JsonValue run_close_session(const Request& request, std::string* error,
                              ErrorCode* code);

  void finish_one();
  /// Decrements in_flight_ and wakes drain() at zero (rollback on
  /// rejection; finish_one() for completed requests).
  void release_in_flight();

  BrokerOptions options_;
  analysis::EvalCache cache_;
  std::size_t cache_restored_ = 0;  // snapshot entries admitted at startup

  // One warm CSR solver per pool slot. Sweep requests always execute on a
  // pool worker (slots [1, jobs())); each target explored on that worker
  // passes its slot's solver to dse::explore, so adjacent targets of a
  // sweep — and sweeps across requests landing on the same worker — reuse a
  // compiled structure and its batch staging. Slot ownership means no two
  // threads ever share a solver, so none of them need locks.
  std::vector<std::unique_ptr<tmg::CycleMeanSolver>> sweep_solvers_;

  // One open incremental-analysis session (defined in broker.cpp). The map
  // holds shared_ptrs so a `close_session` racing an in-flight `patch` only
  // unlinks the session; the patch finishes against its own reference.
  struct Session;
  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  // In-flight coalescing: key -> entry for every coalescable request that
  // is admitted but not yet answered. Followers attach here instead of
  // consuming a queue slot and a worker.
  std::mutex coalesce_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<CoalesceEntry>> coalesce_;

  // Cross-request analyze batching: admitted analyze requests park here;
  // every enqueue also submits one drain task, so workers self-balance
  // (an idle pool serves each request alone, a backlog forms real batches).
  std::mutex analyze_mu_;
  std::deque<PendingAnalyze> analyze_queue_;

  // Snapshot writes share one fixed tmp path (path + ".tmp"), so the
  // background saver, the shutdown save, and `cache_save` requests must
  // serialize. saved_misses_ (guarded by save_mu_) is the insertion proxy:
  // every insert begins as a miss, so an unchanged miss count means an
  // interval with nothing new to persist.
  std::mutex save_mu_;
  std::int64_t saved_misses_ = 0;
  std::thread saver_;
  std::mutex saver_mu_;
  std::condition_variable saver_cv_;
  bool saver_stop_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> waiting_{0};
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> bad_requests_{0};
  std::atomic<std::int64_t> rejected_overloaded_{0};
  std::atomic<std::int64_t> rejected_shutting_down_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> internal_errors_{0};
  std::atomic<std::int64_t> coalesced_{0};
  std::atomic<std::int64_t> batched_{0};
  std::atomic<std::int64_t> cache_saves_{0};
  std::atomic<std::int64_t> trace_tick_{0};  // span-sampling cursor
  obs::WindowRate window_requests_;  // completed requests, last ~10 s

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::function<void()> drain_callback_;
  bool drain_callback_fired_ = false;

  // Declared last on purpose: members are destroyed in reverse declaration
  // order, so ~ThreadPool runs FIRST — it joins the workers and discards
  // still-queued tasks before anything a task touches (mailboxes, solvers,
  // the drain cv — nearly every member above) is destroyed. ~Broker's
  // drain() is not enough by itself: it only waits for in_flight_ == 0, and
  // drain_analyze_queue submits one task per enqueued analyze — when a
  // sibling task takes the whole batch, the later "empty-batch" tasks stay
  // queued holding no in-flight slot, and such a straggler may still be
  // running (locking analyze_mu_, reading analyze_queue_) as ~Broker
  // proceeds. With the pool destroyed first, stragglers finish against
  // live members.
  exec::ThreadPool pool_;
};

}  // namespace ermes::svc
