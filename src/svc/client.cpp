#include "svc/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ermes::svc {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Client> Client::connect_unix(const std::string& path,
                                             std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long";
    return nullptr;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create unix socket";
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot connect to " + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::connect_tcp(const std::string& host, int port,
                                            std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address " + host;
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create TCP socket";
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot connect to " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

bool Client::send_line(const std::string& line, std::string* error) {
  std::string framed = line;
  framed += '\n';
  const char* data = framed.data();
  std::size_t size = framed.size();
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send failed: ") + std::strerror(errno);
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recv_line(std::string* line, std::string* error) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *error = std::string("recv failed: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *error = "connection closed by server";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

ResponseView Client::call(const std::string& request_line) {
  ResponseView view;
  std::string error;
  if (!send_line(request_line, &error)) {
    view.parse_error = error;
    return view;
  }
  std::string response;
  if (!recv_line(&response, &error)) {
    view.parse_error = error;
    return view;
  }
  return parse_response(response);
}

}  // namespace ermes::svc
