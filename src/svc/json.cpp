#include "svc/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_set>

#include "obs/json.h"

namespace ermes::svc {

// ---- construction -----------------------------------------------------------

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = value;
  // Mirror integral doubles into the exact accessor so round trips through
  // number() keep as_int() usable. The upper bound is exclusive: 2^63
  // itself is representable as a double but not as an int64, and casting it
  // would be undefined behaviour.
  if (std::isfinite(value) && value == std::floor(value) &&
      value >= -9223372036854775808.0 && value < 9223372036854775808.0) {
    v.int_ = static_cast<std::int64_t>(value);
    v.is_int_ = true;
  }
  return v;
}

JsonValue JsonValue::integer(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(value);
  v.int_ = value;
  v.is_int_ = true;
  return v;
}

JsonValue JsonValue::string(std::string_view s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_.assign(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::raw(std::string json) {
  JsonValue v;
  v.kind_ = Kind::kRaw;
  v.str_ = std::move(json);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) return;
  items_.push_back(std::move(value));
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (kind_ != Kind::kObject) return;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

void JsonValue::append_member(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) return;
  members_.emplace_back(std::move(key), std::move(value));
}

// ---- serialization ----------------------------------------------------------

namespace {

void append_number(std::string& out, double value, bool is_int,
                   std::int64_t int_value) {
  if (is_int) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(int_value));
    out += buf;
    return;
  }
  if (!std::isfinite(value)) {
    out += "0";  // JSON cannot represent NaN/inf
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

void JsonValue::append_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, num_, is_int_, int_);
      return;
    case Kind::kString:
      out += '"';
      out += obs::json_escape(str_);
      out += '"';
      return;
    case Kind::kRaw:
      out += str_;
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out += ',';
        first = false;
        item.append_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += obs::json_escape(name);
        out += "\":";
        value.append_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::to_string() const {
  std::string out;
  append_to(out);
  return out;
}

// ---- parsing ----------------------------------------------------------------

namespace {

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  int max_depth = kJsonMaxDepth;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool consume(char expected) {
    skip_ws();
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("invalid literal");
    }
    pos += word.size();
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    // Caller consumed the opening quote.
    out.clear();
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return fail("bad number");
    }
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad number");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad number");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string literal(text.substr(start, pos - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out = JsonValue::integer(static_cast<std::int64_t>(v));
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    const double d = std::strtod(literal.c_str(), nullptr);
    if (!std::isfinite(d)) return fail("number out of range");
    out = JsonValue::number(d);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > max_depth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case 'n':
        if (!parse_literal("null")) return false;
        out = JsonValue::null();
        return true;
      case 't':
        if (!parse_literal("true")) return false;
        out = JsonValue::boolean(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        out = JsonValue::boolean(false);
        return true;
      case '"': {
        ++pos;
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::string(s);
        return true;
      }
      case '[': {
        ++pos;
        out = JsonValue::array();
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        while (true) {
          JsonValue item;
          if (!parse_value(item, depth + 1)) return false;
          out.push_back(std::move(item));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated array");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        out = JsonValue::object();
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        // Duplicate detection through a per-object hash set: a linear
        // find() per member would make a crafted many-member object cost
        // O(n^2) on the reader thread, ahead of admission control.
        std::unordered_set<std::string> seen;
        while (true) {
          skip_ws();
          if (pos >= text.size() || text[pos] != '"') {
            return fail("expected object key");
          }
          ++pos;
          std::string key;
          if (!parse_string(key)) return false;
          if (!consume(':')) return false;
          if (!seen.insert(key).second) {
            return fail("duplicate key '" + key + "'");
          }
          JsonValue value;
          if (!parse_value(value, depth + 1)) return false;
          out.append_member(std::move(key), std::move(value));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated object");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }
};

}  // namespace

JsonParseResult json_parse(std::string_view text, int max_depth) {
  JsonParseResult result;
  JsonParser parser;
  parser.text = text;
  parser.max_depth = max_depth;
  if (!parser.parse_value(result.value, 0)) {
    result.error = parser.error;
    return result;
  }
  if (!parser.at_end()) {
    parser.fail("trailing content after document");
    result.error = parser.error;
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace ermes::svc
