#pragma once
// Blocking NDJSON client for the analysis service.
//
// One Client is one connection. call() does a single request/response
// exchange; send_line()/recv_line() expose the raw framing for pipelined
// use (the server responds in completion order, so pipelining callers must
// match responses to requests by id themselves). Not thread-safe — one
// Client per thread, which is exactly how the load generator drives it.

#include <cstdint>
#include <memory>
#include <string>

#include "svc/protocol.h"

namespace ermes::svc {

class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a unix-domain socket; nullptr + *error on failure.
  static std::unique_ptr<Client> connect_unix(const std::string& path,
                                              std::string* error);
  /// Connects to a TCP endpoint (host is a dotted quad, e.g. 127.0.0.1).
  static std::unique_ptr<Client> connect_tcp(const std::string& host, int port,
                                             std::string* error);

  /// Writes one line (newline appended). False + *error on transport error.
  bool send_line(const std::string& line, std::string* error);
  /// Blocks for the next line. False + *error on EOF / transport error.
  bool recv_line(std::string* line, std::string* error);

  /// One request/response exchange, parsed. ResponseView::parse_error
  /// doubles as the transport error channel when the exchange fails.
  ResponseView call(const std::string& request_line);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;  // bytes received past the last returned line
};

}  // namespace ermes::svc
