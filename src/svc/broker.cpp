#include "svc/broker.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <cstdio>

#include "analysis/performance.h"
#include "comp/incremental.h"
#include "comp/partition.h"
#include "dse/explorer.h"
#include "io/soc_format.h"
#include "io/soc_hier.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/request_context.h"
#include "ordering/channel_ordering.h"
#include "svc/render.h"
#include "tmg/csr.h"
#include "util/build_info.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace ermes::svc {

namespace {

std::size_t effective_workers(std::size_t workers) {
  return workers == 0 ? exec::hardware_jobs() : workers;
}

// Model text of a request, through the grammar its `hier` flag selects.
// Parse time is the request's `parse` stage.
io::ParseResult parse_model(const Request& request) {
  obs::StageTimer parse_timer(obs::Stage::kParse);
  return request.hier ? io::parse_soc_flattened(request.soc)
                      : io::parse_soc(request.soc);
}

// Upper bound on any deadline (24 h). `now() + milliseconds(deadline_ms)`
// converts to steady_clock's nanosecond period, so an unclamped
// client-supplied value near INT64_MAX would signed-overflow (UB) and in
// practice wrap to a deadline in the past, failing the request instantly.
constexpr std::int64_t kMaxDeadlineMs = 86'400'000;

// FNV-1a over a byte string, for folding model text into a coalesce key.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// One open incremental session: an analyzer plus the mutex serializing the
// requests that touch it (patches mutate derived state in place).
struct Broker::Session {
  std::mutex mu;
  comp::IncrementalAnalyzer analyzer;

  Session(sysmodel::SystemModel sys,
          const comp::IncrementalAnalyzer::Options& options)
      : analyzer(std::move(sys), options) {}
};

// The pool gets `workers` dedicated threads (ThreadPool counts the caller,
// and the broker's callers — connection threads — never execute tasks).
Broker::Broker(BrokerOptions options)
    : options_(std::move(options)),
      cache_(16, options_.cache_bytes),
      pool_(effective_workers(options_.workers) + 1) {
  sweep_solvers_.resize(pool_.jobs());
  for (auto& solver : sweep_solvers_) {
    solver = std::make_unique<tmg::CycleMeanSolver>();
  }
  if (!options_.cache_file.empty()) {
    // A missing snapshot is the normal first launch — silent cold start. A
    // present-but-rejected one (corrupt, truncated, or written by an
    // incompatible format) is logged and the daemon starts cold; serving is
    // never blocked by a bad cache file.
    if (std::FILE* f = std::fopen(options_.cache_file.c_str(), "rb")) {
      std::fclose(f);
      std::string error;
      if (cache_.load_snapshot(options_.cache_file, &error,
                               &cache_restored_)) {
        ERMES_LOG(kInfo) << "svc: restored " << cache_restored_
                         << " cache entries from '" << options_.cache_file
                         << "'";
      } else {
        ERMES_LOG(kWarn) << "svc: ignoring cache snapshot '"
                         << options_.cache_file << "': " << error;
      }
    }
  }
  // Register the serving counters CI and dashboards scrape even before the
  // first coalesce/batch happens — a missing series is indistinguishable
  // from a scrape bug, a zero is not.
  obs::Registry::global().counter("coalesced");
  obs::Registry::global().counter("batched");
  saved_misses_ = cache_.misses();
  if (options_.cache_save_secs > 0 && !options_.cache_file.empty()) {
    saver_ = std::thread([this] { saver_loop(); });
  }
}

Broker::~Broker() {
  {
    std::lock_guard<std::mutex> lock(saver_mu_);
    saver_stop_ = true;
  }
  saver_cv_.notify_all();
  if (saver_.joinable()) saver_.join();
  begin_drain();
  drain();
}

void Broker::saver_loop() {
  std::unique_lock<std::mutex> lock(saver_mu_);
  for (;;) {
    saver_cv_.wait_for(lock, std::chrono::seconds(options_.cache_save_secs),
                       [this] { return saver_stop_; });
    if (saver_stop_) return;
    lock.unlock();
    std::string error;
    // save_cache() holds save_mu_ and skips idle intervals itself.
    if (!save_cache(&error)) {
      ERMES_LOG(kWarn) << "svc: background cache save failed: " << error;
    }
    lock.lock();
  }
}

void Broker::set_drain_callback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(drain_mu_);
  drain_callback_ = std::move(callback);
}

void Broker::begin_drain() {
  if (draining_.exchange(true)) return;  // seq_cst pairs with handle_line
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (!drain_callback_fired_ && drain_callback_) {
      drain_callback_fired_ = true;
      callback = drain_callback_;
    }
  }
  if (callback) callback();
}

void Broker::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return in_flight_.load() == 0; });
}

void Broker::release_in_flight() {
  if (in_flight_.fetch_sub(1) - 1 == 0) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void Broker::finish_one() {
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::count("svc.requests.completed");
  release_in_flight();
}

Broker::Stats Broker::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.rejected_overloaded =
      rejected_overloaded_.load(std::memory_order_relaxed);
  s.rejected_shutting_down =
      rejected_shutting_down_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.waiting = waiting_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.batched = batched_.load(std::memory_order_relaxed);
  s.cache_saves = cache_saves_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.sessions = static_cast<std::int64_t>(sessions_.size());
  }
  return s;
}

std::uint64_t Broker::coalesce_key(const Request& request) {
  switch (request.op) {
    case Op::kAnalyze:
    case Op::kOrder:
    case Op::kExplore:
    case Op::kSweep:
      break;  // pure: the outcome is a function of (op, model, params)
    default:
      return 0;  // stats/metrics/sessions/shutdown must execute individually
  }
  std::uint64_t h = analysis::fingerprint_mix(
      0x9e3779b97f4a7c15ull, static_cast<std::uint64_t>(request.op));
  h = analysis::fingerprint_mix(h, request.hier ? 1 : 0);
  h = analysis::fingerprint_mix(h, static_cast<std::uint64_t>(request.tct));
  h = analysis::fingerprint_mix(h, static_cast<std::uint64_t>(request.lo));
  h = analysis::fingerprint_mix(h, static_cast<std::uint64_t>(request.hi));
  h = analysis::fingerprint_mix(h, static_cast<std::uint64_t>(request.step));
  // deadline_ms is part of the key, so a follower only attaches to a leader
  // that asked for the same *relative* budget. That is an approximation,
  // accepted and documented: followers share the leader's *absolute*
  // deadline, so one attaching late can still receive deadline_exceeded
  // while its own budget had time left. The attach window is bounded by the
  // leader's solve time — small against any realistic deadline — and
  // re-executing such followers would re-pay exactly the solve coalescing
  // exists to avoid; the client's normal retry covers the residue.
  h = analysis::fingerprint_mix(
      h, static_cast<std::uint64_t>(request.deadline_ms));
  h = analysis::fingerprint_mix(h, fnv1a(request.soc));
  return h == 0 ? 1 : h;  // 0 is the "not coalescable" sentinel
}

bool Broker::coalesce_match(const CoalesceEntry& entry,
                            const Request& request) {
  return entry.op == request.op && entry.hier == request.hier &&
         entry.tct == request.tct && entry.lo == request.lo &&
         entry.hi == request.hi && entry.step == request.step &&
         entry.deadline_ms == request.deadline_ms &&
         entry.soc == request.soc;
}

std::vector<Broker::Waiter> Broker::detach_followers(
    std::uint64_t key, const std::shared_ptr<CoalesceEntry>& entry) {
  std::vector<Waiter> followers;
  if (entry == nullptr) return followers;
  std::lock_guard<std::mutex> lock(coalesce_mu_);
  followers = std::move(entry->followers);
  coalesce_.erase(key);
  return followers;
}

void Broker::fan_out(std::vector<Waiter> followers, const Outcome& outcome) {
  for (Waiter& waiter : followers) {
    // Re-encode the shared outcome under the follower's own wire identity;
    // errors (bad model, deadline, internal) propagate exactly like results.
    std::string response =
        outcome.ok ? encode_ok(waiter.id, outcome.result, waiter.version)
                   : encode_error(waiter.id, outcome.code, outcome.message,
                                  waiter.version);
    waiter.done(std::move(response));
    finish_one();
  }
}

void Broker::drain_analyze_queue() {
  std::vector<PendingAnalyze> batch;
  {
    std::lock_guard<std::mutex> lock(analyze_mu_);
    const std::size_t take = std::min<std::size_t>(
        analyze_queue_.size(), std::max<std::size_t>(options_.analyze_batch_max,
                                                     1));
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(analyze_queue_.front()));
      analyze_queue_.pop_front();
    }
  }
  if (batch.empty()) return;  // a sibling drain task took our request

  if (batch.size() > 1) {
    // Cross-request batch staging: parse every (not-yet-expired) model and
    // push their misses through one EvalCache::analyze_batch — internally
    // one CycleMeanSolver::solve_batch per shared CSR structure. Each
    // request below then answers from the memo, bit-identical to a serial
    // run by cache purity; this stage only changes how the misses are paid.
    std::vector<io::ParseResult> parsed(batch.size());
    std::vector<const sysmodel::SystemModel*> systems;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const PendingAnalyze& pending = batch[i];
      if (pending.has_deadline && Clock::now() >= pending.deadline) continue;
      parsed[i] = parse_model(pending.request);
      if (parsed[i].ok) systems.push_back(&parsed[i].system);
    }
    if (systems.size() > 1) {
      std::size_t slot = exec::current_worker_slot();
      if (slot >= sweep_solvers_.size()) slot = 0;
      cache_.analyze_batch(systems, sweep_solvers_[slot].get());
      batched_.fetch_add(static_cast<std::int64_t>(systems.size()),
                         std::memory_order_relaxed);
      obs::count("batched", static_cast<std::int64_t>(systems.size()));
    }
  }

  for (PendingAnalyze& pending : batch) {
    const std::int64_t now_waiting =
        waiting_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    obs::gauge_set("svc.queue.waiting", now_waiting);
    const std::int64_t queue_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - pending.admitted)
            .count();
    Outcome outcome;
    if (pending.entry == nullptr) {
      execute(pending.request, pending.has_deadline, pending.deadline,
              queue_wait_ns, pending.done, nullptr);
    } else {
      // Detach followers before the leader's response leaves the broker —
      // a client that has seen the reply may immediately resubmit, and that
      // request must become a fresh leader, not attach to a finished solve.
      execute(pending.request, pending.has_deadline, pending.deadline,
              queue_wait_ns,
              [&](std::string response) {
                std::vector<Waiter> followers =
                    detach_followers(pending.key, pending.entry);
                pending.done(std::move(response));
                fan_out(std::move(followers), outcome);
              },
              &outcome);
    }
    finish_one();
  }
}

void Broker::handle_line(const std::string& line, DoneFn done) {
  RequestParse parsed = parse_request(line);
  if (!parsed.ok) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.requests.bad_request");
    done(encode_error(parsed.request.id, ErrorCode::kBadRequest, parsed.error,
                      parsed.request.version));
    return;
  }
  const JsonValue id = parsed.request.id;
  const int version = parsed.request.version;

  // Count the request in-flight *before* checking draining(); both sides
  // are seq_cst, so either begin_drain() happens-before our load (we roll
  // back and reject) or drain() observes our increment and waits for this
  // request. Checking first would let a request slip past a concurrent
  // begin_drain()+drain() and race the connection teardown.
  in_flight_.fetch_add(1);
  if (draining_.load()) {
    release_in_flight();
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.requests.rejected_shutting_down");
    done(encode_error(id, ErrorCode::kShuttingDown, "server is draining",
                      version));
    return;
  }

  // Coalesce-attach: an identical request already in flight answers this
  // one too. The follower keeps only its in_flight_ slot (released by the
  // fan-out) — no queue slot, no pool task, no second solve. Attachment
  // requires a full field match, not just the hash key: on a key collision
  // with a *different* in-flight request the newcomer executes alone,
  // unpublished (key cleared to 0), since two distinct questions cannot
  // share the one map slot.
  std::uint64_t key = coalesce_key(parsed.request);
  if (key != 0) {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    const auto it = coalesce_.find(key);
    if (it != coalesce_.end()) {
      if (coalesce_match(*it->second, parsed.request)) {
        it->second->followers.push_back(Waiter{id, version, std::move(done)});
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        obs::count("svc.requests.accepted");
        obs::count("coalesced");
        return;
      }
      key = 0;  // collision: execute fresh, never attach or publish
    }
  }

  // Bounded admission with backpressure: beyond queue_depth waiting
  // requests, reject immediately instead of queueing (the caller never
  // blocks on a full queue).
  const std::int64_t waiting =
      waiting_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (waiting > static_cast<std::int64_t>(options_.queue_depth)) {
    waiting_.fetch_sub(1, std::memory_order_acq_rel);
    release_in_flight();
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.requests.rejected_overloaded");
    done(encode_error(id, ErrorCode::kOverloaded,
                      "admission queue full (depth " +
                          std::to_string(options_.queue_depth) + ")",
                      version));
    return;
  }
  obs::gauge_set("svc.queue.waiting", waiting);

  accepted_.fetch_add(1, std::memory_order_relaxed);
  obs::count("svc.requests.accepted");

  // Publish the coalesce entry only now that admission succeeded — an entry
  // installed before the queue-depth check could collect followers onto a
  // leader that then gets rejected. If another leader won the install race
  // in the window since the find() above, become its follower after all.
  std::shared_ptr<CoalesceEntry> entry;
  if (key != 0) {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    const auto [it, inserted] =
        coalesce_.try_emplace(key, std::make_shared<CoalesceEntry>());
    if (inserted) {
      entry = it->second;
      // Record the exact question so attaches can verify it (the hash key
      // alone admits collisions).
      entry->op = parsed.request.op;
      entry->hier = parsed.request.hier;
      entry->tct = parsed.request.tct;
      entry->lo = parsed.request.lo;
      entry->hi = parsed.request.hi;
      entry->step = parsed.request.step;
      entry->deadline_ms = parsed.request.deadline_ms;
      entry->soc = parsed.request.soc;
    } else if (coalesce_match(*it->second, parsed.request)) {
      it->second->followers.push_back(Waiter{id, version, std::move(done)});
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      obs::count("coalesced");
      const std::int64_t rolled_back =
          waiting_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      obs::gauge_set("svc.queue.waiting", rolled_back);
      return;
    }
    // else: key collision with the racing leader — entry stays null and
    // this request executes alone without publishing.
  }

  std::int64_t deadline_ms = parsed.request.deadline_ms > 0
                                 ? parsed.request.deadline_ms
                                 : options_.default_deadline_ms;
  deadline_ms = std::min(deadline_ms, kMaxDeadlineMs);
  const bool has_deadline = deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? deadline_ms : 0);
  const Clock::time_point admitted = Clock::now();

  // Analyze requests park in the batch queue; one drain task per enqueue
  // keeps the pool self-balancing (an idle pool answers each alone, a
  // backlog forms real solve_batch groups).
  if (parsed.request.op == Op::kAnalyze) {
    {
      std::lock_guard<std::mutex> lock(analyze_mu_);
      analyze_queue_.push_back(PendingAnalyze{
          std::move(parsed.request), has_deadline, deadline, admitted,
          std::move(done), key, entry});
    }
    pool_.submit([this] { drain_analyze_queue(); });
    return;
  }

  pool_.submit([this, request = std::move(parsed.request), has_deadline,
                deadline, admitted, done = std::move(done), key, entry] {
    const std::int64_t now_waiting =
        waiting_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    obs::gauge_set("svc.queue.waiting", now_waiting);
    const std::int64_t queue_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             admitted)
            .count();
    Outcome outcome;
    if (entry == nullptr) {
      execute(request, has_deadline, deadline, queue_wait_ns, done, nullptr);
    } else {
      // Same ordering contract as drain_analyze_queue: erase the coalesce
      // entry before the leader's response is visible to its client.
      execute(request, has_deadline, deadline, queue_wait_ns,
              [&](std::string response) {
                std::vector<Waiter> followers = detach_followers(key, entry);
                done(std::move(response));
                fan_out(std::move(followers), outcome);
              },
              &outcome);
    }
    finish_one();
  });
}

std::string Broker::handle_line_sync(const std::string& line) {
  // The response callback may run on a worker thread; hand the line back
  // through a tiny rendezvous.
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool ready = false;
  handle_line(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    ready = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return response;
}

void Broker::execute(const Request& request, bool has_deadline,
                     Clock::time_point deadline, std::int64_t queue_wait_ns,
                     const DoneFn& done, Outcome* outcome) {
  util::Stopwatch sw;
  if (options_.test_exec_delay_ms > 0) {
    // Test hook: hold the leader in flight so identical requests pile onto
    // its coalesce entry (and analyze backlogs form) deterministically.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.test_exec_delay_ms));
  }

  // Request-scoped telemetry: everything below (parse, cache probes, solves,
  // rendering) attributes its time to this context through thread-local
  // StageTimers — requests execute serially on this worker (run_* ops use
  // jobs=1 internally), so the scope covers the whole call tree. `traced`
  // implements span sampling: with trace_sample N, only every Nth request
  // records ObsSpans.
  obs::RequestContext ctx;
  ctx.id = request.id.to_string();
  ctx.op = to_string(request.op);
  ctx.traced =
      options_.trace_sample <= 1 ||
      trace_tick_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_sample ==
          0;
  ctx.add(obs::Stage::kQueueWait, queue_wait_ns);
  obs::RequestScope scope(&ctx);
  if (obs::enabled() && ctx.traced && options_.trace_sample > 1) {
    obs::count("svc.requests.traced");
  }
  // Cooperative cancellation poll, shared by the DSE loop and the sweep's
  // per-target boundary. The test hook's sleep lives here so a deliberately
  // slow exploration still spends its time inside the cancellable region.
  const auto should_stop = [this, has_deadline, deadline] {
    if (options_.test_iter_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.test_iter_delay_ms));
    }
    return has_deadline && Clock::now() >= deadline;
  };

  // Captures the op-level outcome for coalesce fan-out alongside encoding
  // the leader's own response line.
  const auto fail = [&](ErrorCode code, std::string message) {
    if (outcome != nullptr) {
      outcome->ok = false;
      outcome->code = code;
      outcome->message = message;
    }
    return encode_error(request.id, code, message, request.version);
  };

  std::string response;
  try {
    if (has_deadline && Clock::now() >= deadline) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      obs::count("svc.requests.deadline_exceeded");
      response = fail(ErrorCode::kDeadlineExceeded,
                      "deadline expired before execution started");
    } else {
      std::string soc_error;
      std::string session_error;
      ErrorCode session_code = ErrorCode::kBadRequest;
      bool cancelled = false;
      JsonValue result;
      switch (request.op) {
        case Op::kAnalyze:
          result = run_analyze(request, &soc_error);
          break;
        case Op::kOrder:
          result = run_order(request, &soc_error);
          break;
        case Op::kExplore:
          result = run_explore(request, should_stop, &soc_error, &cancelled);
          break;
        case Op::kSweep:
          result = run_sweep(request, should_stop, &soc_error, &cancelled);
          break;
        case Op::kStats:
          result = run_stats(request.version);
          break;
        case Op::kMetrics:
          result = run_metrics();
          break;
        case Op::kShutdown:
          result = JsonValue::object();
          result.set("draining", JsonValue::boolean(true));
          break;
        case Op::kOpenSession:
          result = run_open_session(request, &session_error, &session_code);
          break;
        case Op::kPatch:
          result = run_patch(request, &session_error, &session_code);
          break;
        case Op::kCloseSession:
          result = run_close_session(request, &session_error, &session_code);
          break;
        case Op::kCacheSave:
          result = run_cache_save(&session_error, &session_code);
          break;
      }
      if (!soc_error.empty()) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        obs::count("svc.requests.bad_request");
        response = fail(ErrorCode::kBadRequest, "soc: " + soc_error);
      } else if (!session_error.empty()) {
        if (session_code == ErrorCode::kOverloaded) {
          rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
          obs::count("svc.requests.rejected_overloaded");
        } else {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          obs::count("svc.requests.bad_request");
        }
        response = fail(session_code, session_error);
      } else if (cancelled) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        obs::count("svc.requests.deadline_exceeded");
        response = fail(ErrorCode::kDeadlineExceeded,
                        "deadline exceeded during exploration");
      } else {
        obs::StageTimer render_timer(obs::Stage::kRender);
        if (outcome != nullptr) {
          outcome->ok = true;
          outcome->result = result;  // copy: fan-out re-encodes per follower
        }
        response = encode_ok(request.id, std::move(result), request.version);
      }
    }
  } catch (const std::exception& e) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.requests.internal_error");
    ERMES_LOG(kError) << "svc: request handler threw: " << e.what();
    response = fail(ErrorCode::kInternal, e.what());
  } catch (...) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.requests.internal_error");
    response = fail(ErrorCode::kInternal, "unexpected exception");
  }

  const std::int64_t elapsed_ns = sw.elapsed_ns();
  obs::observe("svc.request_ns", elapsed_ns);
  if (obs::enabled()) {
    obs::Registry& registry = obs::Registry::global();
    registry.quantile("svc.request_ns").observe(elapsed_ns);
    registry.quantile("svc.queue_wait_ns").observe(queue_wait_ns);
    registry.quantile(std::string("svc.op_ns.") + to_string(request.op))
        .observe(elapsed_ns);
    window_requests_.record();
  }

  // Slow-request log: one self-contained NDJSON line answering "why was
  // THIS request slow" — originating wire id, op, and the stage breakdown
  // the RequestContext accumulated (times not covered by a stage show up as
  // the gap between stages_ns and elapsed_ns).
  if (options_.slow_request_ms > 0 &&
      elapsed_ns >= options_.slow_request_ms * 1'000'000) {
    std::string line = "{\"slow_request\":true,\"id\":" + ctx.id +
                       ",\"op\":\"" + ctx.op + "\",\"elapsed_ms\":" +
                       obs::json_number(static_cast<double>(elapsed_ns) / 1e6) +
                       ",\"stages_ns\":{";
    for (int s = 0; s < obs::kNumStages; ++s) {
      const auto stage = static_cast<obs::Stage>(s);
      line += (s == 0 ? "\"" : ",\"");
      line += obs::to_string(stage);
      line += "\":" + std::to_string(ctx.stage(stage));
    }
    line += "},\"traced\":";
    line += ctx.traced ? "true}" : "false}";
    if (obs::enabled()) obs::count("svc.requests.slow");
    if (options_.slow_log_sink) {
      options_.slow_log_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  // A shutdown request flips the drain switch before its own response goes
  // out, so any request observed after the response is deterministically
  // rejected with shutting_down. Delivery is still guaranteed: this request
  // counts toward in_flight_ until finish_one(), and the server only closes
  // connections after drain() sees in_flight_ == 0.
  if (request.op == Op::kShutdown) begin_drain();
  done(std::move(response));
}

JsonValue Broker::run_analyze(const Request& request, std::string* soc_error) {
  const io::ParseResult parsed = parse_model(request);
  if (!parsed.ok) {
    *soc_error = parsed.error;
    return JsonValue::null();
  }
  const analysis::PerformanceReport report =
      comp::analyze_cached(parsed.system, cache_);
  JsonValue result = JsonValue::object();
  result.set("live", JsonValue::boolean(report.live));
  result.set("cycle_time", JsonValue::number(report.cycle_time));
  result.set("ct_num", JsonValue::integer(report.ct_num));
  result.set("ct_den", JsonValue::integer(report.ct_den));
  result.set("throughput", JsonValue::number(report.throughput));
  JsonValue critical = JsonValue::array();
  for (const sysmodel::ProcessId p : report.critical_processes) {
    critical.push_back(JsonValue::string(parsed.system.process_name(p)));
  }
  result.set("critical_processes", std::move(critical));
  result.set("text", JsonValue::string(analyze_text(parsed.system, report)));
  return result;
}

JsonValue Broker::run_order(const Request& request, std::string* soc_error) {
  const io::ParseResult parsed = parse_model(request);
  if (!parsed.ok) {
    *soc_error = parsed.error;
    return JsonValue::null();
  }
  const analysis::PerformanceReport before =
      comp::analyze_cached(parsed.system, cache_);
  const sysmodel::SystemModel ordered =
      ordering::with_optimal_ordering(parsed.system);
  const analysis::PerformanceReport after =
      comp::analyze_cached(ordered, cache_);
  JsonValue result = JsonValue::object();
  if (before.live) {
    result.set("cycle_time_before", JsonValue::number(before.cycle_time));
  } else {
    result.set("cycle_time_before", JsonValue::null());
  }
  result.set("cycle_time_after", JsonValue::number(after.cycle_time));
  result.set("soc",
             JsonValue::string(io::write_soc(ordered, parsed.system_name)));
  result.set("text",
             JsonValue::string(order_text(before.live, before.cycle_time,
                                          after, ordered,
                                          parsed.system_name)));
  return result;
}

namespace {

JsonValue history_json(const dse::ExplorationResult& result) {
  JsonValue history = JsonValue::array();
  for (const dse::IterationRecord& rec : result.history) {
    JsonValue row = JsonValue::object();
    row.set("iteration", JsonValue::integer(rec.iteration));
    row.set("action", JsonValue::string(dse::to_string(rec.action)));
    row.set("cycle_time", JsonValue::number(rec.cycle_time));
    row.set("area", JsonValue::number(rec.area));
    row.set("slack", JsonValue::integer(rec.slack));
    row.set("meets_target", JsonValue::boolean(rec.meets_target));
    history.push_back(std::move(row));
  }
  return history;
}

}  // namespace

JsonValue Broker::run_explore(const Request& request,
                              const std::function<bool()>& should_stop,
                              std::string* soc_error, bool* cancelled) {
  const io::ParseResult parsed = parse_model(request);
  if (!parsed.ok) {
    *soc_error = parsed.error;
    return JsonValue::null();
  }
  dse::ExplorerOptions options;
  options.target_cycle_time = request.tct;
  options.jobs = 1;  // parallelism lives at the request level
  options.cache = &cache_;
  options.should_stop = should_stop;
  const dse::ExplorationResult result = dse::explore(parsed.system, options);
  if (result.cancelled) {
    *cancelled = true;
    return JsonValue::null();
  }
  JsonValue out = JsonValue::object();
  out.set("met_target", JsonValue::boolean(result.met_target));
  out.set("converged", JsonValue::boolean(result.converged));
  out.set("iterations",
          JsonValue::integer(static_cast<std::int64_t>(result.history.size())));
  if (!result.history.empty()) {
    out.set("final_cycle_time",
            JsonValue::number(result.history.back().cycle_time));
    out.set("final_area", JsonValue::number(result.history.back().area));
  }
  out.set("history", history_json(result));
  out.set("text", JsonValue::string(explore_text(result)));
  return out;
}

JsonValue Broker::run_sweep(const Request& request,
                            const std::function<bool()>& should_stop,
                            std::string* soc_error, bool* cancelled) {
  const io::ParseResult parsed = parse_model(request);
  if (!parsed.ok) {
    *soc_error = parsed.error;
    return JsonValue::null();
  }
  std::int64_t step = request.step;
  if (step <= 0) {
    step = std::max<std::int64_t>(1, (request.hi - request.lo) / 7);
  }
  // parse_request bounds the target count to kMaxSweepTargets; the cap here
  // is defense in depth, and the `hi - step` comparison stops the walk
  // before `tct += step` could overflow when hi is near INT64_MAX.
  std::vector<std::int64_t> targets;
  for (std::int64_t tct = request.lo;;) {
    targets.push_back(tct);
    if (static_cast<std::int64_t>(targets.size()) >= kMaxSweepTargets) break;
    if (tct > request.hi - step) break;
    tct += step;
  }
  // Serial within the request (requests are the unit of parallelism); the
  // shared warm cache still makes later targets mostly memo replays, and
  // the slot's warm solver batches each exploration's candidate analyses
  // (adjacent targets reuse its compiled structure). Requests execute on
  // pool workers, so the slot solver is single-threaded by construction.
  // The deadline is polled between targets and inside each exploration.
  std::size_t slot = exec::current_worker_slot();
  if (slot >= sweep_solvers_.size()) slot = 0;
  std::vector<dse::ExplorationResult> results;
  results.reserve(targets.size());
  for (const std::int64_t tct : targets) {
    dse::ExplorerOptions options;
    options.target_cycle_time = tct;
    options.jobs = 1;
    options.cache = &cache_;
    options.solver = sweep_solvers_[slot].get();
    options.should_stop = should_stop;
    results.push_back(dse::explore(parsed.system, options));
    if (results.back().cancelled) {
      *cancelled = true;
      return JsonValue::null();
    }
  }
  JsonValue rows = JsonValue::array();
  bool all_met = true;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    JsonValue row = JsonValue::object();
    row.set("tct", JsonValue::integer(targets[i]));
    row.set("iterations",
            JsonValue::integer(
                static_cast<std::int64_t>(results[i].history.size())));
    row.set("final_cycle_time",
            JsonValue::number(results[i].history.back().cycle_time));
    row.set("final_area", JsonValue::number(results[i].history.back().area));
    row.set("met_target", JsonValue::boolean(results[i].met_target));
    rows.push_back(std::move(row));
    all_met = all_met && results[i].met_target;
  }
  JsonValue out = JsonValue::object();
  out.set("targets", std::move(rows));
  out.set("all_met", JsonValue::boolean(all_met));
  out.set("text", JsonValue::string(sweep_text(targets, results)));
  return out;
}

namespace {

// Result body shared by open_session and patch: the full report plus the
// per-component provenance of the partitioned engine.
JsonValue session_report_json(const comp::PartitionedReport& part,
                              const comp::IncrementalAnalyzer& analyzer) {
  const sysmodel::SystemModel& sys = analyzer.system();
  JsonValue result = JsonValue::object();
  result.set("live", JsonValue::boolean(part.report.live));
  result.set("cycle_time", JsonValue::number(part.report.cycle_time));
  result.set("ct_num", JsonValue::integer(part.report.ct_num));
  result.set("ct_den", JsonValue::integer(part.report.ct_den));
  result.set("throughput", JsonValue::number(part.report.throughput));
  JsonValue critical = JsonValue::array();
  for (const sysmodel::ProcessId p : part.report.critical_processes) {
    critical.push_back(JsonValue::string(sys.process_name(p)));
  }
  result.set("critical_processes", std::move(critical));
  result.set("sccs",
             JsonValue::integer(static_cast<std::int64_t>(part.sccs.size())));
  result.set("critical_scc", JsonValue::integer(part.critical_scc));
  result.set("sccs_solved", JsonValue::integer(part.solved));
  result.set("sccs_reused", JsonValue::integer(part.reused));
  // Embedded CSR solver counters: weight_refreshes / compiles is the warm
  // ratio — how often a patch re-solved without rebuilding the snapshot.
  const tmg::CycleMeanSolver::Stats& solver = analyzer.solver_stats();
  result.set("solver_compiles", JsonValue::integer(solver.compiles));
  result.set("solver_weight_refreshes",
             JsonValue::integer(solver.weight_refreshes));
  return result;
}

}  // namespace

JsonValue Broker::run_open_session(const Request& request, std::string* error,
                                   ErrorCode* code) {
  io::ParseResult parsed = parse_model(request);
  if (!parsed.ok) {
    *code = ErrorCode::kBadRequest;
    *error = "soc: " + parsed.error;
    return JsonValue::null();
  }
  comp::IncrementalAnalyzer::Options options;
  options.cache = &cache_;  // no pool: requests are the unit of parallelism
  auto session =
      std::make_shared<Session>(std::move(parsed.system), options);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.count(request.session) != 0) {
      *code = ErrorCode::kBadRequest;
      *error = "session '" + request.session + "' is already open";
      return JsonValue::null();
    }
    if (sessions_.size() >= options_.max_sessions) {
      *code = ErrorCode::kOverloaded;
      *error = "session table full (max " +
               std::to_string(options_.max_sessions) + ")";
      return JsonValue::null();
    }
    sessions_.emplace(request.session, session);
  }
  obs::count("svc.sessions.opened");
  std::lock_guard<std::mutex> lock(session->mu);
  const comp::PartitionedReport& part = session->analyzer.analyze();
  JsonValue result = session_report_json(part, session->analyzer);
  result.set("session", JsonValue::string(request.session));
  return result;
}

JsonValue Broker::run_patch(const Request& request, std::string* error,
                            ErrorCode* code) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(request.session);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    *code = ErrorCode::kBadRequest;
    *error = "unknown session '" + request.session + "'";
    return JsonValue::null();
  }
  std::lock_guard<std::mutex> lock(session->mu);
  comp::IncrementalAnalyzer& analyzer = session->analyzer;
  const sysmodel::SystemModel& sys = analyzer.system();

  // Atomic batch: every patch is validated against the current model before
  // any is applied, so a bad batch leaves the session untouched.
  struct Resolved {
    sysmodel::ProcessId process = sysmodel::kInvalidProcess;
    sysmodel::ChannelId channel = sysmodel::kInvalidChannel;
  };
  std::vector<Resolved> resolved(request.patches.size());
  for (std::size_t i = 0; i < request.patches.size(); ++i) {
    const PatchOp& patch = request.patches[i];
    Resolved& ids = resolved[i];
    const std::string where = "patch " + std::to_string(i) + ": ";
    switch (patch.kind) {
      case PatchOp::Kind::kSelect: {
        ids.process = sys.find_process(patch.process);
        if (ids.process == sysmodel::kInvalidProcess) {
          *error = where + "unknown process '" + patch.process + "'";
          return JsonValue::null();
        }
        if (!sys.has_implementations(ids.process) ||
            static_cast<std::size_t>(patch.value) >=
                sys.implementations(ids.process).size()) {
          *error = where + "process '" + patch.process +
                   "' has no implementation " + std::to_string(patch.value);
          return JsonValue::null();
        }
        break;
      }
      case PatchOp::Kind::kProcessLatency: {
        ids.process = sys.find_process(patch.process);
        if (ids.process == sysmodel::kInvalidProcess) {
          *error = where + "unknown process '" + patch.process + "'";
          return JsonValue::null();
        }
        break;
      }
      case PatchOp::Kind::kChannelLatency: {
        ids.channel = sys.find_channel(patch.channel);
        if (ids.channel == sysmodel::kInvalidChannel) {
          *error = where + "unknown channel '" + patch.channel + "'";
          return JsonValue::null();
        }
        break;
      }
      case PatchOp::Kind::kRetarget: {
        ids.channel = sys.find_channel(patch.channel);
        if (ids.channel == sysmodel::kInvalidChannel) {
          *error = where + "unknown channel '" + patch.channel + "'";
          return JsonValue::null();
        }
        ids.process = sys.find_process(patch.target);
        if (ids.process == sysmodel::kInvalidProcess) {
          *error = where + "unknown process '" + patch.target + "'";
          return JsonValue::null();
        }
        break;
      }
    }
  }
  for (std::size_t i = 0; i < request.patches.size(); ++i) {
    const PatchOp& patch = request.patches[i];
    std::string apply_error;
    bool ok = false;
    switch (patch.kind) {
      case PatchOp::Kind::kSelect:
        ok = analyzer.select_implementation(
            resolved[i].process, static_cast<std::size_t>(patch.value),
            &apply_error);
        break;
      case PatchOp::Kind::kProcessLatency:
        ok = analyzer.set_latency(resolved[i].process, patch.value,
                                  &apply_error);
        break;
      case PatchOp::Kind::kChannelLatency:
        ok = analyzer.set_channel_latency(resolved[i].channel, patch.value,
                                          &apply_error);
        break;
      case PatchOp::Kind::kRetarget:
        ok = analyzer.retarget_channel(resolved[i].channel,
                                       resolved[i].process, &apply_error);
        break;
    }
    // Pre-validation mirrors the analyzer's own checks, so a failure here
    // means the two fell out of sync — surface it loudly instead of
    // answering from a half-patched session.
    if (!ok) {
      throw std::runtime_error("patch " + std::to_string(i) +
                               " failed after validation: " + apply_error);
    }
  }
  obs::count("svc.sessions.patches",
             static_cast<std::int64_t>(request.patches.size()));
  const comp::PartitionedReport& part = analyzer.analyze();
  JsonValue result = session_report_json(part, analyzer);
  result.set("session", JsonValue::string(request.session));
  result.set("patched", JsonValue::integer(
                            static_cast<std::int64_t>(request.patches.size())));
  return result;
}

JsonValue Broker::run_close_session(const Request& request, std::string* error,
                                    ErrorCode* code) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    *code = ErrorCode::kBadRequest;
    *error = "unknown session '" + request.session + "'";
    return JsonValue::null();
  }
  sessions_.erase(it);
  obs::count("svc.sessions.closed");
  JsonValue result = JsonValue::object();
  result.set("session", JsonValue::string(request.session));
  result.set("closed", JsonValue::boolean(true));
  return result;
}

namespace {

// Stats-plane view of one HDR quantile instrument (nanosecond values).
JsonValue quantile_json(const obs::QuantileSnapshot& q) {
  JsonValue v = JsonValue::object();
  v.set("count", JsonValue::integer(q.count));
  v.set("mean_ns", JsonValue::number(q.mean()));
  v.set("p50_ns", JsonValue::integer(q.quantile(0.50)));
  v.set("p90_ns", JsonValue::integer(q.quantile(0.90)));
  v.set("p99_ns", JsonValue::integer(q.quantile(0.99)));
  v.set("p999_ns", JsonValue::integer(q.quantile(0.999)));
  v.set("max_ns", JsonValue::integer(q.count > 0 ? q.max : 0));
  return v;
}

}  // namespace

bool Broker::save_cache(std::string* error) {
  if (options_.cache_file.empty()) return true;
  // The snapshot writer stages through one fixed tmp path, so every save
  // path (background saver, shutdown save, cache_save op) serializes here.
  std::lock_guard<std::mutex> lock(save_mu_);
  const std::int64_t misses = cache_.misses();
  if (misses == saved_misses_) return true;  // nothing inserted since last save
  if (!cache_.save_snapshot(options_.cache_file, error)) return false;
  saved_misses_ = misses;
  cache_saves_.fetch_add(1, std::memory_order_relaxed);
  obs::count("svc.cache.saves");
  return true;
}

JsonValue Broker::run_cache_save(std::string* error, ErrorCode* code) {
  if (options_.cache_file.empty()) {
    *error = "no --cache-file configured on this daemon";
    *code = ErrorCode::kBadRequest;
    return JsonValue();
  }
  std::string save_error;
  bool saved;
  {
    // An explicit request always writes (the client may want the file's
    // mtime refreshed), unlike the idle-skipping periodic save.
    std::lock_guard<std::mutex> lock(save_mu_);
    saved = cache_.save_snapshot(options_.cache_file, &save_error);
    if (saved) saved_misses_ = cache_.misses();
  }
  if (!saved) {
    // An I/O failure on a configured path is the daemon's problem, not the
    // client's; surface it through the internal-error path.
    throw std::runtime_error("cache_save: " + save_error);
  }
  JsonValue out = JsonValue::object();
  out.set("path", JsonValue::string(options_.cache_file));
  out.set("entries",
          JsonValue::integer(static_cast<std::int64_t>(cache_.size())));
  out.set("bytes", JsonValue::integer(cache_.bytes()));
  return out;
}

JsonValue Broker::run_stats(int version) {
  const Stats s = stats();
  JsonValue broker = JsonValue::object();
  broker.set("accepted", JsonValue::integer(s.accepted));
  broker.set("completed", JsonValue::integer(s.completed));
  broker.set("bad_requests", JsonValue::integer(s.bad_requests));
  broker.set("rejected_overloaded",
             JsonValue::integer(s.rejected_overloaded));
  broker.set("rejected_shutting_down",
             JsonValue::integer(s.rejected_shutting_down));
  broker.set("deadline_exceeded", JsonValue::integer(s.deadline_exceeded));
  broker.set("internal_errors", JsonValue::integer(s.internal_errors));
  broker.set("waiting", JsonValue::integer(s.waiting));
  broker.set("in_flight", JsonValue::integer(s.in_flight));
  broker.set("sessions", JsonValue::integer(s.sessions));
  broker.set("queue_depth",
             JsonValue::integer(
                 static_cast<std::int64_t>(options_.queue_depth)));
  broker.set("workers",
             JsonValue::integer(static_cast<std::int64_t>(pool_.jobs() - 1)));
  // v2-only members: the v1 broker body stays byte-identical for clients
  // that snapshot or diff it.
  if (version >= 2) {
    broker.set("coalesced", JsonValue::integer(s.coalesced));
    broker.set("batched", JsonValue::integer(s.batched));
    broker.set("cache_saves", JsonValue::integer(s.cache_saves));
  }

  JsonValue cache = JsonValue::object();
  cache.set("hits", JsonValue::integer(cache_.hits()));
  cache.set("misses", JsonValue::integer(cache_.misses()));
  cache.set("hit_rate", JsonValue::number(cache_.hit_rate()));
  cache.set("entries",
            JsonValue::integer(static_cast<std::int64_t>(cache_.size())));

  // v2 additions. The v1 response keeps exactly the original shape — old
  // clients that snapshot or diff the stats body never see a new member —
  // while a v2 `stats` adds per-shard cache counters, request-latency
  // percentiles (overall and per op), sliding-window rates, and the
  // process-wide solver counters.
  if (version >= 2) {
    JsonValue shards = JsonValue::array();
    for (const analysis::EvalCache::ShardStats& shard : cache_.shard_stats()) {
      JsonValue row = JsonValue::object();
      row.set("entries",
              JsonValue::integer(static_cast<std::int64_t>(shard.entries)));
      row.set("hits", JsonValue::integer(shard.hits));
      row.set("misses", JsonValue::integer(shard.misses));
      row.set("bytes", JsonValue::integer(shard.bytes));
      shards.push_back(std::move(row));
    }
    cache.set("shards", std::move(shards));
    cache.set("window_hit_rate", JsonValue::number(cache_.window_hit_rate()));
    // Capacity plane: tracked bytes vs the configured budget (0 =
    // unbounded), eviction traffic, and warm-restore provenance.
    cache.set("bytes", JsonValue::integer(cache_.bytes()));
    cache.set("byte_budget", JsonValue::integer(cache_.byte_budget()));
    cache.set("evictions", JsonValue::integer(cache_.evictions()));
    cache.set("admission_rejects",
              JsonValue::integer(cache_.admission_rejects()));
    cache.set("restored",
              JsonValue::integer(static_cast<std::int64_t>(cache_restored_)));
    // Per-family split of the capacity plane: the report/eval/aux memos own
    // separate slices of the budget, so pressure is per-family, not global.
    JsonValue families = JsonValue::array();
    for (const analysis::EvalCache::FamilyStats& family :
         cache_.family_stats()) {
      JsonValue row = JsonValue::object();
      row.set("name", JsonValue::string(family.name));
      row.set("entries",
              JsonValue::integer(static_cast<std::int64_t>(family.entries)));
      row.set("bytes", JsonValue::integer(family.bytes));
      row.set("byte_budget", JsonValue::integer(family.byte_budget));
      row.set("evictions", JsonValue::integer(family.evictions));
      row.set("admission_rejects",
              JsonValue::integer(family.admission_rejects));
      families.push_back(std::move(row));
    }
    cache.set("families", std::move(families));
  }

  JsonValue out = JsonValue::object();
  out.set("protocol_version", JsonValue::integer(kProtocolVersion));
  if (version >= 2) {
    out.set("build", JsonValue::string(util::build_info()));
  }
  out.set("broker", std::move(broker));
  out.set("cache", std::move(cache));

  if (version >= 2) {
    obs::Registry& registry = obs::Registry::global();
    out.set("latency",
            quantile_json(registry.quantile("svc.request_ns").snapshot()));
    out.set("queue_wait",
            quantile_json(registry.quantile("svc.queue_wait_ns").snapshot()));

    // Per-op latency percentiles: every svc.op_ns.<op> instrument observed
    // so far (ops never requested are absent, not zero).
    JsonValue ops = JsonValue::object();
    constexpr std::string_view kOpPrefix = "svc.op_ns.";
    for (const obs::Registry::Entry& entry : registry.entries()) {
      if (entry.kind != obs::Registry::Entry::Kind::kQuantile) continue;
      if (entry.name.rfind(kOpPrefix, 0) != 0) continue;
      ops.set(entry.name.substr(kOpPrefix.size()), quantile_json(entry.qhist));
    }
    out.set("ops", std::move(ops));

    JsonValue window = JsonValue::object();
    window.set("seconds",
               JsonValue::integer(window_requests_.window_seconds()));
    window.set("requests", JsonValue::integer(window_requests_.sum()));
    window.set("rps", JsonValue::number(window_requests_.rate_per_sec()));
    window.set("cache_hit_rate", JsonValue::number(cache_.window_hit_rate()));
    out.set("window", std::move(window));

    // Process-wide CSR solver counters (the registry mirror of
    // tmg::CycleMeanSolver::Stats, aggregated across every solver).
    JsonValue solver = JsonValue::object();
    for (const char* key :
         {"compiles", "weight_refreshes", "solves", "seeded_solves",
          "iterations", "cap_hits", "batch_solves", "batch_scenarios",
          "batch_scc_solves", "batch_scc_reuses"}) {
      solver.set(key, JsonValue::integer(
                          registry.counter(std::string("tmg.solver.") + key)
                              .value()));
    }
    out.set("solver", std::move(solver));
  }

  // The obs registry snapshot is already JSON; splice it in verbatim.
  out.set("metrics", JsonValue::raw(obs::Registry::global().to_json()));
  return out;
}

JsonValue Broker::run_metrics() {
  // The full registry in Prometheus text exposition, plus the labeled series
  // a flat name registry cannot express: per-shard cache counters and the
  // sliding-window rates.
  std::string body = obs::render_prometheus();
  const std::vector<analysis::EvalCache::ShardStats> shards =
      cache_.shard_stats();
  body += "# TYPE ermes_cache_shard_entries gauge\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    body += "ermes_cache_shard_entries{shard=\"" + std::to_string(i) +
            "\"} " + std::to_string(shards[i].entries) + "\n";
  }
  body += "# TYPE ermes_cache_shard_hits counter\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    body += "ermes_cache_shard_hits_total{shard=\"" + std::to_string(i) +
            "\"} " + std::to_string(shards[i].hits) + "\n";
  }
  body += "# TYPE ermes_cache_shard_misses counter\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    body += "ermes_cache_shard_misses_total{shard=\"" + std::to_string(i) +
            "\"} " + std::to_string(shards[i].misses) + "\n";
  }
  body += "# TYPE ermes_cache_shard_bytes gauge\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    body += "ermes_cache_shard_bytes{shard=\"" + std::to_string(i) + "\"} " +
            std::to_string(shards[i].bytes) + "\n";
  }
  const std::vector<analysis::EvalCache::FamilyStats> families =
      cache_.family_stats();
  body += "# TYPE ermes_cache_family_entries gauge\n";
  for (const auto& f : families) {
    body += "ermes_cache_family_entries{family=\"" + std::string(f.name) +
            "\"} " + std::to_string(f.entries) + "\n";
  }
  body += "# TYPE ermes_cache_family_bytes gauge\n";
  for (const auto& f : families) {
    body += "ermes_cache_family_bytes{family=\"" + std::string(f.name) +
            "\"} " + std::to_string(f.bytes) + "\n";
  }
  body += "# TYPE ermes_cache_family_byte_budget gauge\n";
  for (const auto& f : families) {
    body += "ermes_cache_family_byte_budget{family=\"" + std::string(f.name) +
            "\"} " + std::to_string(f.byte_budget) + "\n";
  }
  body += "# TYPE ermes_cache_family_evictions counter\n";
  for (const auto& f : families) {
    body += "ermes_cache_family_evictions_total{family=\"" +
            std::string(f.name) + "\"} " + std::to_string(f.evictions) + "\n";
  }
  body += "# TYPE ermes_cache_family_admission_rejects counter\n";
  for (const auto& f : families) {
    body += "ermes_cache_family_admission_rejects_total{family=\"" +
            std::string(f.name) + "\"} " +
            std::to_string(f.admission_rejects) + "\n";
  }
  body += "# TYPE ermes_cache_bytes gauge\n";
  body += "ermes_cache_bytes " + std::to_string(cache_.bytes()) + "\n";
  body += "# TYPE ermes_cache_byte_budget gauge\n";
  body += "ermes_cache_byte_budget " + std::to_string(cache_.byte_budget()) +
          "\n";
  body += "# TYPE ermes_cache_evictions counter\n";
  body += "ermes_cache_evictions_total " + std::to_string(cache_.evictions()) +
          "\n";
  body += "# TYPE ermes_svc_window_rps gauge\n";
  body += "ermes_svc_window_rps " +
          obs::json_number(window_requests_.rate_per_sec()) + "\n";
  body += "# TYPE ermes_cache_window_hit_rate gauge\n";
  body += "ermes_cache_window_hit_rate " +
          obs::json_number(cache_.window_hit_rate()) + "\n";

  JsonValue out = JsonValue::object();
  out.set("content_type",
          JsonValue::string("text/plain; version=0.0.4; charset=utf-8"));
  out.set("body", JsonValue::string(body));
  // `text` is the member `ermes request --text` prints raw, so a scrape is
  // just `ermes request <endpoint> metrics --text`.
  out.set("text", JsonValue::string(body));
  return out;
}

}  // namespace ermes::svc
