#pragma once
// Socket front end of the analysis service (`ermes serve`).
//
// Since the src/net rebase, Server is a thin adapter: net::EventServer owns
// the listening socket (a unix-domain socket path or a TCP port on
// 127.0.0.1) and runs N event-loop shards — epoll (fallback: poll),
// non-blocking accept/read/write, connections pinned to a shard — so
// thousands of idle connections cost zero threads instead of one blocking
// reader thread each. This class glues the loop to the Broker: complete
// NDJSON lines go to Broker::handle_line, and responses come back through
// Conn::send_line from whichever pool worker finished the request, so a
// client may pipeline many requests and receive the responses (matched by
// id) as they complete — completion order, not submission order.
//
// Lifecycle: start() binds, listens, and spawns the shard threads; run()
// blocks until the broker starts draining, then performs the graceful
// shutdown sequence — stop accepting, let in-flight requests finish (the
// broker rejects new ones with shutting_down), flush their responses, close
// every connection, join the shards. Drain is triggered by a `shutdown`
// request, by request_stop(), or — when install_signal_handlers is set — by
// SIGINT/SIGTERM via a self-pipe the event loop watches.
//
// Robustness rules at the framing layer: a line longer than max_line_bytes
// gets a bad_request response and the connection is closed (the stream
// cannot be resynchronized); empty lines are ignored; a half-line at EOF is
// dropped. Malformed JSON inside a line is the broker's bad_request path,
// and never kills the connection.

#include <cstdint>
#include <memory>
#include <string>

#include "net/event_server.h"
#include "svc/broker.h"

namespace ermes::svc {

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over `port` when non-empty.
  std::string socket_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral, query with Server::port()).
  int port = -1;
  BrokerOptions broker;
  /// Upper bound on one request line; longer input closes the connection.
  std::size_t max_line_bytes = 8u << 20;
  /// Route SIGINT/SIGTERM into a graceful drain of this server.
  bool install_signal_handlers = false;
  /// Event-loop shards (`serve --net-shards`). 0 = one per core, capped at 8.
  std::size_t net_shards = 0;
  /// Concurrent-connection cap (`serve --max-conns`). 0 = unbounded.
  std::size_t max_conns = 0;
  /// Tests: force the poll reactor backend even where epoll exists.
  bool force_poll = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts serving. On failure fills *error and
  /// returns false.
  bool start(std::string* error);

  /// Blocks until a drain is requested, then completes it and returns.
  void run();

  /// Initiates the drain from any thread (also wired to signals).
  void request_stop();

  /// Bound TCP port (after start(); -1 for unix-socket servers).
  int port() const { return net_ ? net_->port() : -1; }
  const std::string& socket_path() const { return options_.socket_path; }

  /// Connections currently open (decays to zero once clients hang up).
  std::size_t active_connections() const {
    return net_ ? net_->connections() : 0;
  }

  Broker& broker() { return *broker_; }

 private:
  ServerOptions options_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<net::EventServer> net_;
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace ermes::svc
