#pragma once
// Socket front end of the analysis service (`ermes serve`).
//
// The server owns the listening socket (a unix-domain socket path or a TCP
// port on 127.0.0.1), accepts connections, and runs one reader thread per
// connection that splits the stream into NDJSON lines and feeds them to the
// Broker. Responses are written back on the same connection under a
// per-connection write lock, so a client may pipeline many requests and
// receive the responses (matched by id) as they complete — completion
// order, not submission order.
//
// Lifecycle: start() binds and listens; run() blocks in a poll/accept loop
// until the broker starts draining, then performs the graceful shutdown
// sequence — stop accepting, let in-flight requests finish (the broker
// rejects new ones with shutting_down), flush their responses, shut down
// every connection, join the reader threads. Drain is triggered by a
// `shutdown` request, by request_stop(), or — when install_signal_handlers
// is set — by SIGINT/SIGTERM via a self-pipe.
//
// Robustness rules at the framing layer: a line longer than max_line_bytes
// gets a bad_request response and the connection is closed (the stream
// cannot be resynchronized); empty lines are ignored; a half-line at EOF is
// dropped. Malformed JSON inside a line is the broker's bad_request path,
// and never kills the connection.

#include <cstdint>
#include <memory>
#include <string>

#include "svc/broker.h"

namespace ermes::svc {

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over `port` when non-empty.
  std::string socket_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral, query with Server::port()).
  int port = -1;
  BrokerOptions broker;
  /// Upper bound on one request line; longer input closes the connection.
  std::size_t max_line_bytes = 8u << 20;
  /// Route SIGINT/SIGTERM into a graceful drain of this server.
  bool install_signal_handlers = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. On failure fills *error and returns false.
  bool start(std::string* error);

  /// Accept loop; returns after a graceful drain completes.
  void run();

  /// Initiates the drain from any thread (also wired to signals).
  void request_stop();

  /// Bound TCP port (after start(); -1 for unix-socket servers).
  int port() const { return bound_port_; }
  const std::string& socket_path() const { return options_.socket_path; }

  /// Connections currently tracked (readers remove themselves on
  /// disconnect, so this decays to zero once clients hang up).
  std::size_t active_connections() const;

  Broker& broker() { return *broker_; }

 private:
  struct Connection;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void wake();
  void reap_finished();
  void shutdown_all_and_join();

  ServerOptions options_;
  std::unique_ptr<Broker> broker_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = -1;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ermes::svc
