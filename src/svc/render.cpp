#include "svc/render.h"

#include "analysis/deadlock.h"
#include "io/soc_format.h"
#include "util/table.h"

namespace ermes::svc {

std::string analyze_text(const sysmodel::SystemModel& sys,
                         const analysis::PerformanceReport& report) {
  if (!report.live) {
    const analysis::DeadlockDiagnosis diag = analysis::diagnose_system(sys);
    return "DEADLOCK: " + analysis::to_string(diag, sys) + "\n";
  }
  return analysis::summarize(report, sys) + "\n";
}

std::string order_text(bool before_live, double before_ct,
                       const analysis::PerformanceReport& after,
                       const sysmodel::SystemModel& ordered,
                       const std::string& system_name) {
  std::string out = "cycle time: ";
  out += before_live ? util::format_double(before_ct) : "DEADLOCK";
  out += " -> ";
  out += util::format_double(after.cycle_time);
  out += "\n";
  out += io::write_soc(ordered, system_name);
  return out;
}

std::string explore_text(const dse::ExplorationResult& result) {
  util::Table table({"iter", "action", "CT", "area", "meets TCT"});
  for (const dse::IterationRecord& rec : result.history) {
    table.add_row({std::to_string(rec.iteration), dse::to_string(rec.action),
                   util::format_double(rec.cycle_time, 0),
                   util::format_double(rec.area, 4),
                   rec.meets_target ? "yes" : "no"});
  }
  std::string out = table.to_text(0);
  out += result.met_target ? "target met\n" : "target NOT met\n";
  return out;
}

std::string sweep_text(const std::vector<std::int64_t>& targets,
                       const std::vector<dse::ExplorationResult>& results) {
  util::Table table({"TCT", "iters", "final CT", "final area", "meets TCT"});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const dse::IterationRecord& last = results[i].history.back();
    table.add_row({std::to_string(targets[i]),
                   std::to_string(results[i].history.size()),
                   util::format_double(last.cycle_time, 0),
                   util::format_double(last.area, 4),
                   results[i].met_target ? "yes" : "no"});
  }
  return table.to_text(0);
}

}  // namespace ermes::svc
