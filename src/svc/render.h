#pragma once
// Canonical text rendering of command results, shared by the CLI and the
// analysis service.
//
// The service's bit-identical contract — a daemon response carries exactly
// the text a single-shot `ermes <cmd>` invocation prints to stdout — only
// holds if both go through one renderer. The CLI calls these and printf's
// the returned string; the broker calls the same functions and ships the
// string in the response's "text" member; bench/bench_serve.cpp asserts the
// two are equal byte for byte.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/performance.h"
#include "dse/explorer.h"
#include "sysmodel/system.h"

namespace ermes::svc {

/// `ermes analyze`: performance summary, or the deadlock diagnosis when the
/// system is not live (exactly the CLI stdout, trailing newline included).
std::string analyze_text(const sysmodel::SystemModel& sys,
                         const analysis::PerformanceReport& report);

/// `ermes order` without -o: the cycle-time delta line followed by the
/// serialized ordered system. `before_live` false renders "DEADLOCK" as the
/// pre-ordering cycle time.
std::string order_text(bool before_live, double before_ct,
                       const analysis::PerformanceReport& after,
                       const sysmodel::SystemModel& ordered,
                       const std::string& system_name);

/// `ermes dse`: the per-iteration history table plus the verdict line.
std::string explore_text(const dse::ExplorationResult& result);

/// `ermes sweep`: the per-target result table (the CLI additionally prints a
/// timing/cache line, which is run-dependent and deliberately excluded).
std::string sweep_text(const std::vector<std::int64_t>& targets,
                       const std::vector<dse::ExplorationResult>& results);

}  // namespace ermes::svc
