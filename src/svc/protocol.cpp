#include "svc/protocol.h"

namespace ermes::svc {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kAnalyze: return "analyze";
    case Op::kOrder: return "order";
    case Op::kExplore: return "explore";
    case Op::kSweep: return "sweep";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kShutdown: return "shutdown";
    case Op::kOpenSession: return "open_session";
    case Op::kPatch: return "patch";
    case Op::kCloseSession: return "close_session";
    case Op::kCacheSave: return "cache_save";
  }
  return "?";
}

bool parse_op(std::string_view name, Op* out) {
  const struct { std::string_view name; Op op; } kOps[] = {
      {"analyze", Op::kAnalyze},
      {"order", Op::kOrder},
      {"explore", Op::kExplore},
      {"sweep", Op::kSweep},
      {"stats", Op::kStats},
      {"metrics", Op::kMetrics},
      {"shutdown", Op::kShutdown},
      {"open_session", Op::kOpenSession},
      {"patch", Op::kPatch},
      {"close_session", Op::kCloseSession},
      {"cache_save", Op::kCacheSave},
  };
  for (const auto& entry : kOps) {
    if (entry.name == name) {
      *out = entry.op;
      return true;
    }
  }
  return false;
}

bool is_session_op(Op op) {
  return op == Op::kOpenSession || op == Op::kPatch ||
         op == Op::kCloseSession;
}

namespace {

bool needs_soc(Op op) {
  return op == Op::kAnalyze || op == Op::kOrder || op == Op::kExplore ||
         op == Op::kSweep || op == Op::kOpenSession;
}

// Validates an optional non-negative integer member into *out.
bool read_i64(const JsonValue& obj, std::string_view key, std::int64_t* out,
              std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_integer() || v->as_int() < 0) {
    *error = std::string(key) + " must be a non-negative integer";
    return false;
  }
  *out = v->as_int();
  return true;
}

// One entry of a `patches` array: an object with exactly two members
// matching one of the four documented shapes. Anything looser would let a
// typoed patch ("latancy") silently apply as a different kind.
bool parse_patch_op(const JsonValue& item, PatchOp* out, std::string* error) {
  if (!item.is_object() || item.members().size() != 2) {
    *error = "each patch must be an object with exactly two members";
    return false;
  }
  const auto name_member = [&](std::string_view key,
                               std::string* dst) -> bool {
    const JsonValue* v = item.find(key);
    if (v == nullptr) return false;
    if (!v->is_string() || v->as_string().empty()) {
      *error = std::string("patch member '") + std::string(key) +
               "' must be a non-empty string";
      return false;
    }
    *dst = v->as_string();
    return true;
  };
  const auto int_member = [&](std::string_view key,
                              std::int64_t* dst) -> bool {
    const JsonValue* v = item.find(key);
    if (v == nullptr) return false;
    if (!v->is_integer() || v->as_int() < 0) {
      *error = std::string("patch member '") + std::string(key) +
               "' must be a non-negative integer";
      return false;
    }
    *dst = v->as_int();
    return true;
  };

  if (item.find("process") != nullptr) {
    if (!name_member("process", &out->process)) return false;
    if (item.find("select") != nullptr) {
      out->kind = PatchOp::Kind::kSelect;
      return int_member("select", &out->value);
    }
    if (item.find("latency") != nullptr) {
      out->kind = PatchOp::Kind::kProcessLatency;
      return int_member("latency", &out->value);
    }
    *error = "a 'process' patch needs 'select' or 'latency'";
    return false;
  }
  if (item.find("channel") != nullptr) {
    if (!name_member("channel", &out->channel)) return false;
    if (item.find("latency") != nullptr) {
      out->kind = PatchOp::Kind::kChannelLatency;
      return int_member("latency", &out->value);
    }
    if (item.find("retarget") != nullptr) {
      out->kind = PatchOp::Kind::kRetarget;
      return name_member("retarget", &out->target);
    }
    *error = "a 'channel' patch needs 'latency' or 'retarget'";
    return false;
  }
  *error = "each patch must name a 'process' or a 'channel'";
  return false;
}

}  // namespace

RequestParse parse_request(std::string_view line) {
  RequestParse out;
  const JsonParseResult doc = json_parse(line);
  if (!doc.ok) {
    out.error = "invalid JSON: " + doc.error;
    return out;
  }
  if (!doc.value.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  const JsonValue& obj = doc.value;

  // Recover the id first so even schema failures echo it back.
  if (const JsonValue* id = obj.find("id")) {
    if (!id->is_string() && !id->is_integer() && !id->is_null()) {
      out.error = "id must be a string or an integer";
      return out;
    }
    out.request.id = *id;
  }

  // Recover the version next: even schema failures answer in the client's
  // dialect.
  if (const JsonValue* v = obj.find("v")) {
    if (!v->is_integer() || v->as_int() < kMinProtocolVersion ||
        v->as_int() > kProtocolVersion) {
      out.error = "unsupported protocol version (this server speaks v" +
                  std::to_string(kMinProtocolVersion) + "..v" +
                  std::to_string(kProtocolVersion) + ")";
      return out;
    }
    out.request.version = static_cast<int>(v->as_int());
  }
  const bool v2 = out.request.version >= 2;

  const JsonValue* op = obj.find("op");
  if (op == nullptr || !op->is_string()) {
    out.error = "missing required member 'op'";
    return out;
  }
  if (!parse_op(op->as_string(), &out.request.op)) {
    out.error = "unknown op '" + op->as_string() + "'";
    return out;
  }
  if ((is_session_op(out.request.op) || out.request.op == Op::kCacheSave) &&
      !v2) {
    out.error = "op '" + std::string(to_string(out.request.op)) +
                "' requires protocol v2 (send \"v\":2)";
    return out;
  }

  // Strict schema: every member must be known, apply to the op, and — for
  // the v2 members — be backed by a "v":2 declaration.
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    const bool known =
        key == "v" || key == "id" || key == "op" || key == "deadline_ms" ||
        (key == "soc" && needs_soc(out.request.op)) ||
        (key == "tct" && out.request.op == Op::kExplore) ||
        ((key == "lo" || key == "hi" || key == "step") &&
         out.request.op == Op::kSweep) ||
        (v2 && key == "hier" && needs_soc(out.request.op)) ||
        (v2 && key == "session" && is_session_op(out.request.op)) ||
        (v2 && key == "patches" && out.request.op == Op::kPatch);
    if (!known) {
      out.error = "unexpected member '" + key + "' for op '" +
                  std::string(to_string(out.request.op)) + "'";
      return out;
    }
  }

  if (needs_soc(out.request.op)) {
    const JsonValue* soc = obj.find("soc");
    if (soc == nullptr || !soc->is_string() || soc->as_string().empty()) {
      out.error = "op '" + std::string(to_string(out.request.op)) +
                  "' requires a non-empty string member 'soc'";
      return out;
    }
    out.request.soc = soc->as_string();
  }

  if (!read_i64(obj, "deadline_ms", &out.request.deadline_ms, &out.error)) {
    return out;
  }

  if (out.request.op == Op::kExplore) {
    const JsonValue* tct = obj.find("tct");
    if (tct == nullptr || !tct->is_integer() || tct->as_int() <= 0) {
      out.error = "op 'explore' requires a positive integer member 'tct'";
      return out;
    }
    out.request.tct = tct->as_int();
  }

  if (out.request.op == Op::kSweep) {
    if (!read_i64(obj, "lo", &out.request.lo, &out.error)) return out;
    if (!read_i64(obj, "hi", &out.request.hi, &out.error)) return out;
    if (!read_i64(obj, "step", &out.request.step, &out.error)) return out;
    if (out.request.lo <= 0 || out.request.hi < out.request.lo) {
      out.error = "op 'sweep' needs 0 < lo <= hi";
      return out;
    }
    // With an explicit step, bound the target count up front (a defaulted
    // step is derived from the span and lands at ~8 targets). lo > 0 and
    // hi >= lo make the span arithmetic overflow-free.
    if (out.request.step > 0 &&
        (out.request.hi - out.request.lo) / out.request.step + 1 >
            kMaxSweepTargets) {
      out.error = "op 'sweep' expands to more than " +
                  std::to_string(kMaxSweepTargets) +
                  " targets; raise 'step' or narrow [lo, hi]";
      return out;
    }
  }

  if (const JsonValue* hier = obj.find("hier")) {
    if (!hier->is_bool()) {
      out.error = "hier must be a boolean";
      return out;
    }
    out.request.hier = hier->as_bool();
  }

  if (is_session_op(out.request.op)) {
    const JsonValue* session = obj.find("session");
    if (session == nullptr || !session->is_string() ||
        session->as_string().empty()) {
      out.error = "op '" + std::string(to_string(out.request.op)) +
                  "' requires a non-empty string member 'session'";
      return out;
    }
    if (session->as_string().size() > kMaxSessionIdLen) {
      out.error = "session id longer than " +
                  std::to_string(kMaxSessionIdLen) + " bytes";
      return out;
    }
    out.request.session = session->as_string();
  }

  if (out.request.op == Op::kPatch) {
    const JsonValue* patches = obj.find("patches");
    if (patches == nullptr || !patches->is_array() ||
        patches->items().empty()) {
      out.error = "op 'patch' requires a non-empty array member 'patches'";
      return out;
    }
    if (patches->items().size() > kMaxPatchOps) {
      out.error = "more than " + std::to_string(kMaxPatchOps) +
                  " patches in one request";
      return out;
    }
    out.request.patches.reserve(patches->items().size());
    for (const JsonValue& item : patches->items()) {
      PatchOp patch;
      if (!parse_patch_op(item, &patch, &out.error)) return out;
      out.request.patches.push_back(std::move(patch));
    }
  }

  out.ok = true;
  return out;
}

namespace {

JsonValue envelope(const JsonValue& id, int version) {
  JsonValue response = JsonValue::object();
  response.set("v", JsonValue::integer(version));
  response.set("id", id);
  return response;
}

}  // namespace

std::string encode_ok(const JsonValue& id, JsonValue result, int version) {
  JsonValue response = envelope(id, version);
  response.set("ok", JsonValue::boolean(true));
  response.set("result", std::move(result));
  return response.to_string();
}

std::string encode_error(const JsonValue& id, ErrorCode code,
                         std::string_view message, int version) {
  JsonValue error = JsonValue::object();
  error.set("code", JsonValue::string(to_string(code)));
  error.set("message", JsonValue::string(message));
  JsonValue response = envelope(id, version);
  response.set("ok", JsonValue::boolean(false));
  response.set("error", std::move(error));
  return response.to_string();
}

std::string encode_request(Op op, const JsonValue& id, std::string_view soc,
                           std::int64_t tct, std::int64_t lo, std::int64_t hi,
                           std::int64_t step, std::int64_t deadline_ms) {
  JsonValue request = JsonValue::object();
  request.set("v", JsonValue::integer(kProtocolVersion));
  if (!id.is_null()) request.set("id", id);
  request.set("op", JsonValue::string(to_string(op)));
  if (!soc.empty()) request.set("soc", JsonValue::string(soc));
  if (tct > 0) request.set("tct", JsonValue::integer(tct));
  if (lo > 0) request.set("lo", JsonValue::integer(lo));
  if (hi > 0) request.set("hi", JsonValue::integer(hi));
  if (step > 0) request.set("step", JsonValue::integer(step));
  if (deadline_ms > 0) {
    request.set("deadline_ms", JsonValue::integer(deadline_ms));
  }
  return request.to_string();
}

ResponseView parse_response(std::string_view line) {
  ResponseView view;
  const JsonParseResult doc = json_parse(line);
  if (!doc.ok) {
    view.parse_error = doc.error;
    return view;
  }
  if (!doc.value.is_object()) {
    view.parse_error = "response must be a JSON object";
    return view;
  }
  if (const JsonValue* id = doc.value.find("id")) view.id = *id;
  const JsonValue* ok = doc.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    view.parse_error = "response missing 'ok'";
    return view;
  }
  view.ok = true;
  view.success = ok->as_bool();
  if (view.success) {
    if (const JsonValue* result = doc.value.find("result")) {
      view.result = *result;
    }
  } else if (const JsonValue* error = doc.value.find("error")) {
    if (const JsonValue* code = error->find("code")) {
      if (code->is_string()) view.error_code = code->as_string();
    }
    if (const JsonValue* message = error->find("message")) {
      if (message->is_string()) view.error_message = message->as_string();
    }
  }
  return view;
}

}  // namespace ermes::svc
