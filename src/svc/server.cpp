#include "svc/server.h"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <utility>

#include "util/log.h"

namespace ermes::svc {

namespace {

// Self-pipe write end for the signal handlers; write() is async-signal-safe.
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void ermes_svc_signal_handler(int) {
  const int fd = g_signal_wake_fd.load();
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      broker_(std::make_unique<Broker>(options_.broker)) {}

Server::~Server() {
  if (g_signal_wake_fd.load() == wake_pipe_[1]) g_signal_wake_fd.store(-1);
  // Belt and braces for a server destroyed without run() completing: finish
  // in-flight work before the loop tears the connections down.
  broker_->begin_drain();
  broker_->drain();
  if (net_) net_->shutdown();
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool Server::start(std::string* error) {
  if (::pipe(wake_pipe_) != 0) {
    *error = "cannot create wake pipe";
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  net::EventServerOptions net_options;
  net_options.socket_path = options_.socket_path;
  net_options.port = options_.port;
  net_options.shards = options_.net_shards;
  net_options.max_conns = options_.max_conns;
  net_options.max_line_bytes = options_.max_line_bytes;
  net_options.force_poll = options_.force_poll;
  net_options.stop_fd = wake_pipe_[0];

  net::EventServer::Callbacks callbacks;
  callbacks.on_line = [this](const std::shared_ptr<net::Conn>& conn,
                             std::string&& line) {
    // The response callback holds the connection alive; a peer that hung up
    // before its answer completed turns send_line into a no-op.
    broker_->handle_line(line, [conn](std::string response) {
      conn->send_line(response);
    });
  };
  callbacks.on_overflow = [this](const std::shared_ptr<net::Conn>& conn) {
    conn->send_line(encode_error(
        JsonValue::null(), ErrorCode::kBadRequest,
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes"));
  };

  net_ = std::make_unique<net::EventServer>(std::move(net_options),
                                            std::move(callbacks));
  broker_->set_drain_callback([this] { net_->request_stop(); });
  if (!net_->start(error)) {
    net_.reset();
    return false;
  }

  if (options_.install_signal_handlers) {
    g_signal_wake_fd.store(wake_pipe_[1]);
    struct sigaction action{};
    action.sa_handler = ermes_svc_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
  }
  return true;
}

void Server::request_stop() {
  broker_->begin_drain();  // drain callback stops the event loop
}

void Server::run() {
  net_->wait_stop();

  // Graceful drain: admission is already off (the broker rejects with
  // shutting_down); wait for in-flight requests to finish and their
  // responses to be enqueued, then flush and close every connection.
  broker_->begin_drain();
  broker_->drain();
  net_->shutdown();
  ERMES_LOG(kInfo) << "svc: drained and stopped";
}

}  // namespace ermes::svc
