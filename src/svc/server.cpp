#include "svc/server.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/log.h"

namespace ermes::svc {

namespace {

// Self-pipe write end for the signal handlers; write() is async-signal-safe.
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void ermes_svc_signal_handler(int) {
  const int fd = g_signal_wake_fd.load();
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  // Serialized line write; failures (peer gone) just mark the connection
  // closed — the in-flight request already completed against the cache.
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_acquire) || fd < 0) return;
    std::string framed = line;
    framed += '\n';
    if (!write_all(fd, framed.data(), framed.size())) {
      open.store(false, std::memory_order_release);
    }
    obs::count("svc.bytes_out", static_cast<std::int64_t>(framed.size()));
  }

  // Half-close from another thread (drain): unblocks the reader's recv()
  // without invalidating the fd it is blocked on.
  void shutdown_both() {
    std::lock_guard<std::mutex> lock(write_mu);
    open.store(false, std::memory_order_release);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  // Final close; serialized against write_line so the fd number cannot be
  // recycled under a response write still holding a shared_ptr to us.
  void close_fd() {
    std::lock_guard<std::mutex> lock(write_mu);
    open.store(false, std::memory_order_release);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

struct Server::Impl {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> threads;   // running reader threads
  std::vector<std::thread> finished;  // exited readers awaiting join
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      broker_(std::make_unique<Broker>(options_.broker)),
      impl_(std::make_unique<Impl>()) {}

Server::~Server() {
  if (g_signal_wake_fd.load() == wake_pipe_[1]) g_signal_wake_fd.store(-1);
  // Belt and braces for a server destroyed without run() completing: finish
  // in-flight work, unblock the readers, and join them before closing fds.
  broker_->begin_drain();
  broker_->drain();
  shutdown_all_and_join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

bool Server::start(std::string* error) {
  if (::pipe(wake_pipe_) != 0) {
    *error = "cannot create wake pipe";
    return false;
  }
  broker_->set_drain_callback([this] { wake(); });

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a dead daemon would make bind fail; probe it
    // with a connect and remove it only when nobody answers. A socket that
    // went through a failed connect is in an unspecified state, so the
    // probe uses its own fd.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool served = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                    sizeof(addr)) == 0;
      ::close(probe);
      if (served) {
        *error = "socket " + options_.socket_path + " is already served";
        return false;
      }
    }
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = "cannot create unix socket";
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *error = "cannot bind " + options_.socket_path;
      return false;
    }
  } else {
    if (options_.port < 0) {
      *error = "no socket path and no port configured";
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = "cannot create TCP socket";
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *error = "cannot bind 127.0.0.1:" + std::to_string(options_.port);
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  if (::listen(listen_fd_, 64) != 0) {
    *error = "listen failed";
    return false;
  }

  if (options_.install_signal_handlers) {
    g_signal_wake_fd.store(wake_pipe_[1]);
    struct sigaction action{};
    action.sa_handler = ermes_svc_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
  }
  return true;
}

void Server::wake() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::request_stop() {
  broker_->begin_drain();  // drain callback wakes the accept loop
}

void Server::run() {
  accept_loop();

  // Graceful drain: admission is already off (the broker rejects with
  // shutting_down); wait for in-flight requests to finish and their
  // responses to be written, then unblock and join the readers.
  broker_->begin_drain();
  broker_->drain();
  shutdown_all_and_join();
  ERMES_LOG(kInfo) << "svc: drained and stopped";
}

std::size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->connections.size();
}

// Joins reader threads that already removed themselves on disconnect. Runs
// on every accept-loop wakeup, so finished readers are reclaimed while the
// server keeps serving, not only at shutdown.
void Server::reap_finished() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    finished.swap(impl_->finished);
  }
  for (std::thread& t : finished) t.join();
}

void Server::shutdown_all_and_join() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const std::shared_ptr<Connection>& conn : impl_->connections) {
      conn->shutdown_both();
    }
  }
  // Take every thread handle in one swap: a reader that finishes after this
  // point finds nothing to self-reap (its handle is ours) and just exits;
  // no new readers can appear because the accept loop has returned.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (std::thread& t : impl_->threads) to_join.push_back(std::move(t));
    impl_->threads.clear();
    for (std::thread& t : impl_->finished) to_join.push_back(std::move(t));
    impl_->finished.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const std::shared_ptr<Connection>& conn : impl_->connections) {
      conn->close_fd();
    }
    impl_->connections.clear();
  }
}

void Server::accept_loop() {
  for (;;) {
    reap_finished();
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        // A handled signal interrupted poll; the self-pipe byte (if the
        // signal was ours) is picked up on the next iteration.
        continue;
      }
      ERMES_LOG(kError) << "svc: poll failed, stopping";
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || broker_->draining()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion leaves the listen fd readable, so an
        // immediate retry would busy-spin at 100% CPU. Back off briefly;
        // disconnecting clients free fds in the meantime.
        obs::count("svc.accept_backoff");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    obs::count("svc.connections");
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->connections.push_back(conn);
    impl_->threads.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void Server::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: the peer is gone
    obs::count("svc.bytes_in", n);
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      obs::count("svc.requests.lines");
      broker_->handle_line(
          line, [conn](std::string response) { conn->write_line(response); });
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      // The stream cannot be resynchronized once a line exceeds the frame
      // bound; answer once and drop the connection.
      conn->write_line(encode_error(
          JsonValue::null(), ErrorCode::kBadRequest,
          "request line exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes"));
      break;
    }
  }
  // Reap on disconnect: close our fd, drop the connection record, and move
  // our own thread handle to the finished list for the accept loop to join —
  // a long-lived daemon must not accumulate one fd + one thread per client
  // that ever connected. Responses still in flight hold a shared_ptr and
  // turn into no-ops in write_line once `open` is false.
  conn->shutdown_both();
  conn->close_fd();
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& conns = impl_->connections;
  conns.erase(std::remove(conns.begin(), conns.end(), conn), conns.end());
  const std::thread::id me = std::this_thread::get_id();
  for (auto it = impl_->threads.begin(); it != impl_->threads.end(); ++it) {
    if (it->get_id() == me) {
      impl_->finished.push_back(std::move(*it));
      impl_->threads.erase(it);
      break;
    }
  }
}

}  // namespace ermes::svc
