#pragma once
// Versioned NDJSON request/response protocol of the analysis service.
//
// One request per line, one response line per request, both JSON objects:
//
//   -> {"v":1,"id":"r1","op":"analyze","soc":"system s\nprocess a ..."}
//   <- {"v":1,"id":"r1","ok":true,"result":{...}}
//   <- {"v":1,"id":"r2","ok":false,
//       "error":{"code":"bad_request","message":"..."}}
//
// Request schema (v1, strict — unknown members are rejected so that a
// future v2 field can never be silently ignored by a v1 server):
//
//   v            optional int, must be 1 when present
//   id           optional string or integer, echoed verbatim (null if absent)
//   op           required: analyze | order | explore | sweep | stats | shutdown
//   soc          model text (required for analyze/order/explore/sweep)
//   tct          required positive integer for explore
//   lo, hi, step sweep targets (step optional); 0 < lo <= hi
//   deadline_ms  optional deadline in milliseconds (0/absent = server default)
//
// Error codes, in the order a request can die: `bad_request` (framing,
// schema, or .soc parse failure), `overloaded` (admission queue full),
// `shutting_down` (daemon draining), `deadline_exceeded` (cooperative
// cancellation fired), `internal` (handler threw). Responses are emitted by
// the broker; this header is pure data — parsing, validation, and encoding
// with no sockets and no threads, so the whole protocol is unit-testable
// in-process.

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/json.h"

namespace ermes::svc {

inline constexpr int kProtocolVersion = 1;

/// Upper bound on the number of targets one `sweep` request may expand to;
/// a wider [lo, hi]/step combination is rejected as bad_request instead of
/// allocating (and exploring) an unbounded target list.
inline constexpr std::int64_t kMaxSweepTargets = 1000;

enum class ErrorCode {
  kBadRequest,
  kOverloaded,
  kShuttingDown,
  kDeadlineExceeded,
  kInternal,
};

const char* to_string(ErrorCode code);

enum class Op { kAnalyze, kOrder, kExplore, kSweep, kStats, kShutdown };

const char* to_string(Op op);
bool parse_op(std::string_view name, Op* out);

struct Request {
  JsonValue id;  // string/integer echoed into the response; null when absent
  Op op = Op::kStats;
  std::string soc;
  std::int64_t tct = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t step = 0;
  std::int64_t deadline_ms = 0;  // 0 = use the broker default
};

struct RequestParse {
  bool ok = false;
  std::string error;  // bad_request message when !ok
  Request request;    // request.id is best-effort recovered even on failure
};

/// Parses and schema-validates one request line. Never throws.
RequestParse parse_request(std::string_view line);

/// Serializes a success response line (no trailing newline).
std::string encode_ok(const JsonValue& id, JsonValue result);

/// Serializes an error response line (no trailing newline).
std::string encode_error(const JsonValue& id, ErrorCode code,
                         std::string_view message);

/// Convenience for clients: builds a request line from parts (no newline).
/// Fields with zero values are omitted, matching the schema's optionality.
std::string encode_request(Op op, const JsonValue& id, std::string_view soc,
                           std::int64_t tct = 0, std::int64_t lo = 0,
                           std::int64_t hi = 0, std::int64_t step = 0,
                           std::int64_t deadline_ms = 0);

/// Parsed view of a response line (for clients and tests).
struct ResponseView {
  bool ok = false;          // transport-level parse succeeded
  std::string parse_error;  // when !ok
  JsonValue id;
  bool success = false;     // "ok" member
  std::string error_code;   // when !success
  std::string error_message;
  JsonValue result;         // when success
};

ResponseView parse_response(std::string_view line);

}  // namespace ermes::svc
