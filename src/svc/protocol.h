#pragma once
// Versioned NDJSON request/response protocol of the analysis service.
//
// One request per line, one response line per request, both JSON objects:
//
//   -> {"v":1,"id":"r1","op":"analyze","soc":"system s\nprocess a ..."}
//   <- {"v":1,"id":"r1","ok":true,"result":{...}}
//   <- {"v":1,"id":"r2","ok":false,
//       "error":{"code":"bad_request","message":"..."}}
//
// Request schema (strict — unknown members are rejected so that a future
// field can never be silently ignored by an older server):
//
//   v            optional int, 1 or 2 (absent = 1); responses echo it back
//   id           optional string or integer, echoed verbatim (null if absent)
//   op           required: analyze | order | explore | sweep | stats |
//                metrics | shutdown | open_session | patch | close_session |
//                cache_save (v2)
//   soc          model text (required for analyze/order/explore/sweep/
//                open_session)
//   tct          required positive integer for explore
//   lo, hi, step sweep targets (step optional); 0 < lo <= hi
//   deadline_ms  optional deadline in milliseconds (0/absent = server default)
//
// Protocol v2 is a strict superset of v1: every v1 line parses and behaves
// identically, and the members below are only accepted when the request
// says "v":2 (a v1 request using them is rejected exactly like any other
// unknown member, which is what keeps v1 clients honest):
//
//   hier         optional bool on ops taking `soc`: parse it through the
//                hierarchical grammar (io/soc_hier.h) and flatten
//   session      required string for the session ops (<= kMaxSessionIdLen)
//   patches      required array for op `patch` (<= kMaxPatchOps entries);
//                each entry is an object with exactly two members, one of
//                  {"process": p, "select": i}    implementation swap
//                  {"process": p, "latency": n}   computation latency
//                  {"channel": c, "latency": n}   transfer latency
//                  {"channel": c, "retarget": q}  new consumer process
//
// The session ops hold an incremental analysis session
// (comp::IncrementalAnalyzer) open across requests: `open_session` parses a
// model and runs the first full analysis, `patch` applies a batch of
// component patches atomically (all validated before any is applied) and
// re-analyzes only the dirtied components, `close_session` releases it.
//
// Two observability ops take no extra members: `stats` returns the broker/
// cache/metrics snapshot (v2 requests additionally get per-op latency
// percentiles, sliding-window rates, solver counters, and per-shard cache
// stats — the v1 response shape never changes); `metrics` returns the same
// registry rendered as Prometheus text exposition in result.body (a new op
// is additive, so it is accepted at every protocol version).
//
// Error codes, in the order a request can die: `bad_request` (framing,
// schema, or .soc parse failure), `overloaded` (admission queue full),
// `shutting_down` (daemon draining), `deadline_exceeded` (cooperative
// cancellation fired), `internal` (handler threw). Responses are emitted by
// the broker; this header is pure data — parsing, validation, and encoding
// with no sockets and no threads, so the whole protocol is unit-testable
// in-process.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "svc/json.h"

namespace ermes::svc {

inline constexpr int kProtocolVersion = 2;
inline constexpr int kMinProtocolVersion = 1;

/// Upper bounds on v2 session requests, rejected as bad_request beyond.
inline constexpr std::size_t kMaxPatchOps = 256;
inline constexpr std::size_t kMaxSessionIdLen = 128;

/// Upper bound on the number of targets one `sweep` request may expand to;
/// a wider [lo, hi]/step combination is rejected as bad_request instead of
/// allocating (and exploring) an unbounded target list.
inline constexpr std::int64_t kMaxSweepTargets = 1000;

enum class ErrorCode {
  kBadRequest,
  kOverloaded,
  kShuttingDown,
  kDeadlineExceeded,
  kInternal,
};

const char* to_string(ErrorCode code);

enum class Op {
  kAnalyze,
  kOrder,
  kExplore,
  kSweep,
  kStats,
  kMetrics,
  kShutdown,
  // v2 session ops.
  kOpenSession,
  kPatch,
  kCloseSession,
  // v2: persist the warm eval cache to the daemon's --cache-file now
  // (in addition to the automatic save on clean shutdown).
  kCacheSave,
};

const char* to_string(Op op);
bool parse_op(std::string_view name, Op* out);

/// True for the ops that carry an incremental-session id (all v2-only).
bool is_session_op(Op op);

/// One component patch of a v2 `patch` request (names, not ids — the
/// session's model resolves them).
struct PatchOp {
  enum class Kind {
    kSelect,          // {"process": p, "select": i}
    kProcessLatency,  // {"process": p, "latency": n}
    kChannelLatency,  // {"channel": c, "latency": n}
    kRetarget,        // {"channel": c, "retarget": q}
  };
  Kind kind = Kind::kSelect;
  std::string process;  // kSelect / kProcessLatency
  std::string channel;  // kChannelLatency / kRetarget
  std::int64_t value = 0;   // select index or latency
  std::string target;       // kRetarget: new consumer process
};

struct Request {
  JsonValue id;  // string/integer echoed into the response; null when absent
  int version = 1;  // echoed into the response envelope
  Op op = Op::kStats;
  std::string soc;
  std::int64_t tct = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t step = 0;
  std::int64_t deadline_ms = 0;  // 0 = use the broker default
  // v2 members.
  bool hier = false;     // parse `soc` through the hierarchical grammar
  std::string session;   // session ops
  std::vector<PatchOp> patches;  // op `patch`
};

struct RequestParse {
  bool ok = false;
  std::string error;  // bad_request message when !ok
  Request request;    // id and version are best-effort recovered on failure
};

/// Parses and schema-validates one request line. Never throws.
RequestParse parse_request(std::string_view line);

/// Serializes a success response line (no trailing newline). `version` is
/// the request's (echoed) protocol version.
std::string encode_ok(const JsonValue& id, JsonValue result,
                      int version = kProtocolVersion);

/// Serializes an error response line (no trailing newline).
std::string encode_error(const JsonValue& id, ErrorCode code,
                         std::string_view message,
                         int version = kProtocolVersion);

/// Convenience for clients: builds a request line from parts (no newline).
/// Fields with zero values are omitted, matching the schema's optionality.
std::string encode_request(Op op, const JsonValue& id, std::string_view soc,
                           std::int64_t tct = 0, std::int64_t lo = 0,
                           std::int64_t hi = 0, std::int64_t step = 0,
                           std::int64_t deadline_ms = 0);

/// Parsed view of a response line (for clients and tests).
struct ResponseView {
  bool ok = false;          // transport-level parse succeeded
  std::string parse_error;  // when !ok
  JsonValue id;
  bool success = false;     // "ok" member
  std::string error_code;   // when !success
  std::string error_message;
  JsonValue result;         // when success
};

ResponseView parse_response(std::string_view line);

}  // namespace ermes::svc
