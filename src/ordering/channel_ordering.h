#pragma once
// Channel ordering (Algorithm 1): Forward Labeling, Backward Labeling,
// Final Ordering.
//
// Final Ordering sorts each process' get statements by ascending head
// weight and its put statements by descending tail weight, breaking weight
// ties by ascending timestamps (the tie-break is required for deadlock
// freedom on symmetric structures — see bench_ablation_tiebreak). The
// intuition: put first toward the longest downstream path, get first from
// the shortest upstream path, so that the circuits spend the fewest cycles
// stalled at blocking I/O states.
//
// Complexity: two traversals O(|E|) plus the per-process sorts,
// O(|E| log |E|) total.

#include <vector>

#include "ordering/labeling.h"
#include "sysmodel/system.h"

namespace ermes::ordering {

struct ChannelOrderingResult {
  /// New get order per process.
  std::vector<std::vector<sysmodel::ChannelId>> input_order;
  /// New put order per process.
  std::vector<std::vector<sysmodel::ChannelId>> output_order;
  /// The labels the ordering was derived from.
  LabelingResult labels;
};

/// Runs Algorithm 1 on the model's current orders and latencies.
ChannelOrderingResult channel_ordering(const sysmodel::SystemModel& sys);

/// Variant without the timestamp tie-break (weight order only, ties left in
/// the pre-existing order) — exists solely for the ablation study of the
/// paper's claim that the tie-break prevents deadlocks on symmetric graphs.
ChannelOrderingResult channel_ordering_no_tiebreak(
    const sysmodel::SystemModel& sys);

/// Feedback-safe variant for graphs with feedback loops: weights are
/// computed over the acyclic skeleton only (back arcs do not contribute),
/// feedback inputs are read first (their producers are primed) and feedback
/// outputs are written last. Slightly more conservative than the published
/// algorithm, but empirically deadlock-free at every scale we generate;
/// ensure_live falls back to it before resorting to local search.
ChannelOrderingResult channel_ordering_feedback_safe(
    const sysmodel::SystemModel& sys);

/// Writes the computed orders into the model.
void apply_ordering(sysmodel::SystemModel& sys,
                    const ChannelOrderingResult& result);

/// Convenience: returns a copy of `sys` with the optimal ordering applied.
sysmodel::SystemModel with_optimal_ordering(sysmodel::SystemModel sys);

}  // namespace ermes::ordering
