#pragma once
// Local-search refinement of a channel ordering (an ERMES tool extension on
// top of the paper's Algorithm 1).
//
// Algorithm 1 is O(E log E) and reproduces the paper's published example
// exactly, but as a one-shot labeling heuristic it can leave cycle time on
// the table on irregular topologies (bench_ordering_quality quantifies the
// gap). This pass hill-climbs from any live order by swapping adjacent
// statements within a phase, keeping a swap only if the analytic cycle time
// strictly improves and the system stays live. Each evaluation is one TMG
// analysis, so the refinement is still cheap compared to simulation-driven
// exploration.

#include <cstdint>

#include "sysmodel/system.h"

namespace ermes::ordering {

struct LocalSearchResult {
  double initial_cycle_time = 0.0;
  double final_cycle_time = 0.0;
  int accepted_moves = 0;
  int evaluations = 0;
};

/// Refines sys's current orders in place. `max_rounds` bounds the number of
/// full sweeps over all adjacent pairs. The system must be live on entry
/// (run ensure_live first); returns zeros otherwise.
LocalSearchResult hill_climb_ordering(sysmodel::SystemModel& sys,
                                      int max_rounds = 50);

}  // namespace ermes::ordering
