#include "ordering/local_search.h"

#include <limits>
#include <utility>
#include <vector>

#include "analysis/performance.h"

namespace ermes::ordering {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

namespace {

double live_cycle_time(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time
                     : std::numeric_limits<double>::infinity();
}

}  // namespace

LocalSearchResult hill_climb_ordering(SystemModel& sys, int max_rounds) {
  LocalSearchResult result;
  double current = live_cycle_time(sys);
  ++result.evaluations;
  result.initial_cycle_time = current;
  result.final_cycle_time = current;
  if (current == std::numeric_limits<double>::infinity()) return result;

  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (ProcessId p = 0; p < sys.num_processes(); ++p) {
      for (const bool is_put : {false, true}) {
        std::vector<ChannelId> order =
            is_put ? sys.output_order(p) : sys.input_order(p);
        if (order.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
          std::swap(order[i], order[i + 1]);
          if (is_put) {
            sys.set_output_order(p, order);
          } else {
            sys.set_input_order(p, order);
          }
          const double cand = live_cycle_time(sys);
          ++result.evaluations;
          if (cand < current - 1e-12) {
            current = cand;
            ++result.accepted_moves;
            improved = true;
          } else {
            std::swap(order[i], order[i + 1]);  // revert
            if (is_put) {
              sys.set_output_order(p, order);
            } else {
              sys.set_input_order(p, order);
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  result.final_cycle_time = current;
  return result;
}

}  // namespace ermes::ordering
