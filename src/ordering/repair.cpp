#include "ordering/repair.h"

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/tmg_builder.h"
#include "ordering/channel_ordering.h"
#include "tmg/liveness.h"
#include "util/rng.h"

namespace ermes::ordering {

using analysis::PlaceRole;
using analysis::SystemTmg;
using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

namespace {

std::vector<ChannelId> orders_key(const SystemModel& sys) {
  std::vector<ChannelId> key;
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    key.insert(key.end(), sys.input_order(p).begin(),
               sys.input_order(p).end());
    key.push_back(sysmodel::kInvalidChannel);
    key.insert(key.end(), sys.output_order(p).begin(),
               sys.output_order(p).end());
    key.push_back(sysmodel::kInvalidChannel);
  }
  return key;
}

void move_to_front(SystemModel& sys, ProcessId p, ChannelId c, bool is_put) {
  std::vector<ChannelId> order =
      is_put ? sys.output_order(p) : sys.input_order(p);
  const auto it = std::find(order.begin(), order.end(), c);
  if (it == order.end() || it == order.begin()) return;
  order.erase(it);
  order.insert(order.begin(), c);
  if (is_put) {
    sys.set_output_order(p, std::move(order));
  } else {
    sys.set_input_order(p, std::move(order));
  }
}

}  // namespace

RepairResult ensure_live(SystemModel& sys, int max_iterations,
                         std::uint64_t seed) {
  RepairResult result;
  util::Rng rng(seed);
  // Fast path: already live.
  if (tmg::is_live(analysis::build_tmg(sys).graph)) {
    result.live = true;
    return result;
  }
  // First-tier fallback: the feedback-safe ordering variant. It discards
  // some of the latency-driven order (so it is only used when needed) but
  // is empirically deadlock-free on feedback-heavy graphs of any size.
  {
    SystemModel candidate = sys;
    apply_ordering(candidate, channel_ordering_feedback_safe(candidate));
    if (tmg::is_live(analysis::build_tmg(candidate).graph)) {
      sys = std::move(candidate);
      result.live = true;
      result.iterations = 1;
      return result;
    }
  }
  std::set<std::vector<ChannelId>> visited;
  visited.insert(orders_key(sys));

  for (int iter = 0; iter < max_iterations; ++iter) {
    const SystemTmg stmg = analysis::build_tmg(sys);
    const tmg::LivenessResult liveness = tmg::check_liveness(stmg.graph);
    if (liveness.live) {
      result.live = true;
      result.iterations = iter;
      return result;
    }
    // Witness-guided move: every token-free cycle threads a get/put place of
    // some process; moving that channel to the front of its phase removes
    // the pinned ring segment. Rotate the starting point so successive
    // iterations attack different parts of the cycle.
    bool moved = false;
    const std::size_t n = liveness.dead_cycle.size();
    for (std::size_t k = 0; k < n && !moved; ++k) {
      const tmg::PlaceId pl =
          liveness.dead_cycle[(k + static_cast<std::size_t>(iter)) % n];
      const PlaceRole& role = stmg.place_role[static_cast<std::size_t>(pl)];
      if (role.kind == PlaceRole::Kind::kComputeIn) continue;
      const bool is_put = role.kind == PlaceRole::Kind::kPut;
      const auto& order = is_put ? sys.output_order(role.process)
                                 : sys.input_order(role.process);
      if (order.size() < 2 || order.front() == role.channel) continue;
      move_to_front(sys, role.process, role.channel, is_put);
      moved = true;
    }
    if (!moved || !visited.insert(orders_key(sys)).second) {
      // Stuck or revisiting: random restart.
      ++result.random_restarts;
      for (ProcessId p = 0; p < sys.num_processes(); ++p) {
        std::vector<ChannelId> ins = sys.input_order(p);
        std::vector<ChannelId> outs = sys.output_order(p);
        rng.shuffle(ins);
        rng.shuffle(outs);
        sys.set_input_order(p, std::move(ins));
        sys.set_output_order(p, std::move(outs));
      }
      visited.insert(orders_key(sys));
    }
  }
  result.iterations = max_iterations;
  result.live = tmg::is_live(analysis::build_tmg(sys).graph);
  return result;
}

}  // namespace ermes::ordering
