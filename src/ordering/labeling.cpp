#include "ordering/labeling.h"

#include <algorithm>
#include <deque>

#include "graph/traversal.h"
#include "obs/metrics.h"

namespace ermes::ordering {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

namespace {

// Shared scaffolding of the two passes: a FIFO worklist gated on the number
// of still-unlabeled non-back arcs on the gating side.
struct PassState {
  std::vector<bool> visited_node;
  std::vector<std::int32_t> remaining;  // per node: ungated arcs left
  std::deque<ProcessId> queue;

  explicit PassState(std::int32_t num_nodes)
      : visited_node(static_cast<std::size_t>(num_nodes), false),
        remaining(static_cast<std::size_t>(num_nodes), 0) {}
};

}  // namespace

LabelingResult forward_backward_labeling(const SystemModel& sys,
                                         const LabelingOptions& options) {
  LabelingResult result = forward_labeling(sys, options);

  // ---- Backward pass -------------------------------------------------------
  PassState state(sys.num_processes());
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    if (!result.is_feedback_arc[static_cast<std::size_t>(c)]) {
      ++state.remaining[static_cast<std::size_t>(sys.channel_source(c))];
    }
  }
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (state.remaining[static_cast<std::size_t>(p)] == 0) {
      state.queue.push_back(p);
    }
  }

  std::vector<bool> labeled(static_cast<std::size_t>(sys.num_channels()),
                            false);
  std::int32_t timestamp = 1;

  auto visit = [&](ProcessId x) {
    if (state.visited_node[static_cast<std::size_t>(x)]) return;
    state.visited_node[static_cast<std::size_t>(x)] = true;

    // MaxOutArcWeight: max tail weight among x's already-labeled out arcs.
    std::int64_t max_out = 0;
    for (ChannelId c : sys.output_order(x)) {
      if (options.isolate_back_arcs &&
          result.is_feedback_arc[static_cast<std::size_t>(c)]) {
        continue;
      }
      if (labeled[static_cast<std::size_t>(c)]) {
        max_out = std::max(max_out,
                           result.tail_weight[static_cast<std::size_t>(c)]);
      }
    }
    // SumInArcLatency over all incoming channels.
    std::int64_t sum_in_lat = 0;
    for (ChannelId c : sys.input_order(x)) {
      sum_in_lat += sys.channel_latency(c);
    }
    const std::int64_t weight = max_out + sum_in_lat + sys.latency(x);

    // Incoming arcs in increasing order of their forward (head) timestamps.
    std::vector<ChannelId> ins = sys.input_order(x);
    std::sort(ins.begin(), ins.end(), [&](ChannelId a, ChannelId b) {
      return result.head_timestamp[static_cast<std::size_t>(a)] <
             result.head_timestamp[static_cast<std::size_t>(b)];
    });
    for (ChannelId c : ins) {
      const auto ci = static_cast<std::size_t>(c);
      result.tail_weight[ci] = weight;
      result.tail_timestamp[ci] = timestamp++;
      labeled[ci] = true;
      if (!result.is_feedback_arc[ci]) {
        const ProcessId y = sys.channel_source(c);
        if (--state.remaining[static_cast<std::size_t>(y)] == 0) {
          state.queue.push_back(y);
        }
      }
    }
  };

  while (!state.queue.empty()) {
    const ProcessId x = state.queue.front();
    state.queue.pop_front();
    visit(x);
  }
  // Fallback for vertices unreachable (in reverse) from any sink: label them
  // deterministically so every arc carries both labels.
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    visit(p);
    while (!state.queue.empty()) {
      const ProcessId x = state.queue.front();
      state.queue.pop_front();
      visit(x);
    }
  }
  // Every channel now carries a head and a tail label.
  obs::count("ordering.labels_assigned", 2 * sys.num_channels());
  return result;
}

LabelingResult forward_labeling(const SystemModel& sys,
                                const LabelingOptions& options) {
  LabelingResult result;
  const auto n_chan = static_cast<std::size_t>(sys.num_channels());
  result.head_weight.assign(n_chan, 0);
  result.head_timestamp.assign(n_chan, 0);
  result.tail_weight.assign(n_chan, 0);
  result.tail_timestamp.assign(n_chan, 0);

  // Feedback arcs break every cycle for the traversal gating. Cycles are
  // broken preferentially at arcs produced by *primed* processes — those
  // arcs carry the loop's initial data and their TMG transitions are token-
  // guarded, so they are the semantically right place to cut. Any cycle not
  // covered by priming is then broken by a DFS back arc.
  const graph::Digraph topo = sys.topology();
  std::vector<bool> primed_source(static_cast<std::size_t>(sys.num_channels()),
                                  false);
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    primed_source[static_cast<std::size_t>(c)] =
        sys.primed(sys.channel_source(c));
  }
  const graph::ArcClassification arc_classes =
      graph::classify_arcs(topo, sys.sources(), primed_source);
  result.is_back_arc = arc_classes.is_back;
  result.is_feedback_arc = result.is_back_arc;
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    if (primed_source[static_cast<std::size_t>(c)]) {
      result.is_feedback_arc[static_cast<std::size_t>(c)] = true;
    }
  }

  PassState state(sys.num_processes());
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    if (!result.is_feedback_arc[static_cast<std::size_t>(c)]) {
      ++state.remaining[static_cast<std::size_t>(sys.channel_target(c))];
    }
  }
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (state.remaining[static_cast<std::size_t>(p)] == 0) {
      state.queue.push_back(p);
    }
  }

  std::vector<bool> labeled(n_chan, false);
  std::int32_t timestamp = 1;

  auto visit = [&](ProcessId x) {
    if (state.visited_node[static_cast<std::size_t>(x)]) return;
    state.visited_node[static_cast<std::size_t>(x)] = true;

    std::int64_t max_in = 0;
    for (ChannelId c : sys.input_order(x)) {
      if (options.isolate_back_arcs &&
          result.is_feedback_arc[static_cast<std::size_t>(c)]) {
        continue;
      }
      if (labeled[static_cast<std::size_t>(c)]) {
        max_in = std::max(max_in,
                          result.head_weight[static_cast<std::size_t>(c)]);
      }
    }
    std::int64_t sum_out_lat = 0;
    for (ChannelId c : sys.output_order(x)) {
      sum_out_lat += sys.channel_latency(c);
    }
    const std::int64_t weight = max_in + sum_out_lat + sys.latency(x);

    // Outgoing arcs in the process' current put order (Algorithm 1 accepts
    // any designer-given order here).
    for (ChannelId c : sys.output_order(x)) {
      const auto ci = static_cast<std::size_t>(c);
      result.head_weight[ci] = weight;
      result.head_timestamp[ci] = timestamp++;
      labeled[ci] = true;
      if (!result.is_feedback_arc[ci]) {
        const ProcessId y = sys.channel_target(c);
        if (--state.remaining[static_cast<std::size_t>(y)] == 0) {
          state.queue.push_back(y);
        }
      }
    }
  };

  while (!state.queue.empty()) {
    const ProcessId x = state.queue.front();
    state.queue.pop_front();
    visit(x);
  }
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    visit(p);
    while (!state.queue.empty()) {
      const ProcessId x = state.queue.front();
      state.queue.pop_front();
      visit(x);
    }
  }
  return result;
}

}  // namespace ermes::ordering
