#pragma once
// Baseline orderings the paper compares against (implicitly or explicitly):
//
//  * index ordering — the designer's channel insertion order (what you get
//    by writing the SystemC without thinking about ordering);
//  * conservative ordering — Algorithm 1 run with unit latencies, i.e., a
//    pure traversal-timestamp order. Deadlock-free but oblivious to the
//    actual latencies (the "conservative ordering that guarantees absence of
//    deadlock but may introduce unnecessary serialization" of Section 6);
//  * random orderings — for distribution studies;
//  * exhaustive search — tries every (get x put) order combination; only
//    feasible on small systems, used as the optimality oracle.

#include <cstdint>
#include <functional>
#include <vector>

#include "sysmodel/system.h"
#include "util/rng.h"

namespace ermes::ordering {

/// Restores insertion (channel-id) order for every process.
void apply_index_ordering(sysmodel::SystemModel& sys);

/// Applies Algorithm 1 computed on a unit-latency copy of the system.
void apply_conservative_ordering(sysmodel::SystemModel& sys);

/// Shuffles every process' get and put orders.
void apply_random_ordering(sysmodel::SystemModel& sys, util::Rng& rng);

/// Cost of an ordering; return +infinity for deadlock. Typically wraps
/// analysis::analyze_system's cycle time.
using OrderingCost = std::function<double(const sysmodel::SystemModel&)>;

struct ExhaustiveResult {
  double best_cost = 0.0;
  double worst_finite_cost = 0.0;
  std::uint64_t combinations = 0;
  std::uint64_t deadlocked = 0;
  /// Orders achieving best_cost.
  std::vector<std::vector<sysmodel::ChannelId>> best_input_order;
  std::vector<std::vector<sysmodel::ChannelId>> best_output_order;
};

/// Enumerates every order combination (product of per-process permutations)
/// and evaluates `cost`. Aborts (returns partial data) after `limit`
/// combinations when limit > 0. The model is restored on return.
ExhaustiveResult exhaustive_search(sysmodel::SystemModel& sys,
                                   const OrderingCost& cost,
                                   std::uint64_t limit = 0);

}  // namespace ermes::ordering
