#pragma once
// Forward / Backward labeling (Algorithm 1, steps 1-2).
//
// Forward Labeling traverses the system graph from the sources with a FIFO
// queue. When vertex x is visited, each outgoing arc e = (x, y), considered
// in x's current put order, gets a head label (weight, timestamp) with
//   weight = MaxInArcWeight(x) + SumOutArcLatency(x) + Latency(x)
// and a globally increasing timestamp; y is enqueued when its last incoming
// arc is visited. Backward Labeling mirrors this from the sinks, visiting
// incoming arcs in increasing order of their forward (head) timestamps and
// assigning tail labels with
//   weight = MaxOutArcWeight(x) + SumInArcLatency(x) + Latency(x).
//
// Feedback loops: the published pseudo-code gates enqueueing on "last
// visiting arc", which never fires on a cycle. Following the paper's claim
// that the approach handles designs with feedback loops (MPEG-2, synthetic
// suite), we classify back arcs with a DFS from the sources first; back arcs
// do not gate enqueueing (they still receive labels when their tail/head
// vertex is visited). Vertices never reached this way (closed subgraphs) are
// labeled in a deterministic fallback pass so that every arc always carries
// both labels.

#include <cstdint>
#include <vector>

#include "sysmodel/system.h"

namespace ermes::ordering {

struct LabelingResult {
  // Indexed by ChannelId.
  std::vector<std::int64_t> head_weight;
  std::vector<std::int32_t> head_timestamp;
  std::vector<std::int64_t> tail_weight;
  std::vector<std::int32_t> tail_timestamp;
  std::vector<bool> is_back_arc;
  /// Arcs treated as loop-closing for gating/weight purposes. By default
  /// equal to is_back_arc; with isolate_back_arcs it additionally contains
  /// every arc produced by a primed process (those arcs are token-guarded in
  /// the TMG regardless of ordering, so excluding them from the skeleton is
  /// safe and keeps the weights a consistent potential).
  std::vector<bool> is_feedback_arc;
};

struct LabelingOptions {
  /// Exclude back arcs from the MaxInArcWeight / MaxOutArcWeight terms, so
  /// the weights form a consistent potential over the acyclic skeleton.
  /// Used by the feedback-safe ordering variant.
  bool isolate_back_arcs = false;
};

/// Runs forward labeling only (head labels; tail fields are left zero).
LabelingResult forward_labeling(const sysmodel::SystemModel& sys,
                                const LabelingOptions& options = {});

/// Runs forward + backward labeling.
LabelingResult forward_backward_labeling(const sysmodel::SystemModel& sys,
                                         const LabelingOptions& options = {});

}  // namespace ermes::ordering
