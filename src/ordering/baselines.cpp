#include "ordering/baselines.h"

#include <algorithm>
#include <limits>

#include "ordering/channel_ordering.h"
#include "ordering/repair.h"

namespace ermes::ordering {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

void apply_index_ordering(SystemModel& sys) {
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    std::vector<ChannelId> ins = sys.input_order(p);
    std::vector<ChannelId> outs = sys.output_order(p);
    std::sort(ins.begin(), ins.end());
    std::sort(outs.begin(), outs.end());
    sys.set_input_order(p, std::move(ins));
    sys.set_output_order(p, std::move(outs));
  }
}

void apply_conservative_ordering(SystemModel& sys) {
  SystemModel unit = sys;
  for (ProcessId p = 0; p < unit.num_processes(); ++p) {
    unit.set_latency(p, 1);
  }
  for (ChannelId c = 0; c < unit.num_channels(); ++c) {
    unit.set_channel_latency(c, 1);
  }
  const ChannelOrderingResult result = channel_ordering(unit);
  apply_ordering(sys, result);
  ensure_live(sys);
}

void apply_random_ordering(SystemModel& sys, util::Rng& rng) {
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    std::vector<ChannelId> ins = sys.input_order(p);
    std::vector<ChannelId> outs = sys.output_order(p);
    rng.shuffle(ins);
    rng.shuffle(outs);
    sys.set_input_order(p, std::move(ins));
    sys.set_output_order(p, std::move(outs));
  }
}

namespace {

// Iterates over all permutations of each process' input and output orders.
// Orders are normalized (sorted) first so the enumeration is canonical.
class OrderEnumerator {
 public:
  explicit OrderEnumerator(SystemModel& sys) : sys_(sys) {
    for (ProcessId p = 0; p < sys.num_processes(); ++p) {
      if (sys.input_order(p).size() > 1) {
        std::vector<ChannelId> order = sys.input_order(p);
        std::sort(order.begin(), order.end());
        slots_.push_back({p, /*is_input=*/true, std::move(order)});
      }
      if (sys.output_order(p).size() > 1) {
        std::vector<ChannelId> order = sys.output_order(p);
        std::sort(order.begin(), order.end());
        slots_.push_back({p, /*is_input=*/false, std::move(order)});
      }
    }
    apply_all();
  }

  /// Advances to the next combination; false when wrapped around.
  bool next() {
    for (Slot& slot : slots_) {
      if (std::next_permutation(slot.order.begin(), slot.order.end())) {
        apply(slot);
        return true;
      }
      apply(slot);  // wrapped to the first permutation; carry to next slot
    }
    return false;
  }

 private:
  struct Slot {
    ProcessId process;
    bool is_input;
    std::vector<ChannelId> order;
  };

  void apply(const Slot& slot) {
    if (slot.is_input) {
      sys_.set_input_order(slot.process, slot.order);
    } else {
      sys_.set_output_order(slot.process, slot.order);
    }
  }
  void apply_all() {
    for (const Slot& slot : slots_) apply(slot);
  }

  SystemModel& sys_;
  std::vector<Slot> slots_;
};

}  // namespace

ExhaustiveResult exhaustive_search(SystemModel& sys, const OrderingCost& cost,
                                   std::uint64_t limit) {
  // Preserve the caller's orders.
  std::vector<std::vector<ChannelId>> saved_in, saved_out;
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    saved_in.push_back(sys.input_order(p));
    saved_out.push_back(sys.output_order(p));
  }

  ExhaustiveResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  OrderEnumerator enumerator(sys);
  do {
    ++result.combinations;
    const double c = cost(sys);
    if (c == std::numeric_limits<double>::infinity()) {
      ++result.deadlocked;
    } else {
      result.worst_finite_cost = std::max(result.worst_finite_cost, c);
      if (c < result.best_cost) {
        result.best_cost = c;
        result.best_input_order.clear();
        result.best_output_order.clear();
        for (ProcessId p = 0; p < sys.num_processes(); ++p) {
          result.best_input_order.push_back(sys.input_order(p));
          result.best_output_order.push_back(sys.output_order(p));
        }
      }
    }
    if (limit > 0 && result.combinations >= limit) break;
  } while (enumerator.next());

  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    sys.set_input_order(p, saved_in[static_cast<std::size_t>(p)]);
    sys.set_output_order(p, saved_out[static_cast<std::size_t>(p)]);
  }
  return result;
}

}  // namespace ermes::ordering
