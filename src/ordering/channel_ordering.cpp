#include "ordering/channel_ordering.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"
#include "ordering/repair.h"

namespace ermes::ordering {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

namespace {

ChannelOrderingResult final_ordering(const SystemModel& sys,
                                     LabelingResult labels, bool tiebreak,
                                     bool feedback_first_last = false) {
  obs::ObsSpan span("ordering.final_ordering", "ordering");
  obs::count("ordering.orderings_computed");
  ChannelOrderingResult result;
  result.labels = std::move(labels);
  const LabelingResult& lab = result.labels;

  result.input_order.resize(static_cast<std::size_t>(sys.num_processes()));
  result.output_order.resize(static_cast<std::size_t>(sys.num_processes()));

  // In the feedback-safe variant, gets whose producer is primed sort before
  // every other get: the consumer's ring token then guards the loop-closing
  // transition, so no token-free cycle can ride the feedback path. All
  // other arcs stay in label order.
  auto back_rank = [&](ChannelId c, bool is_put) {
    if (!feedback_first_last || is_put) return 0;
    return sys.primed(sys.channel_source(c)) ? -1 : 0;
  };

  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    const auto pi = static_cast<std::size_t>(p);
    // Gets: ascending head weight, ties by ascending head timestamp.
    result.input_order[pi] = sys.input_order(p);
    std::stable_sort(
        result.input_order[pi].begin(), result.input_order[pi].end(),
        [&](ChannelId a, ChannelId b) {
          if (back_rank(a, false) != back_rank(b, false)) {
            return back_rank(a, false) < back_rank(b, false);
          }
          const auto ai = static_cast<std::size_t>(a);
          const auto bi = static_cast<std::size_t>(b);
          if (lab.head_weight[ai] != lab.head_weight[bi]) {
            return lab.head_weight[ai] < lab.head_weight[bi];
          }
          return tiebreak && lab.head_timestamp[ai] < lab.head_timestamp[bi];
        });
    // Puts: descending tail weight, ties by ascending tail timestamp.
    result.output_order[pi] = sys.output_order(p);
    std::stable_sort(
        result.output_order[pi].begin(), result.output_order[pi].end(),
        [&](ChannelId a, ChannelId b) {
          if (back_rank(a, true) != back_rank(b, true)) {
            return back_rank(a, true) < back_rank(b, true);
          }
          const auto ai = static_cast<std::size_t>(a);
          const auto bi = static_cast<std::size_t>(b);
          if (lab.tail_weight[ai] != lab.tail_weight[bi]) {
            return lab.tail_weight[ai] > lab.tail_weight[bi];
          }
          return tiebreak && lab.tail_timestamp[ai] < lab.tail_timestamp[bi];
        });
  }
  return result;
}

}  // namespace

ChannelOrderingResult channel_ordering(const SystemModel& sys) {
  return final_ordering(sys, forward_backward_labeling(sys),
                        /*tiebreak=*/true);
}

ChannelOrderingResult channel_ordering_no_tiebreak(const SystemModel& sys) {
  return final_ordering(sys, forward_backward_labeling(sys),
                        /*tiebreak=*/false);
}

ChannelOrderingResult channel_ordering_feedback_safe(const SystemModel& sys) {
  LabelingOptions options;
  options.isolate_back_arcs = true;
  return final_ordering(sys, forward_backward_labeling(sys, options),
                        /*tiebreak=*/true, /*feedback_first_last=*/true);
}

void apply_ordering(SystemModel& sys, const ChannelOrderingResult& result) {
  obs::count("ordering.orderings_applied");
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    const auto pi = static_cast<std::size_t>(p);
    sys.set_input_order(p, result.input_order[pi]);
    sys.set_output_order(p, result.output_order[pi]);
  }
}

SystemModel with_optimal_ordering(SystemModel sys) {
  apply_ordering(sys, channel_ordering(sys));
  // On feedback-heavy graphs the labeling around back arcs can rarely yield
  // a token-free cycle; the repair pass restores liveness (no-op when the
  // order is already live — in particular on every acyclic system).
  ensure_live(sys);
  return sys;
}

}  // namespace ermes::ordering
