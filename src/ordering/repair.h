#pragma once
// Liveness repair: a safety net above Algorithm 1.
//
// On acyclic system graphs the published ordering algorithm is deadlock-free
// (our property suite exercises this across random SoCs). On graphs with
// feedback loops the labels computed around back arcs can occasionally
// produce a token-free cycle. The paper's tech report is not available to
// settle how the authors handle this, so ERMES verifies liveness after
// Final Ordering and, when needed, repairs the order with witness-guided
// local moves: each token-free cycle pins a ring segment inside some
// process; moving the blocked channel to the front of its phase destroys
// that cycle. A seeded random restart backs the local search.

#include <cstdint>

#include "sysmodel/system.h"

namespace ermes::ordering {

struct RepairResult {
  bool live = false;
  int iterations = 0;       // witness-guided moves performed
  int random_restarts = 0;  // escapes from repeated configurations
};

/// Reorders I/O statements until the system is live (or the iteration
/// budget runs out). Returns live==true on success; the model is left with
/// the repaired (or best-effort) orders.
RepairResult ensure_live(sysmodel::SystemModel& sys, int max_iterations = 256,
                         std::uint64_t seed = 0x11f3);

}  // namespace ermes::ordering
