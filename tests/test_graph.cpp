// Unit tests for the graph substrate: digraph, traversals, SCC, elementary
// cycles, topological order, DOT export.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/cycles.h"
#include "graph/digraph.h"
#include "graph/dot.h"
#include "graph/scc.h"
#include "graph/topo.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace ermes::graph {
namespace {

Digraph diamond() {
  // 0 -> {1, 2} -> 3
  Digraph g;
  g.add_nodes(4);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 3);
  g.add_arc(2, 3);
  return g;
}

Digraph two_cycles() {
  // 0 -> 1 -> 2 -> 0 and 2 -> 3 -> 2
  Digraph g;
  g.add_nodes(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  g.add_arc(2, 3);
  g.add_arc(3, 2);
  return g;
}

// ---- digraph ---------------------------------------------------------------

TEST(DigraphTest, AddNodesReturnsFirstId) {
  Digraph g;
  EXPECT_EQ(g.add_nodes(3), 0);
  EXPECT_EQ(g.add_nodes(2), 3);
  EXPECT_EQ(g.num_nodes(), 5);
}

TEST(DigraphTest, ArcEndpoints) {
  Digraph g;
  g.add_nodes(2);
  const ArcId a = g.add_arc(0, 1);
  EXPECT_EQ(g.tail(a), 0);
  EXPECT_EQ(g.head(a), 1);
}

TEST(DigraphTest, AdjacencyOrderIsInsertionOrder) {
  Digraph g;
  g.add_nodes(4);
  const ArcId a1 = g.add_arc(0, 1);
  const ArcId a2 = g.add_arc(0, 2);
  const ArcId a3 = g.add_arc(0, 3);
  EXPECT_EQ(g.out_arcs(0), (std::vector<ArcId>{a1, a2, a3}));
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.in_degree(1), 1);
}

TEST(DigraphTest, ParallelArcsAllowed) {
  Digraph g;
  g.add_nodes(2);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(DigraphTest, NamesDefaultAndCustom) {
  Digraph g;
  g.add_nodes(1);
  EXPECT_EQ(g.name(0), "n0");
  const NodeId n = g.add_node("proc");
  EXPECT_EQ(g.name(n), "proc");
}

TEST(DigraphTest, Validity) {
  Digraph g;
  g.add_nodes(2);
  g.add_arc(0, 1);
  EXPECT_TRUE(g.valid_node(1));
  EXPECT_FALSE(g.valid_node(2));
  EXPECT_FALSE(g.valid_node(kInvalidNode));
  EXPECT_TRUE(g.valid_arc(0));
  EXPECT_FALSE(g.valid_arc(1));
}

// ---- traversal -------------------------------------------------------------

TEST(TraversalTest, BfsOrderFromRoot) {
  const Digraph g = diamond();
  const auto order = bfs_order(g, 0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 3);  // farthest last
}

TEST(TraversalTest, BfsStopsAtUnreachable) {
  Digraph g;
  g.add_nodes(3);
  g.add_arc(0, 1);
  const auto order = bfs_order(g, 0);
  EXPECT_EQ(order.size(), 2u);
}

TEST(TraversalTest, DfsPreorderVisitsAllReachable) {
  const Digraph g = diamond();
  const auto order = dfs_preorder(g, 0);
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
}

TEST(TraversalTest, ReachableFrom) {
  Digraph g;
  g.add_nodes(4);
  g.add_arc(0, 1);
  g.add_arc(2, 3);
  const auto r = reachable_from(g, 0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_FALSE(r[2]);
  EXPECT_FALSE(r[3]);
}

TEST(TraversalTest, ReachesTarget) {
  const Digraph g = diamond();
  const auto r = reaches(g, 3);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_TRUE(r[3]);
}

TEST(TraversalTest, ClassifyArcsFindsBackArcOnCycle) {
  const Digraph g = two_cycles();
  const auto cls = classify_arcs(g, {0});
  EXPECT_EQ(cls.num_back_arcs, 2);  // one per cycle
  // Removing the back arcs leaves a DAG.
  EXPECT_TRUE(is_acyclic(g, cls.is_back));
}

TEST(TraversalTest, ClassifyArcsDagHasNoBackArcs) {
  const Digraph g = diamond();
  const auto cls = classify_arcs(g, {0});
  EXPECT_EQ(cls.num_back_arcs, 0);
}

TEST(TraversalTest, SelfLoopIsBackArc) {
  Digraph g;
  g.add_nodes(1);
  g.add_arc(0, 0);
  const auto cls = classify_arcs(g, {0});
  EXPECT_EQ(cls.num_back_arcs, 1);
}

TEST(TraversalTest, IsAcyclicOnDag) {
  EXPECT_TRUE(is_acyclic(diamond()));
  EXPECT_FALSE(is_acyclic(two_cycles()));
}

TEST(TraversalPropertyTest, BackArcRemovalAlwaysYieldsDag) {
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Digraph g;
    const std::int32_t n = static_cast<std::int32_t>(rng.uniform_int(2, 30));
    g.add_nodes(n);
    const std::int64_t m = rng.uniform_int(1, 4 * n);
    for (std::int64_t i = 0; i < m; ++i) {
      g.add_arc(static_cast<NodeId>(rng.index(static_cast<std::size_t>(n))),
                static_cast<NodeId>(rng.index(static_cast<std::size_t>(n))));
    }
    const auto cls = classify_arcs(g, {0});
    EXPECT_TRUE(is_acyclic(g, cls.is_back)) << "trial " << trial;
  }
}

// ---- scc -------------------------------------------------------------------

TEST(SccTest, DagHasSingletonComponents) {
  const Digraph g = diamond();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4);
}

TEST(SccTest, CycleFormsOneComponent) {
  Digraph g;
  g.add_nodes(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccTest, TwoCyclesShareComponentThroughBridge) {
  const Digraph g = two_cycles();  // 0,1,2,3 all mutually reachable
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
}

TEST(SccTest, ComponentsInReverseTopologicalOrder) {
  Digraph g;
  g.add_nodes(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 1);  // {1,2} cycle
  g.add_arc(2, 3);
  const auto scc = strongly_connected_components(g);
  ASSERT_EQ(scc.num_components, 3);
  // Tarjan emits sinks first: comp(3) < comp(1) < comp(0).
  EXPECT_LT(scc.component[3], scc.component[1]);
  EXPECT_LT(scc.component[1], scc.component[0]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
}

TEST(SccTest, MembersMatchComponentMap) {
  const Digraph g = two_cycles();
  const auto scc = strongly_connected_components(g);
  for (std::int32_t c = 0; c < scc.num_components; ++c) {
    for (NodeId n : scc.members[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(scc.component[static_cast<std::size_t>(n)], c);
    }
  }
}

TEST(SccTest, EmptyGraphNotStronglyConnected) {
  Digraph g;
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(SccTest, LargeChainDoesNotOverflowStack) {
  Digraph g;
  const std::int32_t n = 200'000;
  g.add_nodes(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_arc(i, i + 1);
  g.add_arc(n - 1, 0);  // close the loop: one giant SCC
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccTest, SelfLoopStaysASingletonComponent) {
  // A self-loop makes the node cyclic but must not merge it with anything.
  Digraph g;
  g.add_nodes(3);
  g.add_arc(0, 1);
  g.add_arc(1, 1);
  g.add_arc(1, 2);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3);
  for (std::int32_t c = 0; c < scc.num_components; ++c) {
    EXPECT_EQ(scc.members[static_cast<std::size_t>(c)].size(), 1u);
  }
}

TEST(SccTest, IsolatedNodesEachGetAComponent) {
  Digraph g;
  g.add_nodes(5);          // no arcs at all
  g.add_arc(1, 3);         // one lonely bridge
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 5);
  // Every node is accounted for exactly once across members.
  std::size_t total = 0;
  for (const auto& members : scc.members) total += members.size();
  EXPECT_EQ(total, 5u);
  // The bridge still orders the two endpoints.
  EXPECT_LT(scc.component[3], scc.component[1]);
}

TEST(SccTest, DuplicateParallelArcsDoNotChangeThePartition) {
  Digraph plain = two_cycles();
  Digraph doubled = two_cycles();
  doubled.add_arc(0, 1);  // duplicates of existing arcs
  doubled.add_arc(2, 3);
  doubled.add_arc(2, 3);
  const auto a = strongly_connected_components(plain);
  const auto b = strongly_connected_components(doubled);
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.component, b.component);
}

TEST(SccPropertyTest, PartitionIsStableUnderNodeRelabeling) {
  // Relabeling the nodes of a random digraph must permute the partition,
  // never change it: u ~ v iff perm(u) ~ perm(v). Component indices must
  // also stay reverse-topological (no arc points from a lower to a higher
  // component).
  for (std::uint64_t iter = 0; iter < 30; ++iter) {
    util::Rng rng = util::Rng::for_shard(0x5cc57ab, iter);
    const std::int32_t n =
        static_cast<std::int32_t>(rng.uniform_int(2, 24));
    const std::int32_t arcs =
        static_cast<std::int32_t>(rng.uniform_int(0, 3 * n));
    Digraph g;
    g.add_nodes(n);
    std::vector<std::pair<NodeId, NodeId>> arc_list;
    for (std::int32_t a = 0; a < arcs; ++a) {
      const auto u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
      const auto v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
      g.add_arc(u, v);  // self-loops and duplicates welcome
      arc_list.emplace_back(u, v);
    }
    const auto base = strongly_connected_components(g);

    const std::vector<std::size_t> perm =
        rng.permutation(static_cast<std::size_t>(n));
    Digraph relabeled;
    relabeled.add_nodes(n);
    for (const auto& [u, v] : arc_list) {
      relabeled.add_arc(static_cast<NodeId>(perm[static_cast<std::size_t>(u)]),
                        static_cast<NodeId>(perm[static_cast<std::size_t>(v)]));
    }
    const auto mapped = strongly_connected_components(relabeled);
    EXPECT_EQ(base.num_components, mapped.num_components) << "iter " << iter;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool together =
            base.component[static_cast<std::size_t>(u)] ==
            base.component[static_cast<std::size_t>(v)];
        const bool mapped_together =
            mapped.component[perm[static_cast<std::size_t>(u)]] ==
            mapped.component[perm[static_cast<std::size_t>(v)]];
        EXPECT_EQ(together, mapped_together)
            << "iter " << iter << " nodes " << u << "," << v;
      }
    }
    // Reverse topological indexing on both graphs.
    for (const auto& [u, v] : arc_list) {
      EXPECT_GE(base.component[static_cast<std::size_t>(u)],
                base.component[static_cast<std::size_t>(v)])
          << "iter " << iter;
    }
  }
}

// ---- cycles ----------------------------------------------------------------

TEST(CyclesTest, DagHasNoCycles) {
  EXPECT_TRUE(elementary_cycles(diamond()).empty());
}

TEST(CyclesTest, SingleCycleFound) {
  Digraph g;
  g.add_nodes(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  const auto cycles = elementary_cycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(CyclesTest, SelfLoopCounts) {
  Digraph g;
  g.add_nodes(1);
  g.add_arc(0, 0);
  const auto cycles = elementary_cycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 1u);
}

TEST(CyclesTest, ParallelArcsMakeDistinctCycles) {
  Digraph g;
  g.add_nodes(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(1, 0);
  EXPECT_EQ(elementary_cycles(g).size(), 2u);
}

TEST(CyclesTest, CompleteGraphK4CycleCount) {
  // K4 (directed both ways) has 20 elementary cycles:
  // 6 of length 2, 8 of length 3, 6 of length 4.
  Digraph g;
  g.add_nodes(4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i != j) g.add_arc(i, j);
    }
  }
  EXPECT_EQ(elementary_cycles(g).size(), 20u);
}

TEST(CyclesTest, CyclesAreClosedWalks) {
  const Digraph g = two_cycles();
  for (const auto& cycle : elementary_cycles(g)) {
    ASSERT_FALSE(cycle.empty());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_EQ(g.head(cycle[i]), g.tail(cycle[(i + 1) % cycle.size()]));
    }
  }
}

TEST(CyclesTest, LimitStopsEnumeration) {
  Digraph g;
  g.add_nodes(4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i != j) g.add_arc(i, j);
    }
  }
  EXPECT_EQ(elementary_cycles(g, 5).size(), 5u);
}

TEST(CyclesTest, CyclesAreElementary) {
  const Digraph g = two_cycles();
  for (const auto& cycle : elementary_cycles(g)) {
    std::set<NodeId> nodes;
    for (ArcId a : cycle) nodes.insert(g.tail(a));
    EXPECT_EQ(nodes.size(), cycle.size());  // no node repeats
  }
}

// ---- topo ------------------------------------------------------------------

TEST(TopoTest, OrdersDag) {
  const Digraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  const auto rank = ranks_of(*order, g.num_nodes());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_LT(rank[static_cast<std::size_t>(g.tail(a))],
              rank[static_cast<std::size_t>(g.head(a))]);
  }
}

TEST(TopoTest, CyclicReturnsNullopt) {
  EXPECT_FALSE(topological_order(two_cycles()).has_value());
}

TEST(TopoTest, IgnoredArcsEnableOrdering) {
  const Digraph g = two_cycles();
  const auto cls = classify_arcs(g, {0});
  EXPECT_TRUE(topological_order(g, cls.is_back).has_value());
}

TEST(TopoTest, LongestPathRanks) {
  const Digraph g = diamond();
  const auto depth = longest_path_ranks(g);
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[2], 1);
  EXPECT_EQ(depth[3], 2);
}

// ---- dot -------------------------------------------------------------------

TEST(DotTest, ContainsNodesAndArcs) {
  Digraph g;
  g.add_node("alpha");
  g.add_node("beta");
  g.add_arc(0, 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
}

TEST(DotTest, ArcLabelsApplied) {
  Digraph g;
  g.add_nodes(2);
  g.add_arc(0, 1);
  DotOptions options;
  options.arc_label = [](ArcId) { return std::string("ch_a"); };
  EXPECT_NE(to_dot(g, options).find("ch_a"), std::string::npos);
}

TEST(DotTest, EscapesQuotes) {
  Digraph g;
  g.add_node("say \"hi\"");
  EXPECT_NE(to_dot(g).find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace ermes::graph
