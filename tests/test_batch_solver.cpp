// Unit tests of CycleMeanSolver::solve_batch (tmg/csr.h): the empty-batch
// no-op, k=1 equivalence with solve(), byte-for-byte sharing between
// duplicate scenarios through the slice-replay memo, per-scenario cap_hit
// reporting when the Howard iteration cap exhausts mid-batch, the Stats
// accounting of a batch, and the lifetime-totals contract of Stats itself
// (the counters survive structure recompiles). The randomized bit-identity
// sweeps live in tests/test_differential.cpp (D8-D10); this file pins the
// deterministic corners.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tmg/csr.h"
#include "tmg/cycle_ratio.h"
#include "tmg/howard.h"
#include "tmg/marked_graph.h"

namespace ermes::tmg {
namespace {

bool bits_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

void expect_bit_identical(const CycleRatioResult& got,
                          const CycleRatioResult& want) {
  EXPECT_EQ(got.has_cycle, want.has_cycle);
  EXPECT_EQ(got.ratio_num, want.ratio_num);
  EXPECT_EQ(got.ratio_den, want.ratio_den);
  EXPECT_TRUE(bits_equal(got.ratio, want.ratio));
  EXPECT_EQ(got.critical_cycle, want.critical_cycle);
}

// ring + one heavy self-loop + a cross chord: two nontrivial co-existing
// cycles in one SCC, so policy iteration actually iterates.
RatioGraph sample_graph() {
  RatioGraph rg;
  rg.g.add_nodes(4);
  const auto arc = [&rg](graph::NodeId u, graph::NodeId v, std::int64_t w,
                         std::int64_t t) {
    rg.g.add_arc(u, v);
    rg.weight.push_back(w);
    rg.tokens.push_back(t);
  };
  arc(0, 1, 3, 1);
  arc(1, 2, 4, 0);
  arc(2, 3, 5, 1);
  arc(3, 0, 2, 0);
  arc(2, 2, 9, 1);   // heavy self-loop inside the SCC
  arc(1, 0, 1, 1);   // chord: short cycle 0->1->0
  return rg;
}

// Two disjoint 2-cycles: two Howard SCCs, so per-SCC accounting (solves vs
// replays) is visible in the k x C invariant.
RatioGraph two_component_graph() {
  RatioGraph rg;
  rg.g.add_nodes(4);
  const auto arc = [&rg](graph::NodeId u, graph::NodeId v, std::int64_t w,
                         std::int64_t t) {
    rg.g.add_arc(u, v);
    rg.weight.push_back(w);
    rg.tokens.push_back(t);
  };
  arc(0, 1, 3, 1);
  arc(1, 0, 2, 1);
  arc(1, 1, 7, 1);  // self-loop so SCC 0 has competing cycles
  arc(2, 3, 4, 1);
  arc(3, 2, 1, 1);
  return rg;
}

// Installs one scenario and runs the canonical solve — the serial reference
// solve_batch must be bit-identical to.
CycleRatioResult serial_solve(CycleMeanSolver& solver, const WeightVector& w) {
  for (std::size_t a = 0; a < w.size(); ++a) {
    solver.set_arc_weight(static_cast<graph::ArcId>(a), w[a]);
  }
  return solver.solve();
}

TEST(BatchSolver, EmptyBatchIsANoOp) {
  CycleMeanSolver solver;
  solver.prepare(sample_graph());
  const CycleRatioResult before = solver.solve();
  const CycleMeanSolver::Stats stats = solver.stats();

  solver.solve_batch(std::span<const WeightVector>());
  EXPECT_EQ(solver.stats().batch_solves, 0);
  EXPECT_EQ(solver.stats().batch_scenarios, 0);
  EXPECT_EQ(solver.stats().iterations, stats.iterations);
  EXPECT_EQ(solver.stats().solves, stats.solves);
  // The prepared weights are untouched; a re-solve still agrees.
  expect_bit_identical(solver.solve(), before);
}

TEST(BatchSolver, SingleScenarioEqualsSolve) {
  const RatioGraph rg = sample_graph();
  CycleMeanSolver batched;
  batched.prepare(rg);
  CycleMeanSolver serial;
  serial.prepare(rg);

  const WeightVector w = {5, 1, 8, 2, 4, 6};
  const std::vector<WeightVector> scenarios = {w};
  const std::vector<BatchSolveReport> reports = batched.solve_batch(scenarios);
  ASSERT_EQ(reports.size(), 1u);
  expect_bit_identical(reports[0].result, serial_solve(serial, w));
  EXPECT_FALSE(reports[0].reused);
  EXPECT_FALSE(reports[0].cap_hit);
  EXPECT_GT(reports[0].iterations, 0);

  // The batch leaves the scenario's weights installed, like the serial
  // install+solve pair: arc reads and a canonical re-solve agree.
  for (std::size_t a = 0; a < w.size(); ++a) {
    EXPECT_EQ(batched.csr().arc_weight(static_cast<graph::ArcId>(a)), w[a]);
  }
  expect_bit_identical(batched.solve(), serial.solve());
}

TEST(BatchSolver, DuplicateWeightVectorsShareResults) {
  CycleMeanSolver solver;
  solver.prepare(sample_graph());

  const WeightVector a = {5, 1, 8, 2, 4, 6};
  const WeightVector b = {1, 9, 2, 7, 3, 5};
  const std::vector<WeightVector> scenarios = {a, b, a, b, a};
  const std::vector<BatchSolveReport> reports = solver.solve_batch(scenarios);
  ASSERT_EQ(reports.size(), 5u);

  // Replays are byte-for-byte copies of the first occurrence: same double
  // bits, same rationals, same witness arcs, same charged iterations.
  for (const std::size_t dup : {2u, 4u}) {
    expect_bit_identical(reports[dup].result, reports[0].result);
    EXPECT_EQ(reports[dup].iterations, reports[0].iterations);
    EXPECT_EQ(reports[dup].cap_hit, reports[0].cap_hit);
    EXPECT_TRUE(reports[dup].reused);
  }
  expect_bit_identical(reports[3].result, reports[1].result);
  EXPECT_TRUE(reports[3].reused);
  EXPECT_FALSE(reports[0].reused);
  EXPECT_FALSE(reports[1].reused);

  // One SCC: 2 distinct slices solved, 3 replayed.
  EXPECT_EQ(solver.stats().batch_scc_solves, 2);
  EXPECT_EQ(solver.stats().batch_scc_reuses, 3);
}

TEST(BatchSolver, CapExhaustionMidBatchReportsPerScenario) {
  // 2-node ring + self-loop: the canonical initial policy is the ring, so a
  // heavy self-loop needs one improvement round — impossible under cap=1 —
  // while a light self-loop converges without improving.
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 1);
  rg.weight = {1, 1, 9};
  rg.tokens = {1, 1, 1};

  const WeightVector heavy = {1, 1, 9};  // self-loop 9 > ring 2/2: must improve
  const WeightVector light = {1, 1, 0};  // ring already optimal: converges
  const std::vector<WeightVector> scenarios = {heavy, light, heavy};

  set_howard_iteration_cap_for_testing(1);
  CycleMeanSolver batched;
  batched.prepare(rg);
  const std::vector<BatchSolveReport> reports = batched.solve_batch(scenarios);

  EXPECT_TRUE(reports[0].cap_hit);
  EXPECT_FALSE(reports[1].cap_hit);
  EXPECT_TRUE(reports[2].cap_hit);  // replayed caps re-report their cap
  EXPECT_TRUE(reports[2].reused);
  EXPECT_EQ(batched.stats().cap_hits, 2);  // replays charge like serial runs

  // Capped results are still bit-identical to the serial capped solves, and
  // the serial reference charges one cap hit per heavy run — the same count
  // the batch charged (its replayed third scenario re-charges the cap the
  // serial path would spend re-running it).
  CycleMeanSolver serial;
  serial.prepare(rg);
  for (std::size_t j = 0; j < scenarios.size(); ++j) {
    expect_bit_identical(reports[j].result, serial_solve(serial, scenarios[j]));
  }
  EXPECT_EQ(serial.stats().cap_hits, 2);
  set_howard_iteration_cap_for_testing(0);
}

TEST(BatchSolver, StatsCountersSumCorrectly) {
  CycleMeanSolver solver;
  solver.prepare(two_component_graph());

  const WeightVector w0 = {3, 2, 7, 4, 1};
  WeightVector w1 = w0;
  w1[3] = 9;  // perturbs only SCC {2,3}: SCC {0,1}'s slice replays
  WeightVector w2 = w0;
  w2[2] = 1;  // perturbs only SCC {0,1}
  const std::vector<WeightVector> scenarios = {w0, w1, w2, w0};
  const std::vector<BatchSolveReport> reports = solver.solve_batch(scenarios);

  const CycleMeanSolver::Stats& stats = solver.stats();
  EXPECT_EQ(stats.batch_solves, 1);
  EXPECT_EQ(stats.batch_scenarios, 4);
  // Every scenario visits every SCC (no zero-token witness, nothing
  // infinite), so solves + replays partition the k x C scenario-SCC grid.
  EXPECT_EQ(stats.batch_scc_solves + stats.batch_scc_reuses, 4 * 2);
  // Distinct slices actually solved: SCC0 under {w0, w2}, SCC1 under
  // {w0, w1}.
  EXPECT_EQ(stats.batch_scc_solves, 4);
  EXPECT_EQ(stats.batch_scc_reuses, 4);
  // The solver-wide iteration total is exactly the per-scenario charges.
  std::int64_t charged = 0;
  for (const BatchSolveReport& rep : reports) charged += rep.iterations;
  EXPECT_EQ(stats.iterations, charged);
  // solve_batch is not a solve(): the canonical-solve counter stays put.
  EXPECT_EQ(stats.solves, 0);
  // Scenario 3 repeats scenario 0 wholesale — the only fully-replayed one.
  EXPECT_FALSE(reports[0].reused);
  EXPECT_FALSE(reports[1].reused);
  EXPECT_FALSE(reports[2].reused);
  EXPECT_TRUE(reports[3].reused);
}

TEST(BatchSolver, StatsAreLifetimeTotals) {
  // Regression: Stats fields are lifetime totals. prepare() must never
  // reset them — not on a warm weight refresh, and not on a structure
  // recompile (a recompile invalidates the solve *plan*, not the traffic
  // history; callers wanting per-phase deltas snapshot and subtract).
  MarkedGraph g;
  g.add_transition("a", 3);
  g.add_transition("b", 2);
  g.add_place(0, 1, 1);
  g.add_place(1, 0, 1);

  CycleMeanSolver solver;
  solver.prepare(g);
  solver.solve();
  EXPECT_EQ(solver.stats().compiles, 1);
  EXPECT_EQ(solver.stats().solves, 1);
  const std::int64_t iters_after_first = solver.stats().iterations;
  EXPECT_GT(iters_after_first, 0);

  g.set_delay(0, 9);  // weight-only change: warm refresh, nothing reset
  EXPECT_TRUE(solver.prepare(g));
  EXPECT_EQ(solver.stats().weight_refreshes, 1);
  EXPECT_EQ(solver.stats().iterations, iters_after_first);
  solver.solve();

  g.add_transition("c", 4);  // structure change: recompile, nothing reset
  g.add_place(1, 2, 1);
  g.add_place(2, 1, 1);
  EXPECT_FALSE(solver.prepare(g));
  EXPECT_EQ(solver.stats().compiles, 2);
  EXPECT_EQ(solver.stats().solves, 2);
  EXPECT_GE(solver.stats().iterations, iters_after_first);
  EXPECT_EQ(solver.stats().weight_refreshes, 1);

  solver.solve();
  EXPECT_EQ(solver.stats().solves, 3);
  EXPECT_GT(solver.stats().iterations, iters_after_first);
}

TEST(BatchSolver, ZeroTokenWitnessAppliesToEveryScenario) {
  // A token-free cycle is structural: every scenario is infinite, only the
  // witness weight sum varies, and no per-SCC solves or replays run.
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.weight = {1, 2};
  rg.tokens = {0, 0};

  CycleMeanSolver batched;
  batched.prepare(rg);
  const std::vector<WeightVector> scenarios = {{1, 2}, {5, 6}};
  const std::vector<BatchSolveReport> reports = batched.solve_batch(scenarios);

  CycleMeanSolver serial;
  serial.prepare(rg);
  for (std::size_t j = 0; j < scenarios.size(); ++j) {
    ASSERT_TRUE(reports[j].result.is_infinite());
    EXPECT_FALSE(reports[j].reused);
    EXPECT_EQ(reports[j].iterations, 0);
    expect_bit_identical(reports[j].result, serial_solve(serial, scenarios[j]));
  }
  EXPECT_EQ(reports[0].result.ratio_num, 3);
  EXPECT_EQ(reports[1].result.ratio_num, 11);
  EXPECT_EQ(batched.stats().batch_scc_solves, 0);
  EXPECT_EQ(batched.stats().batch_scc_reuses, 0);
}

}  // namespace
}  // namespace ermes::tmg
