// Unit tests for the simulation kernel: rendezvous semantics, stall
// accounting, deadlock detection, and agreement with the analytic model.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/performance.h"
#include "sim/kernel.h"
#include "sim/system_sim.h"
#include "sysmodel/builder.h"

namespace ermes::sim {
namespace {

// ---- program helpers ---------------------------------------------------------

TEST(ProgramTest, ThreePhaseShape) {
  const Program p = make_three_phase_program({0, 1}, 7, {2});
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].kind, Statement::Kind::kGet);
  EXPECT_EQ(p[2].kind, Statement::Kind::kCompute);
  EXPECT_EQ(p[2].cycles, 7);
  EXPECT_EQ(p[3].kind, Statement::Kind::kPut);
}

TEST(ProgramTest, ToStringReadable) {
  const Program p = make_three_phase_program({0}, 3, {1});
  const std::string text = to_string(p, {"a", "b"});
  EXPECT_EQ(text, "get(a); compute(3); put(b)");
}

// ---- kernel semantics ----------------------------------------------------------

// producer: put(c); compute(pl) / consumer: get(c); compute(cl).
struct PairSim {
  Kernel kernel;
  SimChannelId c;
  PairSim(std::int64_t chan_lat, std::int64_t prod_lat, std::int64_t cons_lat) {
    const SimProcessId prod = kernel.add_process(
        "prod", Program{Statement::put(0), Statement::compute(prod_lat)});
    const SimProcessId cons = kernel.add_process(
        "cons", Program{Statement::get(0), Statement::compute(cons_lat)});
    c = kernel.add_channel("c", prod, cons, chan_lat);
  }
};

TEST(KernelTest, RendezvousPeriodIsRingSum) {
  // Both sides loop through the shared channel: period = max of the two
  // rings = chan + max(prod, cons) computes? Both rings share ch transition:
  // ring(prod) = chan + prod_lat, ring(cons) = chan + cons_lat.
  PairSim sim(2, 3, 5);
  const RunResult run = sim.kernel.run(sim.c, 100);
  EXPECT_FALSE(run.deadlock.deadlocked);
  EXPECT_NEAR(run.measured_cycle_time, 7.0, 1e-9);  // 2 + 5
}

TEST(KernelTest, FirstTransferTiming) {
  PairSim sim(4, 1, 1);
  const RunResult run = sim.kernel.run(sim.c, 1);
  // Both ready at t=0; transfer completes at t=4.
  EXPECT_EQ(run.cycles, 4);
  EXPECT_EQ(run.observed_count, 1);
}

TEST(KernelTest, StallAccounting) {
  PairSim sim(1, 9, 1);  // consumer waits for the slow producer
  sim.kernel.run(sim.c, 50);
  const ChannelState& chan = sim.kernel.channel(sim.c);
  EXPECT_GT(chan.consumer_stall_cycles, 0);
  EXPECT_EQ(chan.producer_stall_cycles, 0);
  EXPECT_GT(sim.kernel.process(1).stall_cycles, 0);
}

TEST(KernelTest, TransferCountsAndLoopIterations) {
  PairSim sim(1, 1, 1);
  sim.kernel.run(sim.c, 10);
  EXPECT_EQ(sim.kernel.channel(sim.c).transfers_completed, 10);
  EXPECT_GE(sim.kernel.process(0).loop_iterations, 9);
}

TEST(KernelTest, ResetRestoresInitialState) {
  PairSim sim(1, 1, 1);
  sim.kernel.run(sim.c, 5);
  sim.kernel.reset();
  EXPECT_EQ(sim.kernel.now(), 0);
  EXPECT_EQ(sim.kernel.channel(sim.c).transfers_completed, 0);
  const RunResult run = sim.kernel.run(sim.c, 5);
  EXPECT_EQ(run.observed_count, 5);
}

TEST(KernelTest, ZeroLatencyChannelWorks) {
  PairSim sim(0, 2, 2);
  const RunResult run = sim.kernel.run(sim.c, 50);
  EXPECT_FALSE(run.deadlock.deadlocked);
  EXPECT_NEAR(run.measured_cycle_time, 2.0, 1e-9);
}

TEST(KernelTest, DeadlockDetectedWithWaitCycle) {
  // Two processes that each get before putting: classic rendezvous deadlock.
  Kernel kernel;
  const SimProcessId a = kernel.add_process(
      "a", Program{Statement::get(1), Statement::put(0)});
  const SimProcessId b = kernel.add_process(
      "b", Program{Statement::get(0), Statement::put(1)});
  kernel.add_channel("ab", a, b, 1);
  kernel.add_channel("ba", b, a, 1);
  const RunResult run = kernel.run(0, 1);
  ASSERT_TRUE(run.deadlock.deadlocked);
  EXPECT_EQ(run.deadlock.processes.size(), 2u);
}

TEST(KernelTest, DataFlowsThroughBehaviors) {
  // Producer emits increasing integers; consumer records them.
  class Producer final : public Behavior {
   public:
    Packet on_put(SimChannelId) override { return Packet{{counter_++}}; }
   private:
    std::int64_t counter_ = 0;
  };
  class Consumer final : public Behavior {
   public:
    void on_get(SimChannelId, const Packet& packet) override {
      received.push_back(packet.data.at(0));
    }
    std::vector<std::int64_t> received;
  };
  Kernel kernel;
  auto consumer = std::make_unique<Consumer>();
  Consumer* consumer_ptr = consumer.get();
  const SimProcessId prod =
      kernel.add_process("prod", Program{Statement::put(0)},
                         std::make_unique<Producer>());
  const SimProcessId cons = kernel.add_process(
      "cons", Program{Statement::get(0)}, std::move(consumer));
  kernel.add_channel("c", prod, cons, 1);
  kernel.run(0, 5);
  EXPECT_EQ(consumer_ptr->received,
            (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, OnResetCalledOnce) {
  class Resetting final : public Behavior {
   public:
    explicit Resetting(int* counter) : counter_(counter) {}
    void on_reset() override { ++*counter_; }
   private:
    int* counter_;
  };
  int resets = 0;
  Kernel kernel;
  const SimProcessId prod = kernel.add_process(
      "prod", Program{Statement::put(0)}, std::make_unique<Resetting>(&resets));
  const SimProcessId cons =
      kernel.add_process("cons", Program{Statement::get(0)});
  kernel.add_channel("c", prod, cons, 1);
  kernel.run(0, 2);
  kernel.run(0, 2);  // continuation, no second reset
  EXPECT_EQ(resets, 1);
}

TEST(KernelTest, MaxCyclesStopsRun) {
  PairSim sim(1000, 1000, 1000);
  const RunResult run = sim.kernel.run(sim.c, 1'000'000, 10'000);
  EXPECT_TRUE(run.hit_cycle_limit);
}

// ---- system bridge ---------------------------------------------------------------

TEST(SystemSimTest, MotivatingExampleThroughputMatchesModel) {
  const sysmodel::SystemModel sys =
      sysmodel::make_dac14_motivating_example();
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  const SystemSimResult sim = simulate_system(sys, 200);
  ASSERT_TRUE(report.live);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, report.cycle_time, 1e-9);
}

TEST(SystemSimTest, ObserveDefaultsToSinkInput) {
  const sysmodel::SystemModel sys =
      sysmodel::make_dac14_motivating_example();
  const SystemSimResult sim = simulate_system(sys, 50);
  EXPECT_EQ(sim.items, 50);
}

TEST(SystemSimTest, DeadlockInfoSurvivesBridge) {
  sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const SystemSimResult sim = simulate_system(sys, 10);
  ASSERT_TRUE(sim.deadlocked);
  EXPECT_FALSE(sim.deadlock.processes.empty());
}

TEST(SystemSimTest, PrimedProcessStartsWithPut) {
  // a -> b -> c with feedback c -> a; c primed: the loop must run.
  sysmodel::SystemModel sys;
  const auto src = sys.add_process("src", 1);
  const auto a = sys.add_process("a", 1);
  const auto b = sys.add_process("b", 1);
  const auto c = sys.add_process("c", 1);
  const auto snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, a, 1);
  sys.add_channel("ab", a, b, 1);
  sys.add_channel("bc", b, c, 1);
  sys.add_channel("fb", c, a, 1);
  sys.add_channel("out", c, snk, 1);
  sys.set_primed(c, true);
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  ASSERT_TRUE(report.live);
  const SystemSimResult sim = simulate_system(sys, 100);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, report.cycle_time, 1e-9);
}

}  // namespace
}  // namespace ermes::sim
