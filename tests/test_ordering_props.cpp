// Property-based validation of the channel-ordering algorithm on randomly
// generated SoCs (parameterized over seeds):
//
//  P1. Algorithm 1's output is always deadlock-free (the paper's central
//      safety claim), including on graphs with feedback loops.
//  P2. The output never degrades the cycle time relative to the
//      conservative (unit-latency) ordering.
//  P3. On small systems the output is close to the exhaustive optimum.
//  P4. The analytic cycle time of the ordered system matches the
//      rendezvous simulation exactly.
//  P5. The output dominates the unordered (insertion-order) baseline: it is
//      always live while the baseline frequently deadlocks, per-instance
//      regressions are bounded, and the corpus total strictly improves.
//  P6. P1-P5 survive the parallel, memoized explorer unchanged: exploration
//      trajectories are bit-identical at any worker count, with or without
//      a shared evaluation cache.

#include <gtest/gtest.h>

#include <limits>

#include "analysis/eval_cache.h"
#include "analysis/performance.h"
#include "dse/explorer.h"
#include "exec/thread_pool.h"
#include "synth/pareto_gen.h"
#include "ordering/baselines.h"
#include "ordering/channel_ordering.h"
#include "ordering/local_search.h"
#include "ordering/repair.h"
#include "sim/system_sim.h"
#include "synth/generator.h"
#include "sysmodel/validate.h"
#include "util/rng.h"

namespace ermes::ordering {
namespace {

using sysmodel::SystemModel;

double cost(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time
                     : std::numeric_limits<double>::infinity();
}

class OrderingProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SystemModel generate(bool with_feedback) const {
    synth::GeneratorConfig config;
    util::Rng rng(GetParam());
    config.num_processes =
        static_cast<std::int32_t>(rng.uniform_int(6, 40));
    config.num_channels = static_cast<std::int32_t>(
        config.num_processes + rng.uniform_int(0, config.num_processes));
    config.feedback_fraction = with_feedback ? 0.3 : 0.0;
    config.seed = GetParam() * 1000003ULL;
    return synth::generate_soc(config);
  }
};

TEST_P(OrderingProperties, GeneratedSystemsValidate) {
  const SystemModel sys = generate(true);
  const sysmodel::ValidationReport report = sysmodel::validate(sys);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? ""
                                                     : report.errors[0]);
}

TEST_P(OrderingProperties, AlgorithmOutputIsLiveOnDags) {
  // On acyclic graphs Algorithm 1 alone (no repair) must be deadlock-free.
  SystemModel sys = generate(false);
  util::Rng rng(GetParam() ^ 0xabcdef);
  apply_random_ordering(sys, rng);
  apply_ordering(sys, channel_ordering(sys));
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST_P(OrderingProperties, AlgorithmOutputIsLiveWithFeedbackLoops) {
  // With feedback loops the optimized order goes through the repair safety
  // net (ordering/repair.h); the combination must always be live.
  SystemModel sys = generate(true);
  util::Rng rng(GetParam() ^ 0x123456);
  apply_random_ordering(sys, rng);
  sys = with_optimal_ordering(sys);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST_P(OrderingProperties, ConservativeOrderingIsLive) {
  SystemModel sys = generate(true);
  apply_conservative_ordering(sys);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

// The ordering is a heuristic: on individual instances it may lose to the
// latency-oblivious conservative order, but across a corpus it must win in
// aggregate (this is the paper's value proposition).
TEST(OrderingAggregate, OptimizedBeatsConservativeOnAverage) {
  double conservative_total = 0.0, optimized_total = 0.0;
  int wins = 0, losses = 0;
  for (std::uint64_t seed = 1; seed < 26; ++seed) {
    synth::GeneratorConfig config;
    util::Rng rng(seed);
    config.num_processes = static_cast<std::int32_t>(rng.uniform_int(6, 40));
    config.num_channels = static_cast<std::int32_t>(
        config.num_processes + rng.uniform_int(0, config.num_processes));
    config.feedback_fraction = 0.3;
    config.seed = seed * 1000003ULL;
    SystemModel conservative = synth::generate_soc(config);
    apply_conservative_ordering(conservative);
    SystemModel optimized = with_optimal_ordering(conservative);
    const double c = cost(conservative);
    const double o = cost(optimized);
    ASSERT_LT(c, std::numeric_limits<double>::infinity());
    ASSERT_LT(o, std::numeric_limits<double>::infinity());
    conservative_total += c;
    optimized_total += o;
    if (o < c - 1e-9) ++wins;
    if (o > c + 1e-9) ++losses;
  }
  EXPECT_LT(optimized_total, conservative_total);
  EXPECT_GT(wins, losses);
}

// P5a. The unordered baseline is the designer's channel insertion order —
// what you get without the methodology. It may deadlock outright (infinite
// cost; 8 of the 25 corpus instances do). The ordered output is always
// live, and on live baselines a per-instance loss is possible (Algorithm 1
// optimizes against its own traversal, not the insertion order) but
// bounded: measured worst case on this corpus is 1.43x; bound at 1.5x.
TEST_P(OrderingProperties, OrderedBoundedAgainstUnorderedBaseline) {
  SystemModel baseline = generate(true);
  apply_index_ordering(baseline);
  const SystemModel ordered = with_optimal_ordering(baseline);
  EXPECT_TRUE(analysis::analyze_system(ordered).live);
  const double unordered_cost = cost(baseline);
  const double ordered_cost = cost(ordered);
  ASSERT_LT(ordered_cost, std::numeric_limits<double>::infinity());
  if (unordered_cost < std::numeric_limits<double>::infinity()) {
    EXPECT_LE(ordered_cost, unordered_cost * 1.5 + 1e-9)
        << "ordered " << ordered_cost << " vs unordered baseline "
        << unordered_cost;
  }
}

// P5b. In aggregate the ordered corpus strictly beats the unordered one,
// and a non-trivial share of unordered baselines deadlocks (the paper's
// motivation for ordering in the first place).
TEST(OrderingAggregate, OrderedBeatsUnorderedBaselineInAggregate) {
  double ordered_total = 0.0, unordered_total = 0.0;
  int baseline_deadlocks = 0;
  for (std::uint64_t seed = 1; seed < 26; ++seed) {
    synth::GeneratorConfig config;
    util::Rng rng(seed);
    config.num_processes = static_cast<std::int32_t>(rng.uniform_int(6, 40));
    config.num_channels = static_cast<std::int32_t>(
        config.num_processes + rng.uniform_int(0, config.num_processes));
    config.feedback_fraction = 0.3;
    config.seed = seed * 1000003ULL;
    SystemModel baseline = synth::generate_soc(config);
    apply_index_ordering(baseline);
    const SystemModel ordered = with_optimal_ordering(baseline);
    const double u = cost(baseline);
    const double o = cost(ordered);
    ASSERT_LT(o, std::numeric_limits<double>::infinity());
    if (u == std::numeric_limits<double>::infinity()) {
      ++baseline_deadlocks;  // ordered dominates outright
      continue;
    }
    ordered_total += o;
    unordered_total += u;
  }
  EXPECT_GT(baseline_deadlocks, 0);
  EXPECT_LT(ordered_total, unordered_total);
}

TEST_P(OrderingProperties, AnalysisMatchesSimulationAfterOrdering) {
  SystemModel sys = with_optimal_ordering(generate(true));
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  ASSERT_TRUE(report.live);
  const sim::SystemSimResult simulated = sim::simulate_system(sys, 300);
  ASSERT_FALSE(simulated.deadlocked);
  EXPECT_NEAR(simulated.measured_cycle_time, report.cycle_time, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperties,
                         ::testing::Range<std::uint64_t>(1, 26));

// Small systems: compare against the exhaustive optimum.
class SmallOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallOptimality, AlgorithmWithinHeuristicBoundOfExhaustive) {
  synth::GeneratorConfig config;
  config.num_processes = 7;
  config.num_channels = 11;
  config.feedback_fraction = 0.0;
  config.max_channel_latency = 8;
  config.max_process_latency = 12;
  config.seed = GetParam() * 77ULL;
  SystemModel sys = synth::generate_soc(config);
  const ExhaustiveResult exhaustive = exhaustive_search(sys, cost, 50'000);
  SystemModel ordered = with_optimal_ordering(sys);
  const double algo = cost(ordered);
  ASSERT_LT(algo, std::numeric_limits<double>::infinity());
  // Algorithm 1 is a one-shot labeling heuristic: measured worst case on
  // this corpus is ~1.67x the exhaustive optimum (bench_ordering_quality
  // reports the distribution); bound it at 1.75x here.
  EXPECT_LE(algo, exhaustive.best_cost * 1.75 + 1e-9)
      << "algo " << algo << " vs optimum " << exhaustive.best_cost;
}

// The hill-climbing refinement (ordering/local_search.h) must close most of
// that gap: within 20% per instance on this corpus.
TEST_P(SmallOptimality, HillClimbWithinTwentyPercentOfExhaustive) {
  synth::GeneratorConfig config;
  config.num_processes = 7;
  config.num_channels = 11;
  config.feedback_fraction = 0.0;
  config.max_channel_latency = 8;
  config.max_process_latency = 12;
  config.seed = GetParam() * 77ULL;
  SystemModel sys = synth::generate_soc(config);
  const ExhaustiveResult exhaustive = exhaustive_search(sys, cost, 50'000);
  SystemModel ordered = with_optimal_ordering(sys);
  const LocalSearchResult refined = hill_climb_ordering(ordered);
  EXPECT_LE(refined.final_cycle_time, refined.initial_cycle_time);
  EXPECT_LE(refined.final_cycle_time, exhaustive.best_cost * 1.20 + 1e-9)
      << "refined " << refined.final_cycle_time << " vs optimum "
      << exhaustive.best_cost;
}

// Aggregate gaps across the corpus: Algorithm 1 within 35% on average,
// hill-climbed within 8%.
TEST(SmallOptimalityAggregate, MeanGaps) {
  double algo_gap = 0.0, refined_gap = 0.0;
  int count = 0;
  for (std::uint64_t seed = 1; seed < 16; ++seed) {
    synth::GeneratorConfig config;
    config.num_processes = 7;
    config.num_channels = 11;
    config.feedback_fraction = 0.0;
    config.max_channel_latency = 8;
    config.max_process_latency = 12;
    config.seed = seed * 77ULL;
    SystemModel sys = synth::generate_soc(config);
    const ExhaustiveResult exhaustive = exhaustive_search(sys, cost, 50'000);
    SystemModel ordered = with_optimal_ordering(sys);
    const double algo = cost(ordered);
    ASSERT_LT(algo, std::numeric_limits<double>::infinity());
    algo_gap += algo / exhaustive.best_cost - 1.0;
    const LocalSearchResult refined = hill_climb_ordering(ordered);
    refined_gap += refined.final_cycle_time / exhaustive.best_cost - 1.0;
    ++count;
  }
  EXPECT_LE(algo_gap / count, 0.35);
  EXPECT_LE(refined_gap / count, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallOptimality,
                         ::testing::Range<std::uint64_t>(1, 16));

// P6. End-to-end sequential/parallel equivalence: the full DSE loop (which
// exercises ordering, analysis, and both selection problems on every
// iteration) must produce bit-identical trajectories at any worker count,
// with a cold private cache, a shared cache, and a warm shared cache.
class ExplorerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

bool histories_identical(const dse::ExplorationResult& a,
                         const dse::ExplorationResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const dse::IterationRecord& x = a.history[i];
    const dse::IterationRecord& y = b.history[i];
    if (x.iteration != y.iteration || x.action != y.action ||
        x.cycle_time != y.cycle_time || x.area != y.area ||
        x.slack != y.slack || x.meets_target != y.meets_target ||
        x.live != y.live || x.critical_processes != y.critical_processes) {
      return false;
    }
  }
  return a.converged == b.converged && a.met_target == b.met_target;
}

TEST_P(ExplorerEquivalence, ParallelExplorationMatchesSequentialBitwise) {
  const std::uint64_t seed = GetParam();
  synth::GeneratorConfig config;
  config.num_processes = 14;
  config.num_channels = 21;
  config.feedback_fraction = 0.2;
  config.seed = seed * 1000003ULL;
  SystemModel sys = synth::generate_soc(config);
  synth::attach_pareto_sets(sys, seed * 31 + 7);

  const double ct0 = analysis::analyze_system(sys).cycle_time;
  dse::ExplorerOptions sequential;
  sequential.target_cycle_time = static_cast<std::int64_t>(ct0 * 0.6);
  sequential.jobs = 1;
  const dse::ExplorationResult expected = dse::explore(sys, sequential);
  ASSERT_FALSE(expected.history.empty());

  exec::ThreadPool pool(4);
  analysis::EvalCache cache;
  dse::ExplorerOptions parallel = sequential;
  parallel.jobs = 4;
  parallel.pool = &pool;
  parallel.cache = &cache;
  const dse::ExplorationResult cold = dse::explore(sys, parallel);
  EXPECT_TRUE(histories_identical(expected, cold))
      << "parallel cold-cache trajectory diverged (seed " << seed << ")";

  // Warm re-run through the now-populated cache: same trajectory again.
  const dse::ExplorationResult warm = dse::explore(sys, parallel);
  EXPECT_TRUE(histories_identical(expected, warm))
      << "warm-cache trajectory diverged (seed " << seed << ")";
  EXPECT_GT(cache.hits(), 0);

  // Ordering safety (P1) through the parallel path: the explored system
  // remains live.
  EXPECT_TRUE(analysis::analyze_system(cold.final_system).live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorerEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ermes::ordering
