// The paper's motivating example (Sections 2-4, Figs. 2-4) as hard
// assertions: every published number — the deadlock, the suboptimal cycle
// time of 20 (throughput 0.05), the optimum of 12 (40% better), all sixteen
// forward/backward labels of Fig. 4(b), and the final orders of Fig. 4(c) —
// must be reproduced exactly.

#include <gtest/gtest.h>

#include "analysis/performance.h"
#include "ordering/channel_ordering.h"
#include "ordering/labeling.h"
#include "sim/system_sim.h"
#include "sysmodel/builder.h"

namespace ermes {
namespace {

using analysis::PerformanceReport;
using ordering::ChannelOrderingResult;
using ordering::LabelingResult;
using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;
using sysmodel::apply_motivating_orders;
using sysmodel::make_dac14_motivating_example;

class MotivatingExample : public ::testing::Test {
 protected:
  void SetUp() override { sys_ = make_dac14_motivating_example(); }

  ChannelId ch(const std::string& name) const {
    return sys_.find_channel(name);
  }
  std::vector<std::string> put_order(const std::string& proc,
                                     const ChannelOrderingResult& r) const {
    std::vector<std::string> names;
    const ProcessId p = sys_.find_process(proc);
    for (ChannelId c : r.output_order[static_cast<std::size_t>(p)]) {
      names.push_back(sys_.channel_name(c));
    }
    return names;
  }
  std::vector<std::string> get_order(const std::string& proc,
                                     const ChannelOrderingResult& r) const {
    std::vector<std::string> names;
    const ProcessId p = sys_.find_process(proc);
    for (ChannelId c : r.input_order[static_cast<std::size_t>(p)]) {
      names.push_back(sys_.channel_name(c));
    }
    return names;
  }

  SystemModel sys_;
};

// ---- Section 2: the deadlock ------------------------------------------------

TEST_F(MotivatingExample, DeadlockOrderIsDetected) {
  apply_motivating_orders(sys_, {"b", "d", "f"}, {"g", "d", "e"});
  const PerformanceReport report = analysis::analyze_system(sys_);
  EXPECT_FALSE(report.live);
  EXPECT_FALSE(report.dead_cycle.empty());
}

TEST_F(MotivatingExample, DeadlockAlsoManifestsInSimulation) {
  apply_motivating_orders(sys_, {"b", "d", "f"}, {"g", "d", "e"});
  const sim::SystemSimResult result = sim::simulate_system(sys_, 50);
  EXPECT_TRUE(result.deadlocked);
}

// ---- Section 4: the suboptimal order (CT 20, throughput 0.05) --------------

TEST_F(MotivatingExample, SuboptimalOrderCycleTime20) {
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"e", "g", "d"});
  const PerformanceReport report = analysis::analyze_system(sys_);
  ASSERT_TRUE(report.live);
  EXPECT_DOUBLE_EQ(report.cycle_time, 20.0);
  EXPECT_DOUBLE_EQ(report.throughput, 0.05);  // the paper's number
}

TEST_F(MotivatingExample, SuboptimalOrderSimulatesAt20) {
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"e", "g", "d"});
  const sim::SystemSimResult result = sim::simulate_system(sys_, 200);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.measured_cycle_time, 20.0, 1e-9);
}

// ---- Section 4: the optimum (CT 12, 40% better) -----------------------------

TEST_F(MotivatingExample, PaperQuotedOptimalOrderGives12) {
  // Section 4 prose: puts of P2 = (b, d, f), gets of P6 = (d, g, e).
  apply_motivating_orders(sys_, {"b", "d", "f"}, {"d", "g", "e"});
  const PerformanceReport report = analysis::analyze_system(sys_);
  ASSERT_TRUE(report.live);
  EXPECT_DOUBLE_EQ(report.cycle_time, 12.0);
}

TEST_F(MotivatingExample, FortyPercentImprovement) {
  EXPECT_DOUBLE_EQ((20.0 - 12.0) / 20.0, 0.4);
}

// ---- Fig. 4(b): forward labels ----------------------------------------------

TEST_F(MotivatingExample, ForwardLabelsMatchFigure4b) {
  // Forward labeling visits P2's outputs in the order f, b, d (the paper's
  // walk-through); set that as the designer order first.
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"d", "e", "g"});
  const LabelingResult labels = ordering::forward_labeling(sys_);
  using Label = std::pair<std::int64_t, std::int32_t>;
  auto head = [&](const char* name) {
    const auto i = static_cast<std::size_t>(ch(name));
    return Label(labels.head_weight[i], labels.head_timestamp[i]);
  };
  EXPECT_EQ(head("a"), Label(3, 1));
  EXPECT_EQ(head("f"), Label(13, 2));
  EXPECT_EQ(head("b"), Label(13, 3));
  EXPECT_EQ(head("d"), Label(13, 4));
  EXPECT_EQ(head("g"), Label(17, 5));
  EXPECT_EQ(head("c"), Label(17, 6));
  EXPECT_EQ(head("e"), Label(19, 7));
  EXPECT_EQ(head("h"), Label(22, 8));
}

// ---- Fig. 4(b): backward labels ---------------------------------------------

TEST_F(MotivatingExample, BackwardLabelsMatchFigure4b) {
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"d", "e", "g"});
  const LabelingResult labels = ordering::forward_backward_labeling(sys_);
  using Label = std::pair<std::int64_t, std::int32_t>;
  auto tail = [&](const char* name) {
    const auto i = static_cast<std::size_t>(ch(name));
    return Label(labels.tail_weight[i], labels.tail_timestamp[i]);
  };
  EXPECT_EQ(tail("h"), Label(2, 1));
  EXPECT_EQ(tail("d"), Label(10, 2));
  EXPECT_EQ(tail("g"), Label(10, 3));
  EXPECT_EQ(tail("e"), Label(10, 4));
  EXPECT_EQ(tail("f"), Label(13, 5));
  EXPECT_EQ(tail("c"), Label(13, 6));
  EXPECT_EQ(tail("b"), Label(16, 7));
  EXPECT_EQ(tail("a"), Label(23, 8));
}

// ---- Paper worked examples for the label arithmetic -------------------------

TEST_F(MotivatingExample, ForwardWeightDecompositionAtP2) {
  // weight(P2 out arcs) = MaxInArcWeight(3) + SumOutArcLatency(5) +
  // latency(5) = 13 (the paper's worked example).
  EXPECT_EQ(sys_.latency(sys_.find_process("P2")), 5);
  EXPECT_EQ(sys_.channel_latency(ch("b")) + sys_.channel_latency(ch("d")) +
                sys_.channel_latency(ch("f")),
            5);
}

TEST_F(MotivatingExample, BackwardWeightDecompositionAtP6) {
  // weight(P6 in arcs) = MaxOutArcWeight(2) + SumInArcLatency(6) +
  // latency(2) = 10.
  EXPECT_EQ(sys_.latency(sys_.find_process("P6")), 2);
  EXPECT_EQ(sys_.channel_latency(ch("d")) + sys_.channel_latency(ch("e")) +
                sys_.channel_latency(ch("g")),
            6);
}

// ---- Fig. 4(c): the final ordering ------------------------------------------

TEST_F(MotivatingExample, FinalOrderingMatchesAlgorithmExample) {
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"d", "e", "g"});
  const ChannelOrderingResult result = ordering::channel_ordering(sys_);
  // "process P6 read first from channel d, then g, and finally e".
  EXPECT_EQ(get_order("P6", result),
            (std::vector<std::string>{"d", "g", "e"}));
  // "process P2 writes first channel b, then f and finally d"
  // (tail weights 16, 13, 10 descending).
  EXPECT_EQ(put_order("P2", result),
            (std::vector<std::string>{"b", "f", "d"}));
}

TEST_F(MotivatingExample, AlgorithmOutputAchievesOptimum) {
  apply_motivating_orders(sys_, {"f", "b", "d"}, {"e", "g", "d"});
  SystemModel ordered = ordering::with_optimal_ordering(sys_);
  const PerformanceReport report = analysis::analyze_system(ordered);
  ASSERT_TRUE(report.live);
  EXPECT_DOUBLE_EQ(report.cycle_time, 12.0);
}

TEST_F(MotivatingExample, AlgorithmOutputSimulatesAt12) {
  SystemModel ordered = ordering::with_optimal_ordering(sys_);
  const sim::SystemSimResult result = sim::simulate_system(ordered, 200);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.measured_cycle_time, 12.0, 1e-9);
}

TEST_F(MotivatingExample, AlgorithmIsIdempotentAtTheOptimum) {
  SystemModel once = ordering::with_optimal_ordering(sys_);
  SystemModel twice = ordering::with_optimal_ordering(once);
  for (ProcessId p = 0; p < sys_.num_processes(); ++p) {
    EXPECT_EQ(once.input_order(p), twice.input_order(p));
    EXPECT_EQ(once.output_order(p), twice.output_order(p));
  }
}

TEST_F(MotivatingExample, CriticalCycleIsP2Ring) {
  SystemModel ordered = ordering::with_optimal_ordering(sys_);
  const PerformanceReport report = analysis::analyze_system(ordered);
  // At the optimum the binding constraint is P2's own ring:
  // ch_a(2) + L2(5) + b(1) + f(1) + d(3) = 12.
  ASSERT_EQ(report.critical_processes.size(), 1u);
  EXPECT_EQ(ordered.process_name(report.critical_processes[0]), "P2");
}

TEST_F(MotivatingExample, AllOrderCombinationsCount36) {
  EXPECT_DOUBLE_EQ(sys_.num_order_combinations(), 36.0);
}

}  // namespace
}  // namespace ermes
