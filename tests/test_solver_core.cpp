// Unit tests of the flat CSR solver core (tmg/csr.h, tmg/workspace.h):
// compile/refresh/matches mechanics, workspace reuse across differently
// sized graphs, the canonical-start determinism contract on edge shapes
// (empty graphs, self-loops, zero-token cycles), per-component solves on
// caller scratch, and the Howard iteration-cap exhaustion path.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/scc.h"
#include "tmg/csr.h"
#include "tmg/cycle_ratio.h"
#include "tmg/howard.h"
#include "tmg/marked_graph.h"
#include "tmg/workspace.h"

namespace ermes::tmg {
namespace {

bool bits_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

void expect_bit_identical(const CycleRatioResult& got,
                          const CycleRatioResult& want) {
  EXPECT_EQ(got.has_cycle, want.has_cycle);
  EXPECT_EQ(got.ratio_num, want.ratio_num);
  EXPECT_EQ(got.ratio_den, want.ratio_den);
  EXPECT_TRUE(bits_equal(got.ratio, want.ratio));
  EXPECT_EQ(got.critical_cycle, want.critical_cycle);
}

// ring + one heavy self-loop + a cross chord: two nontrivial co-existing
// cycles, so policy iteration actually iterates.
RatioGraph sample_graph() {
  RatioGraph rg;
  rg.g.add_nodes(4);
  const auto arc = [&rg](graph::NodeId u, graph::NodeId v, std::int64_t w,
                         std::int64_t t) {
    rg.g.add_arc(u, v);
    rg.weight.push_back(w);
    rg.tokens.push_back(t);
  };
  arc(0, 1, 3, 1);
  arc(1, 2, 4, 0);
  arc(2, 3, 5, 1);
  arc(3, 0, 2, 0);
  arc(2, 2, 9, 1);   // heavy self-loop inside the SCC
  arc(1, 0, 1, 1);   // chord: short cycle 0->1->0
  return rg;
}

// --- HowardWorkspace ---------------------------------------------------------

TEST(HowardWorkspace, EnsureGrowsAndNeverShrinks) {
  HowardWorkspace ws;
  ws.ensure(4);
  EXPECT_EQ(ws.policy.size(), 4u);
  EXPECT_EQ(ws.seen.size(), 4u);
  ws.ensure(16);
  EXPECT_EQ(ws.lambda.size(), 16u);
  ws.ensure(2);  // no shrink
  EXPECT_EQ(ws.policy.size(), 16u);
}

TEST(HowardWorkspace, StampsAreFreshAcrossEnsureGrowth) {
  HowardWorkspace ws;
  ws.ensure(2);
  const std::int32_t s1 = ws.next_stamp();
  ws.seen[0] = s1;
  ws.ensure(8);  // new entries must not alias the current stamp
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_NE(ws.seen[i], s1) << "stale stamp at " << i;
  }
  EXPECT_GT(ws.next_stamp(), s1);
}

// --- CsrGraph mechanics ------------------------------------------------------

TEST(CsrGraph, CompileMatchesAndRefreshesWeights) {
  RatioGraph rg = sample_graph();
  CsrGraph csr;
  csr.compile(rg);
  EXPECT_EQ(csr.num_nodes, 4);
  EXPECT_EQ(csr.num_arcs, 6);
  EXPECT_TRUE(csr.matches(rg));
  // Slots preserve out_arcs order, and arc ids round-trip through arc_slot.
  for (graph::ArcId a = 0; a < csr.num_arcs; ++a) {
    EXPECT_EQ(csr.arc_weight(a), rg.arc_weight(a));
    EXPECT_EQ(csr.slot_arc[static_cast<std::size_t>(
                  csr.arc_slot[static_cast<std::size_t>(a)])],
              a);
  }
  rg.weight[2] = 42;
  EXPECT_TRUE(csr.matches(rg));  // weights are not structure
  csr.refresh_weights(rg);
  EXPECT_EQ(csr.arc_weight(2), 42);
}

TEST(CsrGraph, StructureChangesAreDetected) {
  const RatioGraph rg = sample_graph();
  CsrGraph csr;
  csr.compile(rg);

  RatioGraph more = rg;
  more.g.add_arc(3, 1);
  more.weight.push_back(1);
  more.tokens.push_back(1);
  EXPECT_FALSE(csr.matches(more));

  RatioGraph retok = rg;
  retok.tokens[1] = 2;  // tokens are structure (they gate the solve plan)
  EXPECT_FALSE(csr.matches(retok));
}

TEST(CsrGraph, MarkedGraphCompileMirrorsToRatioGraph) {
  MarkedGraph g;
  for (int t = 0; t < 3; ++t) {
    g.add_transition("t" + std::to_string(t), 2 + 3 * t);
  }
  g.add_place(0, 1, 1);
  g.add_place(1, 2, 0);
  g.add_place(2, 0, 1);
  g.add_place(1, 1, 1);  // self-loop place

  const RatioGraph rg = to_ratio_graph(g);
  CsrGraph from_rg, from_tmg;
  from_rg.compile(rg);
  from_tmg.compile(g);
  EXPECT_EQ(from_tmg.row_ptr, from_rg.row_ptr);
  EXPECT_EQ(from_tmg.slot_arc, from_rg.slot_arc);
  EXPECT_EQ(from_tmg.slot_head, from_rg.slot_head);
  EXPECT_EQ(from_tmg.slot_weight, from_rg.slot_weight);
  EXPECT_EQ(from_tmg.slot_tokens, from_rg.slot_tokens);
  EXPECT_TRUE(from_tmg.matches(rg));
  EXPECT_TRUE(from_rg.matches(g));
}

// --- CycleMeanSolver: prepare/warm/solve -------------------------------------

TEST(CycleMeanSolver, PrepareReportsWarmOnlyForUnchangedStructure) {
  RatioGraph rg = sample_graph();
  CycleMeanSolver solver;
  EXPECT_FALSE(solver.prepare(rg));  // cold: first compile
  EXPECT_TRUE(solver.prepare(rg));   // warm: nothing changed
  rg.weight[0] = 77;
  EXPECT_TRUE(solver.prepare(rg));   // warm: weight-only
  rg.g.add_arc(0, 2);
  rg.weight.push_back(1);
  rg.tokens.push_back(1);
  EXPECT_FALSE(solver.prepare(rg));  // cold: structure changed
  EXPECT_EQ(solver.stats().compiles, 2);
  EXPECT_EQ(solver.stats().weight_refreshes, 2);
}

TEST(CycleMeanSolver, SolveMatchesLegacyOnSample) {
  const RatioGraph rg = sample_graph();
  CycleMeanSolver solver;
  expect_bit_identical(solver.solve(rg), max_cycle_ratio_howard(rg));
}

TEST(CycleMeanSolver, SetArcWeightPatchesStayBitIdentical) {
  RatioGraph rg = sample_graph();
  CycleMeanSolver solver;
  solver.prepare(rg);
  for (int step = 0; step < 8; ++step) {
    const auto a = static_cast<graph::ArcId>(step % 6);
    const std::int64_t w = 1 + (step * 5) % 11;
    rg.weight[static_cast<std::size_t>(a)] = w;
    solver.set_arc_weight(a, w);  // patch in place of a full prepare
    expect_bit_identical(solver.solve(), max_cycle_ratio_howard(rg));
  }
}

TEST(CycleMeanSolver, EmptyAndAcyclicGraphs) {
  RatioGraph empty;
  CycleMeanSolver solver;
  const CycleRatioResult r = solver.solve(empty);
  EXPECT_FALSE(r.has_cycle);

  RatioGraph dag;
  dag.g.add_nodes(3);
  dag.g.add_arc(0, 1);
  dag.g.add_arc(1, 2);
  dag.weight = {5, 7};
  dag.tokens = {1, 1};
  expect_bit_identical(solver.solve(dag), max_cycle_ratio_howard(dag));
  EXPECT_FALSE(solver.solve(dag).has_cycle);
}

TEST(CycleMeanSolver, SelfLoopTieBreakMatchesLegacy) {
  // Two self-loops with the equal ratio 4/2 == 2/1: the legacy trivial-SCC
  // scan keeps the *first* (exact compare, first wins) — the CSR plan must
  // report the same arc.
  RatioGraph rg;
  rg.g.add_nodes(1);
  rg.g.add_arc(0, 0);
  rg.g.add_arc(0, 0);
  rg.weight = {4, 2};
  rg.tokens = {2, 1};
  CycleMeanSolver solver;
  expect_bit_identical(solver.solve(rg), max_cycle_ratio_howard(rg));
}

TEST(CycleMeanSolver, ZeroTokenCycleIsInfiniteWithSameWitness) {
  RatioGraph rg;
  rg.g.add_nodes(3);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);  // zero-token 2-cycle
  rg.g.add_arc(1, 2);
  rg.g.add_arc(2, 1);
  rg.weight = {1, 1, 1, 1};
  rg.tokens = {0, 0, 1, 1};
  CycleMeanSolver solver;
  const CycleRatioResult r = solver.solve(rg);
  EXPECT_TRUE(r.is_infinite());
  expect_bit_identical(r, max_cycle_ratio_howard(rg));
}

// --- per-component solves on caller scratch ----------------------------------

TEST(CycleMeanSolver, SolveComponentMatchesLegacyPerScc) {
  // Two decoupled rings (no cross arcs back), so two nontrivial SCCs.
  RatioGraph rg;
  rg.g.add_nodes(5);
  const auto arc = [&rg](graph::NodeId u, graph::NodeId v, std::int64_t w,
                         std::int64_t t) {
    rg.g.add_arc(u, v);
    rg.weight.push_back(w);
    rg.tokens.push_back(t);
  };
  arc(0, 1, 3, 1);
  arc(1, 0, 2, 1);
  arc(1, 2, 1, 1);  // feed-forward into the second ring
  arc(2, 3, 6, 1);
  arc(3, 4, 4, 0);
  arc(4, 2, 5, 1);

  CycleMeanSolver solver;
  solver.prepare(rg);
  const graph::SccResult& sccs = solver.sccs();
  const graph::SccResult legacy_sccs =
      graph::strongly_connected_components(rg.g);
  ASSERT_EQ(sccs.num_components, legacy_sccs.num_components);
  EXPECT_EQ(sccs.component, legacy_sccs.component);
  EXPECT_EQ(sccs.members, legacy_sccs.members);

  HowardWorkspace ws;
  for (std::int32_t c = 0; c < sccs.num_components; ++c) {
    expect_bit_identical(
        solver.solve_component(c, ws),
        max_cycle_ratio_howard_scc(rg, sccs.component, c,
                                   sccs.members[static_cast<std::size_t>(c)]));
  }
}

TEST(CycleMeanSolver, WorkspaceBankGrowsAndIsIndexable) {
  CycleMeanSolver solver;
  solver.prepare(sample_graph(), /*workers=*/3);
  EXPECT_GE(solver.num_workspaces(), 3u);
  solver.ensure_workspaces(5);
  EXPECT_EQ(solver.num_workspaces(), 5u);
  solver.ensure_workspaces(2);  // never shrinks
  EXPECT_EQ(solver.num_workspaces(), 5u);
  // Distinct slots are distinct objects (one per worker, no sharing).
  EXPECT_NE(&solver.workspace(0), &solver.workspace(4));
}

// --- iteration-cap exhaustion ------------------------------------------------

TEST(HowardCap, ExhaustionIsReportedAndPathsAgree) {
  // The canonical initial policy picks each node's first out-arc: the 1-1
  // ring (ratio 2/2). The heavy self-loop 9/1 is only reachable through
  // policy improvement, so cap=1 stops after evaluating the initial policy.
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 1);
  rg.weight = {1, 1, 9};
  rg.tokens = {1, 1, 1};
  const graph::SccResult sccs = graph::strongly_connected_components(rg.g);
  ASSERT_EQ(sccs.num_components, 1);

  set_howard_iteration_cap_for_testing(1);
  int iterations = 0;
  bool capped = false;
  const CycleRatioResult legacy = max_cycle_ratio_howard_scc(
      rg, sccs.component, 0, sccs.members[0], &iterations, &capped);
  EXPECT_TRUE(capped) << "cap=1 must be exhausted on this graph";
  EXPECT_EQ(iterations, 1);
  EXPECT_EQ(legacy.ratio_num, 2);  // the initial policy's cycle, suboptimal
  EXPECT_EQ(legacy.ratio_den, 2);

  // The CSR path shares the cap plumbing and must cap identically.
  CycleMeanSolver solver;
  solver.prepare(rg);
  HowardWorkspace ws;
  int csr_iterations = 0;
  bool csr_capped = false;
  expect_bit_identical(
      solver.solve_component(0, ws, &csr_iterations, &csr_capped), legacy);
  EXPECT_TRUE(csr_capped);
  EXPECT_EQ(csr_iterations, iterations);

  // Back to the default cap: both converge to the self-loop optimum.
  set_howard_iteration_cap_for_testing(0);
  capped = true;
  const CycleRatioResult full = max_cycle_ratio_howard_scc(
      rg, sccs.component, 0, sccs.members[0], &iterations, &capped);
  EXPECT_FALSE(capped);
  EXPECT_EQ(full.ratio_num, 9);
  EXPECT_EQ(full.ratio_den, 1);
  expect_bit_identical(solver.solve(), full);
}

}  // namespace
}  // namespace ermes::tmg
