// End-to-end integration tests: the full ERMES flow (model -> analysis ->
// ordering -> DSE -> simulation) on the paper's case studies.

#include <gtest/gtest.h>

#include <limits>

#include "analysis/deadlock.h"
#include "analysis/performance.h"
#include "apps/mpeg2/characterization.h"
#include "apps/mpeg2/topology.h"
#include "dse/explorer.h"
#include "ordering/baselines.h"
#include "ordering/channel_ordering.h"
#include "ordering/local_search.h"
#include "ordering/repair.h"
#include "sim/system_sim.h"
#include "synth/generator.h"
#include "synth/pareto_gen.h"
#include "sysmodel/builder.h"

namespace ermes {
namespace {

using sysmodel::ProcessId;
using sysmodel::SystemModel;

TEST(IntegrationTest, FullFlowOnMotivatingExample) {
  // Designer writes a deadlocking order; ERMES diagnoses, reorders, and the
  // result simulates at the analytic optimum.
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});

  const analysis::DeadlockDiagnosis diag = analysis::diagnose_system(sys);
  ASSERT_TRUE(diag.deadlocked);

  sys = ordering::with_optimal_ordering(sys);
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  ASSERT_TRUE(report.live);
  EXPECT_DOUBLE_EQ(report.cycle_time, 12.0);

  const sim::SystemSimResult simulated = sim::simulate_system(sys, 150);
  ASSERT_FALSE(simulated.deadlocked);
  EXPECT_NEAR(simulated.measured_cycle_time, 12.0, 1e-9);
}

TEST(IntegrationTest, Mpeg2ReorderingOnlyImprovesM1) {
  // Section 6: applied to M1, reordering alone improved CT ~5% with zero
  // area change. Verify the shape: some improvement, no area change.
  SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  mpeg2::select_m1(sys);
  // The model ships with the conservative (deadlock-free but latency-
  // oblivious) designer ordering, exactly the paper's starting point.
  const double area0 = sys.total_area();
  const double ct0 = analysis::analyze_system(sys).cycle_time;

  SystemModel ordered = ordering::with_optimal_ordering(sys);
  const double ct1 = analysis::analyze_system(ordered).cycle_time;
  EXPECT_LE(ct1, ct0);
  EXPECT_DOUBLE_EQ(ordered.total_area(), area0);
}

TEST(IntegrationTest, Mpeg2TimingExplorationShape) {
  // Fig. 6 (left): from M2 with a tight target, ERMES reaches the target
  // with an area overhead; CT roughly halves.
  SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  const double area0 = sys.total_area();
  dse::ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 0.60);
  const dse::ExplorationResult result = dse::explore(sys, options);
  ASSERT_FALSE(result.history.empty());
  const auto& last = result.history.back();
  EXPECT_TRUE(last.meets_target);
  EXPECT_LT(last.cycle_time, ct0 * 0.65);
  EXPECT_GT(last.area, area0);  // speed costs area
}

TEST(IntegrationTest, Mpeg2AreaRecoveryShape) {
  // Fig. 6 (right): with a loose target, ERMES trades a little timing for a
  // significant area reduction.
  SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  const double area0 = sys.total_area();
  dse::ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 1.15);
  const dse::ExplorationResult result = dse::explore(sys, options);
  const auto& last = result.history.back();
  EXPECT_TRUE(last.live);
  EXPECT_LT(last.area, area0);
  EXPECT_LT(last.cycle_time, ct0 * 1.16);  // timing degradation bounded
}

TEST(IntegrationTest, SyntheticFlowAtModerateScale) {
  synth::GeneratorConfig config;
  config.num_processes = 200;
  config.num_channels = 320;
  config.feedback_fraction = 0.15;
  config.seed = 99;
  SystemModel sys = synth::generate_soc(config);
  synth::attach_pareto_sets(sys, 101);

  sys = ordering::with_optimal_ordering(sys);
  const analysis::PerformanceReport before = analysis::analyze_system(sys);
  ASSERT_TRUE(before.live);

  dse::ExplorerOptions options;
  options.target_cycle_time =
      static_cast<std::int64_t>(before.cycle_time * 0.7);
  options.max_iterations = 8;
  const dse::ExplorationResult result = dse::explore(sys, options);
  EXPECT_TRUE(result.history.back().live);
  EXPECT_LE(result.history.back().cycle_time, before.cycle_time);
}

TEST(IntegrationTest, HillClimbComposesWithExplorer) {
  SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  sys = ordering::with_optimal_ordering(sys);
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  const ordering::LocalSearchResult refined =
      ordering::hill_climb_ordering(sys, 4);
  EXPECT_LE(refined.final_cycle_time, ct0);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST(IntegrationTest, ExplorerHistoryIsSimulatable) {
  // The final system of an exploration must simulate at its analytic CT.
  SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  dse::ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 0.6);
  options.max_iterations = 6;
  const dse::ExplorationResult result = dse::explore(sys, options);
  const analysis::PerformanceReport report =
      analysis::analyze_system(result.final_system);
  ASSERT_TRUE(report.live);
  const sim::SystemSimResult simulated =
      sim::simulate_system(result.final_system, 64);
  ASSERT_FALSE(simulated.deadlocked);
  EXPECT_NEAR(simulated.measured_cycle_time, report.cycle_time, 1e-9);
}

TEST(IntegrationTest, RepairNeverBreaksAcyclicOptimum) {
  // ensure_live is a no-op on live systems: the motivating example's
  // optimal order must pass through unchanged.
  SystemModel sys =
      ordering::with_optimal_ordering(sysmodel::make_dac14_motivating_example());
  SystemModel copy = sys;
  const ordering::RepairResult repair = ordering::ensure_live(copy);
  EXPECT_TRUE(repair.live);
  EXPECT_EQ(repair.iterations, 0);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    EXPECT_EQ(copy.input_order(p), sys.input_order(p));
    EXPECT_EQ(copy.output_order(p), sys.output_order(p));
  }
}

}  // namespace
}  // namespace ermes
