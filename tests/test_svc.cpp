// Tests for the analysis service (src/svc): the JSON document model and
// parser, the NDJSON protocol, the broker (admission control, deadlines,
// drain), and the socket server end-to-end over a unix-domain socket with
// concurrent clients.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/soc_format.h"
#include "io/soc_hier.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "soc_bad_corpus.h"
#include "svc/broker.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/render.h"
#include "svc/server.h"
#include "sysmodel/builder.h"

namespace ermes::svc {
namespace {

std::string demo_soc() {
  return io::write_soc(sysmodel::make_dac14_motivating_example(),
                       "dac14_motivating");
}

// ---------------------------------------------------------------------------
// JSON

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").ok);
  EXPECT_TRUE(json_parse("true").ok);
  EXPECT_TRUE(json_parse("false").ok);
  JsonParseResult number = json_parse("42");
  ASSERT_TRUE(number.ok);
  EXPECT_TRUE(number.value.is_integer());
  EXPECT_EQ(number.value.as_int(), 42);
  JsonParseResult negative = json_parse("-17");
  ASSERT_TRUE(negative.ok);
  EXPECT_EQ(negative.value.as_int(), -17);
  JsonParseResult fraction = json_parse("2.55e1");
  ASSERT_TRUE(fraction.ok);
  EXPECT_FALSE(fraction.value.is_integer());
  EXPECT_DOUBLE_EQ(fraction.value.as_double(), 25.5);
  // An integral double keeps its exact accessor usable.
  JsonParseResult integral = json_parse("2.5e1");
  ASSERT_TRUE(integral.ok);
  EXPECT_TRUE(integral.value.is_integer());
  EXPECT_EQ(integral.value.as_int(), 25);
}

TEST(Json, ParsesNestedDocument) {
  const JsonParseResult parsed = json_parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":"\u00e9\n"})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue* a = parsed.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].as_int(), 1);
  const JsonValue* e = parsed.value.find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->as_string(), "\xc3\xa9\n");
}

TEST(Json, RoundTripsThroughToString) {
  const std::string doc =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-7})";
  const JsonParseResult once = json_parse(doc);
  ASSERT_TRUE(once.ok);
  const JsonParseResult twice = json_parse(once.value.to_string());
  ASSERT_TRUE(twice.ok);
  EXPECT_EQ(once.value.to_string(), twice.value.to_string());
}

TEST(Json, RejectsMalformedInput) {
  const char* kBad[] = {
      "",          "{",           "}",           "[1,",       "{\"a\":}",
      "tru",       "nul",         "01",          "1.",        "1e",
      "\"\\q\"",   "\"\\u12\"",   "\"\\ud800\"", "{'a':1}",   "[1]]",
      "{\"a\":1,}", "[,1]",       "\"unterminated", "+1",     "--1",
      "{\"a\":1 \"b\":2}",        "\x01",        "{\"a\":1}{", "inf",
  };
  for (const char* text : kBad) {
    const JsonParseResult parsed = json_parse(text);
    EXPECT_FALSE(parsed.ok) << "input: " << text;
    EXPECT_FALSE(parsed.error.empty()) << "input: " << text;
  }
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_FALSE(json_parse(R"({"a":1,"a":2})").ok);
}

TEST(Json, ManyMemberObjectParsesInLinearTime) {
  // Regression: duplicate-key detection used a linear scan per member,
  // making a crafted object quadratic on the connection reader thread.
  // 50k members parse in well under a second with the hash-set path; the
  // quadratic version burned ~10^9 comparisons here.
  constexpr int kMembers = 50000;
  std::string doc = "{";
  for (int i = 0; i < kMembers; ++i) {
    if (i > 0) doc += ',';
    doc += "\"k" + std::to_string(i) + "\":" + std::to_string(i);
  }
  doc += '}';
  const JsonParseResult parsed = json_parse(doc);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.members().size(),
            static_cast<std::size_t>(kMembers));
  // A duplicate buried at the end is still caught.
  std::string dup = doc;
  dup.back() = ',';
  dup += "\"k0\":99}";
  EXPECT_FALSE(json_parse(dup).ok);
}

TEST(Json, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(json_parse("\"a\nb\"").ok);
}

TEST(Json, DepthLimitStopsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  const JsonParseResult parsed = json_parse(deep);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("nesting too deep"), std::string::npos);
  // Just inside the limit parses fine.
  std::string ok;
  for (int i = 0; i < kJsonMaxDepth; ++i) ok += '[';
  for (int i = 0; i < kJsonMaxDepth; ++i) ok += ']';
  EXPECT_TRUE(json_parse(ok).ok);
}

TEST(Json, Int64BoundaryValuesAreExact) {
  const JsonParseResult max = json_parse("9223372036854775807");
  ASSERT_TRUE(max.ok);
  ASSERT_TRUE(max.value.is_integer());
  EXPECT_EQ(max.value.as_int(), 9223372036854775807LL);
  // One past int64 falls back to double rather than failing.
  const JsonParseResult over = json_parse("9223372036854775808");
  ASSERT_TRUE(over.ok);
  EXPECT_FALSE(over.value.is_integer());
}

TEST(Json, SerializationIsDeterministic) {
  JsonValue object = JsonValue::object();
  object.set("z", JsonValue::integer(1));
  object.set("a", JsonValue::string("two"));
  object.set("z", JsonValue::integer(3));  // overwrite keeps the slot
  EXPECT_EQ(object.to_string(), R"({"z":3,"a":"two"})");
}

// ---------------------------------------------------------------------------
// Protocol

TEST(Protocol, ParsesMinimalRequest) {
  const RequestParse parsed = parse_request(R"({"op":"stats"})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.op, Op::kStats);
  EXPECT_TRUE(parsed.request.id.is_null());
}

TEST(Protocol, ParsesFullExploreRequest) {
  const RequestParse parsed = parse_request(
      R"({"v":1,"id":"r1","op":"explore","soc":"x","tct":12,"deadline_ms":500})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.op, Op::kExplore);
  EXPECT_EQ(parsed.request.soc, "x");
  EXPECT_EQ(parsed.request.tct, 12);
  EXPECT_EQ(parsed.request.deadline_ms, 500);
  EXPECT_EQ(parsed.request.id.as_string(), "r1");
}

TEST(Protocol, RejectsBadRequests) {
  const char* kBad[] = {
      "not json at all",
      "[]",                                     // not an object
      R"({"v":3,"op":"stats"})",                // unsupported version
      R"({"v":0,"op":"stats"})",                // below the minimum
      R"({"v":"1","op":"stats"})",              // version wrong type
      R"({"op":"frobnicate"})",                 // unknown op
      R"({"soc":"x"})",                         // missing op
      R"({"op":"stats","bogus":1})",            // unknown member
      R"({"op":"analyze"})",                    // missing soc
      R"({"op":"analyze","soc":""})",           // empty soc
      R"({"op":"explore","soc":"x"})",          // missing tct
      R"({"op":"explore","soc":"x","tct":0})",  // non-positive tct
      R"({"op":"explore","soc":"x","tct":1.5})",   // fractional tct
      R"({"op":"sweep","soc":"x","lo":5,"hi":2})", // hi < lo
      R"({"op":"sweep","soc":"x","lo":0,"hi":2})", // lo <= 0
      R"({"op":"stats","id":true})",            // id must be string/int/null
      R"({"op":"stats","deadline_ms":-5})",     // negative deadline
      // Sweep expanding past kMaxSweepTargets must be rejected up front
      // rather than allocating an unbounded target list.
      R"({"op":"sweep","soc":"x","lo":1,"hi":1000000000000000000,"step":1})",
  };
  for (const char* line : kBad) {
    const RequestParse parsed = parse_request(line);
    EXPECT_FALSE(parsed.ok) << "line: " << line;
    EXPECT_FALSE(parsed.error.empty()) << "line: " << line;
  }
}

TEST(Protocol, V2MembersAreRejectedOutsideProtocolV2) {
  // Session ops and v2-only members require an explicit "v":2 — a v1 client
  // can never trip over them by accident, and a v1 server rejects them with
  // a message naming the fix.
  const char* kBad[] = {
      R"({"op":"open_session","session":"s","soc":"x"})",   // no v:2
      R"({"v":1,"op":"open_session","session":"s","soc":"x"})",
      R"({"v":1,"op":"patch","session":"s","patches":[{"process":"p","latency":1}]})",
      R"({"v":1,"op":"close_session","session":"s"})",
      R"({"v":1,"op":"analyze","soc":"x","hier":true})",    // hier is v2-only
      R"({"v":1,"op":"analyze","soc":"x","session":"s"})",  // session op only
  };
  for (const char* line : kBad) {
    const RequestParse parsed = parse_request(line);
    EXPECT_FALSE(parsed.ok) << "line: " << line;
    EXPECT_FALSE(parsed.error.empty()) << "line: " << line;
  }
}

TEST(Protocol, RejectsBadV2Requests) {
  const std::string long_session(kMaxSessionIdLen + 1, 's');
  std::string too_many_patches =
      R"({"v":2,"op":"patch","session":"s","patches":[)";
  for (std::size_t i = 0; i <= kMaxPatchOps; ++i) {
    if (i > 0) too_many_patches += ',';
    too_many_patches += R"({"process":"p","latency":1})";
  }
  too_many_patches += "]}";
  const std::string kBad[] = {
      R"({"v":2,"op":"open_session","soc":"x"})",          // missing session
      R"({"v":2,"op":"open_session","session":"","soc":"x"})",  // empty
      R"({"v":2,"op":"open_session","session":")" + long_session +
          R"(","soc":"x"})",                               // session too long
      R"({"v":2,"op":"open_session","session":"s"})",      // missing soc
      R"({"v":2,"op":"close_session"})",                   // missing session
      R"({"v":2,"op":"patch","session":"s"})",             // missing patches
      R"({"v":2,"op":"patch","session":"s","patches":[]})",   // empty batch
      R"({"v":2,"op":"patch","session":"s","patches":"x"})",  // not an array
      R"({"v":2,"op":"patch","session":"s","patches":[1]})",  // not an object
      // Patch ops must be exactly one of the four two-member shapes.
      R"({"v":2,"op":"patch","session":"s","patches":[{}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p"}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p","latency":1,"select":0}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p","bogus":1}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"channel":"c","select":0}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"","latency":1}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p","latency":-1}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p","select":-2}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"process":"p","latency":1.5}]})",
      R"({"v":2,"op":"patch","session":"s","patches":[{"channel":"c","retarget":""}]})",
      too_many_patches,
      // hier must be boolean and only on soc-carrying ops.
      R"({"v":2,"op":"analyze","soc":"x","hier":1})",
      R"({"v":2,"op":"stats","hier":true})",
      R"({"v":2,"op":"close_session","session":"s","hier":true})",
      // patches only belong to the patch op.
      R"({"v":2,"op":"analyze","soc":"x","patches":[{"process":"p","latency":1}]})",
  };
  for (const std::string& line : kBad) {
    const RequestParse parsed = parse_request(line);
    EXPECT_FALSE(parsed.ok) << "line: " << line;
    EXPECT_FALSE(parsed.error.empty()) << "line: " << line;
  }
}

TEST(Protocol, ParsesSessionRequests) {
  const RequestParse open = parse_request(
      R"({"v":2,"id":"o1","op":"open_session","session":"dec","soc":"x","hier":true})");
  ASSERT_TRUE(open.ok) << open.error;
  EXPECT_EQ(open.request.version, 2);
  EXPECT_EQ(open.request.op, Op::kOpenSession);
  EXPECT_EQ(open.request.session, "dec");
  EXPECT_TRUE(open.request.hier);
  EXPECT_EQ(open.request.soc, "x");

  const RequestParse patch = parse_request(
      R"({"v":2,"op":"patch","session":"dec","patches":[)"
      R"({"process":"p","select":2},)"
      R"({"process":"p","latency":7},)"
      R"({"channel":"c","latency":0},)"
      R"({"channel":"c","retarget":"q"}]})");
  ASSERT_TRUE(patch.ok) << patch.error;
  ASSERT_EQ(patch.request.patches.size(), 4u);
  EXPECT_EQ(patch.request.patches[0].kind, PatchOp::Kind::kSelect);
  EXPECT_EQ(patch.request.patches[0].process, "p");
  EXPECT_EQ(patch.request.patches[0].value, 2);
  EXPECT_EQ(patch.request.patches[1].kind, PatchOp::Kind::kProcessLatency);
  EXPECT_EQ(patch.request.patches[1].value, 7);
  EXPECT_EQ(patch.request.patches[2].kind, PatchOp::Kind::kChannelLatency);
  EXPECT_EQ(patch.request.patches[2].channel, "c");
  EXPECT_EQ(patch.request.patches[2].value, 0);
  EXPECT_EQ(patch.request.patches[3].kind, PatchOp::Kind::kRetarget);
  EXPECT_EQ(patch.request.patches[3].target, "q");

  const RequestParse close = parse_request(
      R"({"v":2,"op":"close_session","session":"dec"})");
  ASSERT_TRUE(close.ok) << close.error;
  EXPECT_EQ(close.request.op, Op::kCloseSession);

  // v2 is also a plain superset for the v1 ops.
  const RequestParse analyze =
      parse_request(R"({"v":2,"op":"analyze","soc":"x"})");
  ASSERT_TRUE(analyze.ok) << analyze.error;
  EXPECT_EQ(analyze.request.version, 2);
  EXPECT_FALSE(analyze.request.hier);
}

TEST(Protocol, ResponsesEchoTheRequestVersion) {
  const std::string v1 =
      encode_ok(JsonValue::string("a"), JsonValue::object(), 1);
  EXPECT_NE(v1.find("\"v\":1"), std::string::npos) << v1;
  const std::string v2 = encode_error(JsonValue::string("b"),
                                      ErrorCode::kBadRequest, "nope", 2);
  EXPECT_NE(v2.find("\"v\":2"), std::string::npos) << v2;
}

TEST(Protocol, EncodeRequestRoundTrips) {
  const std::string line =
      encode_request(Op::kSweep, JsonValue::integer(7), "soc text\nline2", 0,
                     10, 20, 5, 250);
  const RequestParse parsed = parse_request(line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.op, Op::kSweep);
  EXPECT_EQ(parsed.request.soc, "soc text\nline2");
  EXPECT_EQ(parsed.request.lo, 10);
  EXPECT_EQ(parsed.request.hi, 20);
  EXPECT_EQ(parsed.request.step, 5);
  EXPECT_EQ(parsed.request.deadline_ms, 250);
  EXPECT_EQ(parsed.request.id.as_int(), 7);
}

TEST(Protocol, ResponsesEchoTheRequestId) {
  JsonValue result = JsonValue::object();
  result.set("x", JsonValue::integer(1));
  const ResponseView ok =
      parse_response(encode_ok(JsonValue::string("r9"), std::move(result)));
  ASSERT_TRUE(ok.ok) << ok.parse_error;
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(ok.id.as_string(), "r9");
  ASSERT_NE(ok.result.find("x"), nullptr);

  const ResponseView err = parse_response(
      encode_error(JsonValue::integer(3), ErrorCode::kOverloaded, "full"));
  ASSERT_TRUE(err.ok) << err.parse_error;
  EXPECT_FALSE(err.success);
  EXPECT_EQ(err.id.as_int(), 3);
  EXPECT_EQ(err.error_code, "overloaded");
  EXPECT_EQ(err.error_message, "full");
}

// ---------------------------------------------------------------------------
// Broker

TEST(Broker, AnalyzeMatchesDirectAnalysisBitForBit) {
  Broker broker({.workers = 2});
  const std::string response = broker.handle_line_sync(
      encode_request(Op::kAnalyze, JsonValue::string("a"), demo_soc()));
  const ResponseView view = parse_response(response);
  ASSERT_TRUE(view.ok) << view.parse_error;
  ASSERT_TRUE(view.success) << view.error_message;
  const JsonValue* text = view.result.find("text");
  ASSERT_NE(text, nullptr);
  const sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  EXPECT_EQ(text->as_string(),
            analyze_text(sys, analysis::analyze_system(sys)));
}

TEST(Broker, BadCorpusComesBackAsBadRequest) {
  // Every hostile .soc from the shared corpus must produce a structured
  // bad_request end-to-end — the broker keeps serving afterwards.
  Broker broker({.workers = 1});
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_soc_corpus()) {
    const ResponseView view = parse_response(broker.handle_line_sync(
        encode_request(Op::kAnalyze, JsonValue::string(bad.label), bad.text)));
    ASSERT_TRUE(view.ok) << bad.label << ": " << view.parse_error;
    EXPECT_FALSE(view.success) << bad.label;
    EXPECT_EQ(view.error_code, "bad_request") << bad.label;
  }
  // Still healthy: a good request succeeds.
  const ResponseView ok = parse_response(broker.handle_line_sync(
      encode_request(Op::kAnalyze, JsonValue::null(), demo_soc())));
  EXPECT_TRUE(ok.success) << ok.error_message;
  EXPECT_EQ(broker.stats().bad_requests,
            static_cast<std::int64_t>(ermes::testing::bad_soc_corpus().size()));
}

TEST(Broker, MalformedJsonLineIsBadRequest) {
  Broker broker({.workers = 1});
  const ResponseView view =
      parse_response(broker.handle_line_sync("this is not json"));
  ASSERT_TRUE(view.ok) << view.parse_error;
  EXPECT_FALSE(view.success);
  EXPECT_EQ(view.error_code, "bad_request");
}

TEST(Broker, OverloadRejectsInsteadOfBlocking) {
  // One worker, queue depth 2, and a slow explore occupying the worker:
  // pushing many more requests must return `overloaded` immediately for the
  // excess instead of blocking the submitting thread.
  Broker broker({.workers = 1, .queue_depth = 2, .test_iter_delay_ms = 20});
  std::atomic<int> overloaded{0};
  std::atomic<int> responded{0};
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    // Distinct deadlines give each request its own coalesce key; identical
    // in-flight requests would share one solve instead of piling onto the
    // admission queue, and this test is about the queue.
    const std::string slow =
        encode_request(Op::kExplore, JsonValue::null(), demo_soc(), /*tct=*/1,
                       0, 0, 0, /*deadline_ms=*/600'000 + i);
    broker.handle_line(slow, [&](std::string response) {
      const ResponseView view = parse_response(response);
      if (!view.success && view.error_code == "overloaded") {
        overloaded.fetch_add(1);
      }
      responded.fetch_add(1);
    });
  }
  broker.begin_drain();
  broker.drain();
  EXPECT_EQ(responded.load(), kRequests);
  EXPECT_GE(overloaded.load(), kRequests - 3);  // depth 2 + 1 executing
  EXPECT_EQ(broker.stats().rejected_overloaded, overloaded.load());
}

TEST(Broker, DeadlineExceededReleasesTheWorker) {
  // test_iter_delay_ms makes every DSE iteration cost >= 20 ms, so a 1 ms
  // deadline must cancel during the first iterations and come back within a
  // small multiple of the iteration delay — then the worker is free and a
  // normal request completes.
  Broker broker({.workers = 1, .test_iter_delay_ms = 20});
  const auto start = std::chrono::steady_clock::now();
  const ResponseView slow = parse_response(broker.handle_line_sync(
      encode_request(Op::kExplore, JsonValue::string("slow"), demo_soc(),
                     /*tct=*/1, 0, 0, 0, /*deadline_ms=*/1)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(slow.ok) << slow.parse_error;
  EXPECT_FALSE(slow.success);
  EXPECT_EQ(slow.error_code, "deadline_exceeded");
  // Tolerance: one pending iteration poll (20 ms) plus generous scheduling
  // slack; the whole uncancelled exploration would take far longer.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(broker.stats().deadline_exceeded, 1);

  // The daemon keeps serving: same op without a deadline succeeds.
  Broker fast({.workers = 1});
  const ResponseView after = parse_response(fast.handle_line_sync(
      encode_request(Op::kExplore, JsonValue::null(), demo_soc(), /*tct=*/12)));
  EXPECT_TRUE(after.success) << after.error_message;
}

TEST(Broker, HugeDeadlineIsClampedNotWrapped) {
  // Regression: now() + milliseconds(INT64_MAX) overflowed steady_clock's
  // nanosecond representation and wrapped to a past deadline, so a huge
  // client-supplied deadline failed instantly with deadline_exceeded.
  Broker broker({.workers = 1});
  const ResponseView view = parse_response(broker.handle_line_sync(
      encode_request(Op::kAnalyze, JsonValue::null(), demo_soc(), 0, 0, 0, 0,
                     /*deadline_ms=*/9223372036854775807LL)));
  EXPECT_TRUE(view.success) << view.error_code << ": " << view.error_message;
  EXPECT_EQ(broker.stats().deadline_exceeded, 0);
}

TEST(Broker, SweepNearInt64MaxDoesNotOverflow) {
  // Regression: the target-building loop advanced with `tct += step`, which
  // is signed-overflow UB once hi is within one step of INT64_MAX.
  constexpr std::int64_t kMax = 9223372036854775807LL;
  Broker broker({.workers = 1});
  const ResponseView view = parse_response(broker.handle_line_sync(
      encode_request(Op::kSweep, JsonValue::null(), demo_soc(), 0,
                     /*lo=*/kMax - 2, /*hi=*/kMax, /*step=*/1)));
  ASSERT_TRUE(view.success) << view.error_code << ": " << view.error_message;
  const JsonValue* targets = view.result.find("targets");
  ASSERT_NE(targets, nullptr);
  EXPECT_EQ(targets->items().size(), 3u);
  EXPECT_EQ(targets->items().back().find("tct")->as_int(), kMax);
}

TEST(Broker, DefaultDeadlineApplies) {
  Broker broker(
      {.workers = 1, .default_deadline_ms = 1, .test_iter_delay_ms = 20});
  const ResponseView view = parse_response(broker.handle_line_sync(
      encode_request(Op::kExplore, JsonValue::null(), demo_soc(), /*tct=*/1)));
  EXPECT_FALSE(view.success);
  EXPECT_EQ(view.error_code, "deadline_exceeded");
}

TEST(Broker, WarmCacheIsSharedAcrossRequests) {
  Broker broker({.workers = 2});
  const std::string request =
      encode_request(Op::kExplore, JsonValue::null(), demo_soc(), /*tct=*/12);
  ASSERT_TRUE(parse_response(broker.handle_line_sync(request)).success);
  const std::int64_t misses_after_first = broker.cache().misses();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(parse_response(broker.handle_line_sync(request)).success);
  }
  // Repeat requests replay the memo: no (or almost no) new misses.
  EXPECT_LE(broker.cache().misses(), misses_after_first + 1);
  EXPECT_GT(broker.cache().hits(), 0);
}

TEST(Broker, ShutdownRespondsThenDrains) {
  Broker broker({.workers = 1});
  const ResponseView view = parse_response(broker.handle_line_sync(
      encode_request(Op::kShutdown, JsonValue::string("bye"), "")));
  ASSERT_TRUE(view.ok) << view.parse_error;
  EXPECT_TRUE(view.success);
  EXPECT_TRUE(broker.draining());
  // Requests after the drain flip get shutting_down.
  const ResponseView rejected = parse_response(broker.handle_line_sync(
      encode_request(Op::kAnalyze, JsonValue::null(), demo_soc())));
  EXPECT_FALSE(rejected.success);
  EXPECT_EQ(rejected.error_code, "shutting_down");
  EXPECT_EQ(broker.stats().rejected_shutting_down, 1);
}

TEST(Broker, StatsReportsCounters) {
  Broker broker({.workers = 1, .queue_depth = 5});
  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  encode_request(Op::kAnalyze, JsonValue::null(), demo_soc())))
                  .success);
  const ResponseView stats = parse_response(
      broker.handle_line_sync(encode_request(Op::kStats, JsonValue::null(),
                                             "")));
  ASSERT_TRUE(stats.success) << stats.error_message;
  const JsonValue* broker_stats = stats.result.find("broker");
  ASSERT_NE(broker_stats, nullptr);
  EXPECT_EQ(broker_stats->find("queue_depth")->as_int(), 5);
  EXPECT_GE(broker_stats->find("accepted")->as_int(), 2);
  ASSERT_NE(stats.result.find("cache"), nullptr);
  ASSERT_NE(stats.result.find("metrics"), nullptr);
}

// RAII telemetry switch for the stats/metrics/tracing tests (obs is off by
// default so the rest of the suite measures the untelemetered paths).
struct TelemetryGuard {
  TelemetryGuard() { obs::set_enabled(true); }
  ~TelemetryGuard() { obs::set_enabled(false); }
};

// Builds a stats/metrics request at an explicit protocol version (the
// encode_request helper always speaks the latest).
std::string versioned_line(const std::string& op, int version) {
  JsonValue req = JsonValue::object();
  if (version > 1) req.set("v", JsonValue::integer(version));
  req.set("id", JsonValue::string("t"));
  req.set("op", JsonValue::string(op));
  return req.to_string();
}

TEST(Broker, StatsV2IsAdditiveOverV1) {
  TelemetryGuard telemetry;
  obs::Registry::global().reset();
  Broker broker({.workers = 1});
  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  encode_request(Op::kAnalyze, JsonValue::null(), demo_soc())))
                  .success);
  // The session path drives the CSR CycleMeanSolver, so the v2 `solver`
  // counters have something to show (plain analyze solves via Howard).
  JsonValue open = JsonValue::object();
  open.set("v", JsonValue::integer(2));
  open.set("op", JsonValue::string("open_session"));
  open.set("session", JsonValue::string("stats-v2"));
  open.set("soc", JsonValue::string(demo_soc()));
  ASSERT_TRUE(parse_response(broker.handle_line_sync(open.to_string()))
                  .success);

  // A v1 `stats` keeps exactly the pre-telemetry shape: none of the v2
  // members may appear (old clients that diff the body must never see them).
  const ResponseView v1 =
      parse_response(broker.handle_line_sync(versioned_line("stats", 1)));
  ASSERT_TRUE(v1.success) << v1.error_message;
  for (const char* member : {"latency", "queue_wait", "ops", "window",
                             "solver", "build"}) {
    EXPECT_EQ(v1.result.find(member), nullptr) << member;
  }
  const JsonValue* v1_cache = v1.result.find("cache");
  ASSERT_NE(v1_cache, nullptr);
  for (const char* member : {"shards", "window_hit_rate", "bytes",
                             "byte_budget", "evictions", "admission_rejects",
                             "restored", "families"}) {
    EXPECT_EQ(v1_cache->find(member), nullptr) << member;
  }

  // The same request at v2 carries the whole telemetry plane.
  const ResponseView v2 =
      parse_response(broker.handle_line_sync(versioned_line("stats", 2)));
  ASSERT_TRUE(v2.success) << v2.error_message;
  const JsonValue* latency = v2.result.find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->find("count")->as_int(), 1);
  EXPECT_GT(latency->find("p99_ns")->as_int(), 0);
  EXPECT_GE(latency->find("p99_ns")->as_int(),
            latency->find("p50_ns")->as_int());
  const JsonValue* ops = v2.result.find("ops");
  ASSERT_NE(ops, nullptr);
  const JsonValue* analyze_ns = ops->find("analyze");
  ASSERT_NE(analyze_ns, nullptr) << "per-op instrument for analyze";
  EXPECT_GE(analyze_ns->find("count")->as_int(), 1);
  const JsonValue* window = v2.result.find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_GE(window->find("requests")->as_int(), 1);
  EXPECT_GT(window->find("rps")->as_double(), 0.0);
  ASSERT_NE(v2.result.find("queue_wait"), nullptr);
  const JsonValue* solver = v2.result.find("solver");
  ASSERT_NE(solver, nullptr);
  // The session's first analysis compiled a CSR solver; `solves` counts
  // only canonical full-graph runs, so it may legitimately still be zero.
  EXPECT_GE(solver->find("compiles")->as_int(), 1);
  EXPECT_GE(solver->find("solves")->as_int(), 0);
  const JsonValue* cache = v2.result.find("cache");
  ASSERT_NE(cache, nullptr);
  const JsonValue* shards = cache->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_GT(shards->items().size(), 0u);
  std::int64_t shard_misses = 0;
  for (const JsonValue& shard : shards->items()) {
    shard_misses += shard.find("misses")->as_int();
  }
  // Per-shard counters fold up to the cache-wide totals.
  EXPECT_EQ(shard_misses, cache->find("misses")->as_int());
  // Capacity plane (v2-only): bytes tracked, budget echoed (0 here —
  // unbounded), eviction/restore counters, and the build identity.
  ASSERT_NE(cache->find("bytes"), nullptr);
  EXPECT_GT(cache->find("bytes")->as_int(), 0);
  ASSERT_NE(cache->find("byte_budget"), nullptr);
  EXPECT_EQ(cache->find("byte_budget")->as_int(), 0);
  ASSERT_NE(cache->find("evictions"), nullptr);
  ASSERT_NE(cache->find("restored"), nullptr);
  // Per-family split (v2-only): fixed order, and bytes/entries fold up to
  // the cache-wide totals.
  const JsonValue* families = cache->find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_EQ(families->items().size(), 3u);
  EXPECT_EQ(families->items()[0].find("name")->as_string(), "reports");
  EXPECT_EQ(families->items()[1].find("name")->as_string(), "evals");
  EXPECT_EQ(families->items()[2].find("name")->as_string(), "aux");
  std::int64_t family_bytes = 0, family_entries = 0;
  for (const JsonValue& family : families->items()) {
    family_bytes += family.find("bytes")->as_int();
    family_entries += family.find("entries")->as_int();
    ASSERT_NE(family.find("byte_budget"), nullptr);
    ASSERT_NE(family.find("evictions"), nullptr);
    ASSERT_NE(family.find("admission_rejects"), nullptr);
  }
  EXPECT_EQ(family_bytes, cache->find("bytes")->as_int());
  EXPECT_EQ(family_entries, cache->find("entries")->as_int());
  const JsonValue* build = v2.result.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(build->as_string().find("ermes "), std::string::npos);
}

TEST(Broker, MetricsOpServesPrometheusTextAtEveryVersion) {
  TelemetryGuard telemetry;
  obs::Registry::global().reset();
  Broker broker({.workers = 1});
  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  encode_request(Op::kAnalyze, JsonValue::null(), demo_soc())))
                  .success);

  for (int version : {1, 2}) {
    const ResponseView view = parse_response(
        broker.handle_line_sync(versioned_line("metrics", version)));
    ASSERT_TRUE(view.success) << "v" << version << ": " << view.error_message;
    const JsonValue* content_type = view.result.find("content_type");
    ASSERT_NE(content_type, nullptr);
    EXPECT_NE(content_type->as_string().find("version=0.0.4"),
              std::string::npos);
    const JsonValue* body = view.result.find("body");
    ASSERT_NE(body, nullptr);
    const std::string& text = body->as_string();
    EXPECT_NE(text.find("# TYPE ermes_svc_request_ns histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("ermes_svc_request_ns_q{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("ermes_cache_shard_hits_total{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("ermes_cache_family_bytes{family=\"reports\"}"),
              std::string::npos);
    EXPECT_NE(
        text.find("ermes_cache_family_evictions_total{family=\"aux\"}"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE ermes_svc_window_rps gauge\n"),
              std::string::npos);
    // `text` mirrors `body` so --text prints a raw scrape.
    const JsonValue* text_member = view.result.find("text");
    ASSERT_NE(text_member, nullptr);
    EXPECT_EQ(text_member->as_string(), text);
  }
}

TEST(Broker, SlowRequestLogCarriesIdAndStageBreakdown) {
  std::mutex lines_mu;
  std::vector<std::string> lines;
  BrokerOptions options;
  options.workers = 1;
  options.slow_request_ms = 1;        // everything qualifies...
  options.test_iter_delay_ms = 5;     // ...because explore sleeps per iter
  options.slow_log_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(lines_mu);
    lines.push_back(line);
  };
  Broker broker(options);
  const ResponseView view = parse_response(broker.handle_line_sync(
      encode_request(Op::kExplore, JsonValue::string("slow-1"), demo_soc(),
                     /*tct=*/1)));
  ASSERT_TRUE(view.success) << view.error_message;

  std::lock_guard<std::mutex> lock(lines_mu);
  ASSERT_EQ(lines.size(), 1u);
  const JsonParseResult parsed = json_parse(lines[0]);
  ASSERT_TRUE(parsed.ok) << lines[0] << ": " << parsed.error;
  const JsonValue& entry = parsed.value;
  EXPECT_TRUE(entry.find("slow_request")->as_bool());
  // The line carries the originating wire id verbatim.
  EXPECT_EQ(entry.find("id")->as_string(), "slow-1");
  EXPECT_EQ(entry.find("op")->as_string(), "explore");
  EXPECT_GE(entry.find("elapsed_ms")->as_double(), 1.0);
  const JsonValue* stages = entry.find("stages_ns");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"queue_wait", "parse", "cache_probe", "solve",
                            "render"}) {
    ASSERT_NE(stages->find(stage), nullptr) << stage;
    EXPECT_GE(stages->find(stage)->as_int(), 0) << stage;
  }
  // The stages actually exercised by an explore carry real time.
  EXPECT_GT(stages->find("solve")->as_int(), 0);
  EXPECT_GT(stages->find("parse")->as_int(), 0);
  ASSERT_NE(entry.find("traced"), nullptr);
}

TEST(Broker, TraceSampleSuppressesSpansButNotCounters) {
  TelemetryGuard telemetry;
  obs::Registry::global().reset();
  obs::SpanRecorder::global().clear();
  BrokerOptions options;
  options.workers = 1;
  options.trace_sample = 1000;  // only request 0 of each 1000 is traced
  Broker broker(options);
  const std::string line =
      encode_request(Op::kAnalyze, JsonValue::null(), demo_soc());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(parse_response(broker.handle_line_sync(line)).success);
  }
  // Exactly one request recorded spans; all four hit the histogram.
  EXPECT_EQ(obs::Registry::global().counter("svc.requests.traced").value(), 1);
  EXPECT_GT(obs::SpanRecorder::global().size(), 0u);
  EXPECT_EQ(obs::Registry::global().quantile("svc.request_ns").count(), 4);
  obs::SpanRecorder::global().clear();
}

// ---------------------------------------------------------------------------
// Broker: incremental sessions (protocol v2)

// Builds a v2 request line with properly escaped members. `patches` is a
// JSON array literal (validated here so tests fail loudly on typos).
std::string v2_line(const std::string& op, const std::string& session,
                    const std::string& soc = "", bool hier = false,
                    const std::string& patches = "") {
  JsonValue req = JsonValue::object();
  req.set("v", JsonValue::integer(2));
  req.set("op", JsonValue::string(op));
  if (!session.empty()) req.set("session", JsonValue::string(session));
  if (!soc.empty()) req.set("soc", JsonValue::string(soc));
  if (hier) req.set("hier", JsonValue::boolean(true));
  if (!patches.empty()) {
    const JsonParseResult parsed = json_parse(patches);
    EXPECT_TRUE(parsed.ok) << patches << ": " << parsed.error;
    req.set("patches", parsed.value);
  }
  return req.to_string();
}

std::string hier_pipeline_soc() {
  return "subsystem stage\n"
         "  port in din = head\n"
         "  port out dout = tail\n"
         "  process head latency 4\n"
         "  process tail latency 6\n"
         "  channel link head -> tail latency 1 capacity 2\n"
         "end\n"
         "process src latency 2\n"
         "process snk latency 1\n"
         "instance front stage\n"
         "instance mid stage\n"
         "instance back stage\n"
         "channel feed src -> front.din latency 1 capacity unbounded\n"
         "channel fm front.dout -> mid.din latency 1 capacity unbounded\n"
         "channel mb mid.dout -> back.din latency 1 capacity unbounded\n"
         "channel out back.dout -> snk latency 1 capacity unbounded\n";
}

TEST(BrokerSession, RoundTripMatchesColdAnalysisBitForBit) {
  Broker broker({.workers = 2});
  const sysmodel::SystemModel base = sysmodel::make_dac14_motivating_example();

  const ResponseView open = parse_response(
      broker.handle_line_sync(v2_line("open_session", "s1", demo_soc())));
  ASSERT_TRUE(open.ok) << open.parse_error;
  ASSERT_TRUE(open.success) << open.error_message;
  const analysis::PerformanceReport cold = analysis::analyze_system(base);
  EXPECT_EQ(open.result.find("session")->as_string(), "s1");
  EXPECT_EQ(open.result.find("ct_num")->as_int(), cold.ct_num);
  EXPECT_EQ(open.result.find("ct_den")->as_int(), cold.ct_den);
  EXPECT_EQ(open.result.find("cycle_time")->as_double(), cold.cycle_time);
  EXPECT_GE(open.result.find("sccs")->as_int(), 1);
  EXPECT_EQ(broker.stats().sessions, 1);

  // Patch one process latency; the session's re-analysis must equal a cold
  // analysis of the same mutation.
  sysmodel::SystemModel patched = base;
  const std::string pname = patched.process_name(0);
  patched.set_latency(0, 40);
  const analysis::PerformanceReport expected =
      analysis::analyze_system(patched);
  const ResponseView pr = parse_response(broker.handle_line_sync(v2_line(
      "patch", "s1", "", false,
      R"([{"process":")" + pname + R"(","latency":40}])")));
  ASSERT_TRUE(pr.success) << pr.error_message;
  EXPECT_EQ(pr.result.find("patched")->as_int(), 1);
  EXPECT_EQ(pr.result.find("ct_num")->as_int(), expected.ct_num);
  EXPECT_EQ(pr.result.find("ct_den")->as_int(), expected.ct_den);
  EXPECT_EQ(pr.result.find("cycle_time")->as_double(), expected.cycle_time);

  const ResponseView close =
      parse_response(broker.handle_line_sync(v2_line("close_session", "s1")));
  ASSERT_TRUE(close.success) << close.error_message;
  EXPECT_TRUE(close.result.find("closed")->as_bool());
  EXPECT_EQ(broker.stats().sessions, 0);

  // The session is really gone.
  const ResponseView after = parse_response(broker.handle_line_sync(v2_line(
      "patch", "s1", "", false,
      R"([{"process":")" + pname + R"(","latency":7}])")));
  EXPECT_FALSE(after.success);
  EXPECT_EQ(after.error_code, "bad_request");
  EXPECT_NE(after.error_message.find("unknown session"), std::string::npos);
}

TEST(BrokerSession, PatchBatchesAreAtomic) {
  Broker broker({.workers = 1});
  const sysmodel::SystemModel base = sysmodel::make_dac14_motivating_example();
  const analysis::PerformanceReport cold = analysis::analyze_system(base);
  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  v2_line("open_session", "s", demo_soc())))
                  .success);

  // First op is valid, second is not: nothing may be applied.
  const std::string pname = base.process_name(0);
  const ResponseView bad = parse_response(broker.handle_line_sync(v2_line(
      "patch", "s", "", false,
      R"([{"process":")" + pname + R"(","latency":40},)" +
          R"({"process":"no_such_process","latency":1}])")));
  ASSERT_FALSE(bad.success);
  EXPECT_EQ(bad.error_code, "bad_request");
  EXPECT_NE(bad.error_message.find("patch 1"), std::string::npos)
      << bad.error_message;

  // A no-op patch re-analyzes: the report matches the *unpatched* model,
  // proving the valid first op of the failed batch was rolled... never
  // applied in the first place.
  const ResponseView still = parse_response(broker.handle_line_sync(v2_line(
      "patch", "s", "", false,
      R"([{"process":")" + pname + R"(","latency":)" +
          std::to_string(base.latency(0)) + "}]")));
  ASSERT_TRUE(still.success) << still.error_message;
  EXPECT_EQ(still.result.find("ct_num")->as_int(), cold.ct_num);
  EXPECT_EQ(still.result.find("ct_den")->as_int(), cold.ct_den);
}

TEST(BrokerSession, HierModelsOpenAndPatchThroughTheFlattenedPath) {
  Broker broker({.workers = 1});
  const io::ParseResult flat = io::parse_soc_flattened(hier_pipeline_soc());
  ASSERT_TRUE(flat.ok) << flat.error;

  // hier:true also applies to plain analyze.
  const std::string analyze_line = [&] {
    JsonValue req = JsonValue::object();
    req.set("v", JsonValue::integer(2));
    req.set("op", JsonValue::string("analyze"));
    req.set("soc", JsonValue::string(hier_pipeline_soc()));
    req.set("hier", JsonValue::boolean(true));
    return req.to_string();
  }();
  const ResponseView analyzed =
      parse_response(broker.handle_line_sync(analyze_line));
  ASSERT_TRUE(analyzed.success) << analyzed.error_message;
  const analysis::PerformanceReport cold =
      analysis::analyze_system(flat.system);
  EXPECT_EQ(analyzed.result.find("ct_num")->as_int(), cold.ct_num);

  // Without hier, the flat parser rejects the subsystem grammar.
  const ResponseView rejected = parse_response(broker.handle_line_sync(
      encode_request(Op::kAnalyze, JsonValue::null(), hier_pipeline_soc())));
  EXPECT_FALSE(rejected.success);
  EXPECT_EQ(rejected.error_code, "bad_request");

  // Hier session: patch a flattened (dotted) process by name.
  const ResponseView open = parse_response(broker.handle_line_sync(
      v2_line("open_session", "h", hier_pipeline_soc(), /*hier=*/true)));
  ASSERT_TRUE(open.success) << open.error_message;
  EXPECT_EQ(open.result.find("sccs")->as_int(), 5);
  sysmodel::SystemModel patched = flat.system;
  patched.set_latency(patched.find_process("back.head"), 20);
  const analysis::PerformanceReport expected =
      analysis::analyze_system(patched);
  const ResponseView pr = parse_response(broker.handle_line_sync(v2_line(
      "patch", "h", "", false,
      R"([{"process":"back.head","latency":20}])")));
  ASSERT_TRUE(pr.success) << pr.error_message;
  EXPECT_EQ(pr.result.find("ct_num")->as_int(), expected.ct_num);
  EXPECT_EQ(pr.result.find("ct_den")->as_int(), expected.ct_den);
  // Only the patched stage's component re-solved; the rest stayed clean.
  EXPECT_LT(pr.result.find("sccs_solved")->as_int() +
                pr.result.find("sccs_reused")->as_int(),
            pr.result.find("sccs")->as_int());
}

TEST(BrokerSession, TableIsBoundedAndDuplicatesRejected) {
  Broker broker({.workers = 1, .max_sessions = 2});
  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  v2_line("open_session", "a", demo_soc())))
                  .success);
  const ResponseView dup = parse_response(
      broker.handle_line_sync(v2_line("open_session", "a", demo_soc())));
  EXPECT_FALSE(dup.success);
  EXPECT_EQ(dup.error_code, "bad_request");
  EXPECT_NE(dup.error_message.find("already open"), std::string::npos);

  ASSERT_TRUE(parse_response(broker.handle_line_sync(
                  v2_line("open_session", "b", demo_soc())))
                  .success);
  const ResponseView full = parse_response(
      broker.handle_line_sync(v2_line("open_session", "c", demo_soc())));
  EXPECT_FALSE(full.success);
  EXPECT_EQ(full.error_code, "overloaded");

  // Closing a session frees a slot.
  ASSERT_TRUE(parse_response(
                  broker.handle_line_sync(v2_line("close_session", "a")))
                  .success);
  EXPECT_TRUE(parse_response(broker.handle_line_sync(
                  v2_line("open_session", "c", demo_soc())))
                  .success);
  EXPECT_EQ(broker.stats().sessions, 2);
}

TEST(BrokerSession, ResponsesEchoTheRequestVersion) {
  Broker broker({.workers = 1});
  // A version-less (v1) request gets a v1 envelope; session ops on v1 are
  // rejected — v1 clients observe exactly the pre-v2 behaviour.
  JsonValue v1 = JsonValue::object();
  v1.set("op", JsonValue::string("analyze"));
  v1.set("soc", JsonValue::string(demo_soc()));
  const std::string v1_response = broker.handle_line_sync(v1.to_string());
  EXPECT_NE(v1_response.find("\"v\":1"), std::string::npos) << v1_response;
  ASSERT_TRUE(parse_response(v1_response).success);

  const std::string v2_response =
      broker.handle_line_sync(v2_line("open_session", "s", demo_soc()));
  EXPECT_NE(v2_response.find("\"v\":2"), std::string::npos) << v2_response;
  ASSERT_TRUE(parse_response(v2_response).success);

  const std::string v1_session = broker.handle_line_sync(
      R"({"v":1,"op":"close_session","session":"s"})");
  const ResponseView view = parse_response(v1_session);
  EXPECT_FALSE(view.success);
  EXPECT_EQ(view.error_code, "bad_request");
  EXPECT_NE(view.error_message.find("v2"), std::string::npos)
      << view.error_message;
  EXPECT_NE(v1_session.find("\"v\":1"), std::string::npos) << v1_session;
}

TEST(BrokerSession, HostileHierCorpusComesBackAsBadRequest) {
  Broker broker({.workers = 1});
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_hier_corpus()) {
    const ResponseView view = parse_response(broker.handle_line_sync(
        v2_line("open_session", "x", bad.text, /*hier=*/true)));
    ASSERT_TRUE(view.ok) << bad.label << ": " << view.parse_error;
    EXPECT_FALSE(view.success) << bad.label;
    EXPECT_EQ(view.error_code, "bad_request") << bad.label;
  }
  EXPECT_EQ(broker.stats().sessions, 0);
  // Still healthy afterwards.
  EXPECT_TRUE(parse_response(broker.handle_line_sync(
                  v2_line("open_session", "x", demo_soc())))
                  .success);
}

// ---------------------------------------------------------------------------
// Server end-to-end (unix-domain socket)

std::string test_socket_path(const char* tag) {
  return ::testing::TempDir() + "/ermes_svc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Server, ServesConcurrentClientsOverUnixSocket) {
  ServerOptions options;
  options.socket_path = test_socket_path("conc");
  options.broker.workers = 2;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  const std::string soc = demo_soc();
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  const sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  const std::string expected_text =
      analyze_text(sys, analysis::analyze_system(sys));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string client_error;
      std::unique_ptr<Client> client =
          Client::connect_unix(server.socket_path(), &client_error);
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::string id =
            "c" + std::to_string(c) + "r" + std::to_string(r);
        const ResponseView view = client->call(
            encode_request(Op::kAnalyze, JsonValue::string(id), soc));
        if (!view.ok || !view.success ||
            view.id.as_string() != id ||
            view.result.find("text")->as_string() != expected_text) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.request_stop();
  server_thread.join();
  // Cross-client cache sharing: one cold miss set, everything else hits.
  EXPECT_GT(server.broker().cache().hits(), 0);
}

TEST(Server, PipelinedRequestsAllAnswered) {
  ServerOptions options;
  options.socket_path = test_socket_path("pipe");
  options.broker.workers = 2;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  std::string client_error;
  std::unique_ptr<Client> client =
      Client::connect_unix(server.socket_path(), &client_error);
  ASSERT_NE(client, nullptr) << client_error;
  const std::string soc = demo_soc();
  constexpr int kPipelined = 16;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client->send_line(
        encode_request(Op::kAnalyze, JsonValue::integer(i), soc),
        &client_error))
        << client_error;
  }
  // Responses arrive in completion order; collect ids and check coverage.
  std::set<std::int64_t> seen;
  for (int i = 0; i < kPipelined; ++i) {
    std::string line;
    ASSERT_TRUE(client->recv_line(&line, &client_error)) << client_error;
    const ResponseView view = parse_response(line);
    ASSERT_TRUE(view.ok) << view.parse_error;
    EXPECT_TRUE(view.success);
    seen.insert(view.id.as_int());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kPipelined));

  server.request_stop();
  server_thread.join();
}

TEST(Server, MalformedLinesGetBadRequestWithoutKillingConnection) {
  ServerOptions options;
  options.socket_path = test_socket_path("bad");
  options.broker.workers = 1;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  std::string client_error;
  std::unique_ptr<Client> client =
      Client::connect_unix(server.socket_path(), &client_error);
  ASSERT_NE(client, nullptr) << client_error;
  const ResponseView bad = client->call("{{{{ not json");
  ASSERT_TRUE(bad.ok) << bad.parse_error;
  EXPECT_FALSE(bad.success);
  EXPECT_EQ(bad.error_code, "bad_request");
  // Same connection still works.
  const ResponseView good = client->call(
      encode_request(Op::kAnalyze, JsonValue::null(), demo_soc()));
  ASSERT_TRUE(good.ok) << good.parse_error;
  EXPECT_TRUE(good.success);

  server.request_stop();
  server_thread.join();
}

TEST(Server, DisconnectedClientsAreReaped) {
  // Regression: completed connections kept their fd open and their reader
  // thread unjoined until shutdown, so a long-lived daemon leaked one fd +
  // one thread per client that ever connected (ending in EMFILE and a
  // busy-spinning accept loop). Readers now reap themselves on disconnect.
  ServerOptions options;
  options.socket_path = test_socket_path("reap");
  options.broker.workers = 1;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  const std::string soc = demo_soc();
  constexpr int kSequentialClients = 8;
  for (int i = 0; i < kSequentialClients; ++i) {
    std::string client_error;
    std::unique_ptr<Client> client =
        Client::connect_unix(server.socket_path(), &client_error);
    ASSERT_NE(client, nullptr) << client_error;
    const ResponseView view = client->call(
        encode_request(Op::kAnalyze, JsonValue::integer(i), soc));
    ASSERT_TRUE(view.ok) << view.parse_error;
    EXPECT_TRUE(view.success);
  }  // client destructor closes the socket

  // The readers notice EOF and drop their connection records shortly after
  // each hang-up; poll with a deadline instead of assuming scheduling.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() > 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);

  server.request_stop();
  server_thread.join();
}

TEST(Server, ShutdownRequestDrainsTheServer) {
  ServerOptions options;
  options.socket_path = test_socket_path("down");
  options.broker.workers = 1;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  std::string client_error;
  std::unique_ptr<Client> client =
      Client::connect_unix(server.socket_path(), &client_error);
  ASSERT_NE(client, nullptr) << client_error;
  const ResponseView view = client->call(
      encode_request(Op::kShutdown, JsonValue::string("bye"), ""));
  ASSERT_TRUE(view.ok) << view.parse_error;
  EXPECT_TRUE(view.success);
  // run() returns once the drain completes — joining proves it.
  server_thread.join();
  EXPECT_TRUE(server.broker().draining());
}

TEST(Server, OversizedLineIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.socket_path = test_socket_path("huge");
  options.broker.workers = 1;
  options.max_line_bytes = 1024;
  Server server(std::move(options));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread server_thread([&server] { server.run(); });

  // Raw socket: 4 KiB with NO newline, so the frame bound trips while the
  // line is still incomplete — the server answers bad_request and hangs up.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string blob(4096, 'x');
  ASSERT_EQ(::send(fd, blob.data(), blob.size(), 0),
            static_cast<ssize_t>(blob.size()));
  std::string line;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // server hangs up after the error response
    line.append(chunk, static_cast<std::size_t>(n));
    if (line.find('\n') != std::string::npos) break;
  }
  ::close(fd);
  ASSERT_NE(line.find('\n'), std::string::npos) << "no response before EOF";
  const ResponseView view = parse_response(line.substr(0, line.find('\n')));
  EXPECT_FALSE(view.success);
  EXPECT_EQ(view.error_code, "bad_request");

  server.request_stop();
  server_thread.join();
}

}  // namespace
}  // namespace ermes::svc
