// Unit tests for the MPEG-2 case study: topology statistics (Table 1),
// characterization (171 Pareto points, M1/M2), and the functional kernels
// (DCT, quantizer, zigzag/RLE, VLC, motion estimation) plus the functional
// pipeline.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/performance.h"
#include "apps/mpeg2/characterization.h"
#include "apps/mpeg2/functional_pipeline.h"
#include "apps/mpeg2/kernels/dct.h"
#include "apps/mpeg2/kernels/motion.h"
#include "apps/mpeg2/kernels/quant.h"
#include "apps/mpeg2/kernels/vlc.h"
#include "apps/mpeg2/kernels/zigzag.h"
#include "apps/mpeg2/topology.h"
#include "graph/traversal.h"
#include "sysmodel/validate.h"
#include "util/rng.h"

namespace ermes::mpeg2 {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

// ---- topology (Table 1) -------------------------------------------------------

TEST(Mpeg2TopologyTest, Table1Statistics) {
  const SystemModel sys = make_mpeg2_encoder();
  EXPECT_EQ(sys.num_processes(), 26 + 2);  // 26 + testbench src/snk
  EXPECT_EQ(sys.num_channels(), 60);
}

TEST(Mpeg2TopologyTest, ChannelLatencyRangeMatchesPaper) {
  const SystemModel sys = make_mpeg2_encoder();
  std::int64_t lo = sys.channel_latency(0), hi = sys.channel_latency(0);
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    lo = std::min(lo, sys.channel_latency(c));
    hi = std::max(hi, sys.channel_latency(c));
  }
  EXPECT_EQ(lo, 1);     // "latencies range from 1
  EXPECT_EQ(hi, 5280);  //  to 5,280 clock cycles"
}

TEST(Mpeg2TopologyTest, ValidatesCleanly) {
  const sysmodel::ValidationReport report = validate(make_mpeg2_encoder());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
}

TEST(Mpeg2TopologyTest, HasFeedbackLoopsAndPrimedCarriers) {
  const SystemModel sys = make_mpeg2_encoder();
  EXPECT_FALSE(graph::is_acyclic(sys.topology()));
  EXPECT_TRUE(sys.primed(sys.find_process("frame_store")));
  EXPECT_TRUE(sys.primed(sys.find_process("rate_ctrl")));
}

TEST(Mpeg2TopologyTest, HasReconvergentPaths) {
  // mux receives from vlc_coeff, vlc_mv, hdr_gen, rle: reconvergence.
  const SystemModel sys = make_mpeg2_encoder();
  EXPECT_GE(sys.input_order(sys.find_process("mux")).size(), 3u);
}

TEST(Mpeg2TopologyTest, DefaultOrderIsLive) {
  EXPECT_TRUE(analysis::analyze_system(make_mpeg2_encoder()).live);
}

// ---- characterization -----------------------------------------------------------

TEST(Mpeg2CharacterizationTest, Exactly171ParetoPoints) {
  const SystemModel sys = make_characterized_mpeg2_encoder();
  EXPECT_EQ(sys.total_pareto_points(), kParetoPoints);
  EXPECT_EQ(kParetoPoints, 171u);
}

TEST(Mpeg2CharacterizationTest, AllFrontiersParetoOptimal) {
  const SystemModel sys = make_characterized_mpeg2_encoder();
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (sys.has_implementations(p)) {
      EXPECT_TRUE(sys.implementations(p).is_pareto_optimal())
          << sys.process_name(p);
    }
  }
}

TEST(Mpeg2CharacterizationTest, M1FasterAndLargerThanM2) {
  SystemModel sys = make_characterized_mpeg2_encoder();  // M2 selected
  const double m2_area = sys.total_area();
  const double m2_ct = analysis::analyze_system(sys).cycle_time;
  select_m1(sys);
  const double m1_area = sys.total_area();
  const double m1_ct = analysis::analyze_system(sys).cycle_time;
  EXPECT_LT(m1_ct, m2_ct);
  EXPECT_GT(m1_area, m2_area);
  // Paper ratios: CT 3597/1906 ~ 1.89x, area 2.267/1.562 ~ 1.45x. Require
  // the same orders of magnitude (shape, not absolute numbers).
  EXPECT_GT(m2_ct / m1_ct, 1.3);
  EXPECT_GT(m1_area / m2_area, 1.2);
}

TEST(Mpeg2CharacterizationTest, M2LeavesAreaRecoveryHeadroom) {
  SystemModel sys = make_characterized_mpeg2_encoder();
  // M2 is not per-process minimal: some process must have a smaller point.
  int with_headroom = 0;
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (!sys.has_implementations(p)) continue;
    const auto& set = sys.implementations(p);
    if (sys.selected_implementation(p) < set.size() - 1) ++with_headroom;
  }
  EXPECT_GT(with_headroom, 20);
}

TEST(Mpeg2CharacterizationTest, BothSelectionsLive) {
  SystemModel sys = make_characterized_mpeg2_encoder();
  EXPECT_TRUE(analysis::analyze_system(sys).live);
  select_m1(sys);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

// ---- DCT -------------------------------------------------------------------------

TEST(DctTest, DcOnlyBlock) {
  Block8x8 block{};
  block.fill(64);
  const Block8x8 coef = forward_dct(block);
  EXPECT_EQ(coef[0], 512);  // 64 * 8 (orthonormal scaling)
  for (std::size_t i = 1; i < 64; ++i) EXPECT_EQ(coef[i], 0);
}

TEST(DctTest, RoundTripWithinOne) {
  util::Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Block8x8 block{};
    for (auto& v : block) {
      v = static_cast<std::int32_t>(rng.uniform_int(-255, 255));
    }
    const Block8x8 rec = inverse_dct(forward_dct(block));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(rec[i], block[i], 1) << "trial " << trial << " idx " << i;
    }
  }
}

TEST(DctTest, LinearityInDc) {
  Block8x8 a{};
  a.fill(10);
  Block8x8 b{};
  b.fill(20);
  EXPECT_EQ(forward_dct(b)[0], 2 * forward_dct(a)[0]);
}

TEST(DctTest, EnergyCompactionOnSmoothRamp) {
  Block8x8 ramp{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ramp[static_cast<std::size_t>(y * 8 + x)] = x * 8;
    }
  }
  const Block8x8 coef = forward_dct(ramp);
  std::int64_t low = 0, high = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::int64_t e =
        static_cast<std::int64_t>(coef[i]) * coef[i];
    if (kZigzagOrder[10] >= 0 && i < 8) {
      low += e;
    } else {
      high += e;
    }
  }
  EXPECT_GT(low, high);  // energy concentrates in the first coefficients
}

// ---- quantization ------------------------------------------------------------------

TEST(QuantTest, QuantizeDequantizeApproximate) {
  util::Rng rng(43);
  Block8x8 coef{};
  for (auto& v : coef) {
    v = static_cast<std::int32_t>(rng.uniform_int(-500, 500));
  }
  const int qscale = 2;
  const Block8x8 rec =
      dequantize(quantize(coef, kFlatMatrix, qscale), kFlatMatrix, qscale);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(rec[i], coef[i], 16 * qscale / 2 + 1);
  }
}

TEST(QuantTest, CoarserScaleLosesMore) {
  Block8x8 coef{};
  coef[3] = 100;
  const Block8x8 fine = quantize(coef, kFlatMatrix, 1);
  const Block8x8 coarse = quantize(coef, kFlatMatrix, 16);
  EXPECT_GT(std::abs(fine[3]), std::abs(coarse[3]));
}

TEST(QuantTest, IntraMatrixWeightsHighFrequenciesHarder) {
  EXPECT_LT(kDefaultIntraMatrix[0], kDefaultIntraMatrix[63]);
}

// ---- zigzag / RLE -------------------------------------------------------------------

TEST(ZigzagTest, OrderIsPermutation) {
  std::array<bool, 64> seen{};
  for (std::int32_t idx : kZigzagOrder) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
    seen[static_cast<std::size_t>(idx)] = true;
  }
}

TEST(ZigzagTest, ScanUnscanRoundTrip) {
  Block8x8 block{};
  for (std::size_t i = 0; i < 64; ++i) {
    block[i] = static_cast<std::int32_t>(i * 3 - 50);
  }
  EXPECT_EQ(zigzag_unscan(zigzag_scan(block)), block);
}

TEST(ZigzagTest, FirstScannedIsDc) {
  Block8x8 block{};
  block[0] = 99;
  EXPECT_EQ(zigzag_scan(block)[0], 99);
}

TEST(RunLevelTest, EncodeDecodeRoundTrip) {
  util::Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<std::int32_t, 64> scanned{};
    for (auto& v : scanned) {
      v = rng.flip(0.2) ? static_cast<std::int32_t>(rng.uniform_int(-99, 99))
                        : 0;
    }
    EXPECT_EQ(run_level_decode(run_level_encode(scanned)), scanned);
  }
}

TEST(RunLevelTest, AllZerosEncodesEmpty) {
  std::array<std::int32_t, 64> zeros{};
  EXPECT_TRUE(run_level_encode(zeros).empty());
}

TEST(RunLevelTest, RunsCounted) {
  std::array<std::int32_t, 64> scanned{};
  scanned[0] = 5;
  scanned[4] = -3;
  const auto symbols = run_level_encode(scanned);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0].run, 0);
  EXPECT_EQ(symbols[0].level, 5);
  EXPECT_EQ(symbols[1].run, 3);
  EXPECT_EQ(symbols[1].level, -3);
}

// ---- VLC ----------------------------------------------------------------------------

TEST(VlcTest, BitIoRoundTrip) {
  BitWriter writer;
  writer.put_bits(0b1011, 4);
  writer.put_bits(0xABCD, 16);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(4), 0b1011u);
  EXPECT_EQ(reader.get_bits(16), 0xABCDu);
}

TEST(VlcTest, ExpGolombRoundTrip) {
  BitWriter writer;
  for (std::uint64_t v : {0u, 1u, 2u, 7u, 255u, 100000u}) writer.put_ue(v);
  for (std::int64_t v : {0, 1, -1, 42, -4242}) writer.put_se(v);
  BitReader reader(writer.bytes());
  for (std::uint64_t v : {0u, 1u, 2u, 7u, 255u, 100000u}) {
    EXPECT_EQ(reader.get_ue(), v);
  }
  for (std::int64_t v : {0, 1, -1, 42, -4242}) {
    EXPECT_EQ(reader.get_se(), v);
  }
}

TEST(VlcTest, SmallValuesCodeShort) {
  BitWriter a, b;
  a.put_ue(0);
  b.put_ue(1000);
  EXPECT_LT(a.bit_count(), b.bit_count());
}

TEST(VlcTest, BlockCodecRoundTrip) {
  util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    std::array<std::int32_t, 64> scanned{};
    for (auto& v : scanned) {
      v = rng.flip(0.15) ? static_cast<std::int32_t>(rng.uniform_int(-50, 50))
                         : 0;
    }
    const auto symbols = run_level_encode(scanned);
    BitWriter writer;
    encode_block(writer, symbols);
    BitReader reader(writer.bytes());
    const auto decoded = decode_block(reader);
    ASSERT_EQ(decoded.size(), symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      EXPECT_EQ(decoded[i].run, symbols[i].run);
      EXPECT_EQ(decoded[i].level, symbols[i].level);
    }
  }
}

TEST(VlcTest, MotionCodecRoundTrip) {
  BitWriter writer;
  encode_motion(writer, -3, 7);
  encode_motion(writer, 0, 0);
  BitReader reader(writer.bytes());
  std::int32_t dx = 99, dy = 99;
  decode_motion(reader, dx, dy);
  EXPECT_EQ(dx, -3);
  EXPECT_EQ(dy, 7);
  decode_motion(reader, dx, dy);
  EXPECT_EQ(dx, 0);
  EXPECT_EQ(dy, 0);
}

// ---- motion ---------------------------------------------------------------------------

TEST(MotionTest, SadZeroForIdenticalBlocks) {
  const Frame f = make_frame(32, 32, 100);
  EXPECT_EQ(block_sad(f, f, 8, 8, 0, 0, 8), 0);
}

TEST(MotionTest, FullSearchFindsKnownShift) {
  Frame ref = make_frame(64, 64, 0);
  util::Rng rng(59);
  for (auto& px : ref.luma) {
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  // Current frame = reference shifted by (+2, +1).
  Frame cur = make_frame(64, 64, 0);
  for (std::int32_t y = 0; y < 64; ++y) {
    for (std::int32_t x = 0; x < 64; ++x) {
      cur.at_mut(x, y) = ref.at(x + 2, y + 1);
    }
  }
  const MotionVector mv = full_search(cur, ref, 24, 24, 8, 4);
  EXPECT_EQ(mv.dx, 2);
  EXPECT_EQ(mv.dy, 1);
  EXPECT_EQ(mv.sad, 0);
}

TEST(MotionTest, PredictionMatchesReferenceContent) {
  Frame ref = make_frame(32, 32, 0);
  for (std::int32_t y = 0; y < 32; ++y) {
    for (std::int32_t x = 0; x < 32; ++x) {
      ref.at_mut(x, y) = static_cast<std::uint8_t>(x + y);
    }
  }
  const MotionVector mv{1, 2, 0};
  const auto pred = predict_block(ref, 4, 4, mv, 4);
  EXPECT_EQ(pred[0], ref.at(5, 6));
}

TEST(MotionTest, EdgeClampedAccess) {
  const Frame f = make_frame(8, 8, 77);
  EXPECT_EQ(f.at(-5, -5), 77);
  EXPECT_EQ(f.at(100, 3), 77);
}

// ---- functional pipeline ----------------------------------------------------------------

TEST(PipelineTest, ModelIsLiveAndValidates) {
  const PipelineConfig config;
  const SystemModel sys = make_functional_pipeline_model(config);
  EXPECT_TRUE(validate(sys).ok());
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST(PipelineTest, EncodesAndDecodesWithGoodPsnr) {
  PipelineConfig config;
  config.width = 32;
  config.height = 16;
  config.frames = 3;
  const PipelineResult result = run_functional_pipeline(config);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_EQ(result.blocks_encoded, (32 / 8) * (16 / 8) * 3);
  EXPECT_GT(result.total_bits, 0);
  EXPECT_GT(result.psnr_db, 30.0);  // near-lossless at qscale 4
}

TEST(PipelineTest, MeasuredThroughputMatchesModelPrediction) {
  PipelineConfig config;
  config.width = 32;
  config.height = 16;
  config.frames = 6;
  const PipelineResult result = run_functional_pipeline(config);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.measured_cycle_time, result.predicted_cycle_time, 1e-9);
}

TEST(PipelineTest, ReorderingDoesNotBreakFunctionality) {
  PipelineConfig config;
  config.width = 16;
  config.height = 16;
  config.frames = 2;
  config.reorder_channels = false;
  const PipelineResult plain = run_functional_pipeline(config);
  config.reorder_channels = true;
  const PipelineResult ordered = run_functional_pipeline(config);
  ASSERT_FALSE(plain.deadlocked);
  ASSERT_FALSE(ordered.deadlocked);
  // Identical data results; throughput at least as good.
  EXPECT_EQ(plain.total_bits, ordered.total_bits);
  EXPECT_NEAR(plain.psnr_db, ordered.psnr_db, 1e-9);
  EXPECT_LE(ordered.measured_cycle_time, plain.measured_cycle_time + 1e-9);
}

TEST(PipelineTest, FifoChannelsPreserveDataAndImproveThroughput) {
  PipelineConfig config;
  config.width = 16;
  config.height = 16;
  config.frames = 3;
  const PipelineResult rendezvous = run_functional_pipeline(config);
  config.fifo_capacity = 2;
  const PipelineResult buffered = run_functional_pipeline(config);
  ASSERT_FALSE(rendezvous.deadlocked);
  ASSERT_FALSE(buffered.deadlocked);
  // Same stream, same quality; throughput at least as good with buffering.
  EXPECT_EQ(buffered.total_bits, rendezvous.total_bits);
  EXPECT_NEAR(buffered.psnr_db, rendezvous.psnr_db, 1e-9);
  EXPECT_LE(buffered.measured_cycle_time,
            rendezvous.measured_cycle_time + 1e-9);
  // And the TMG still predicts the buffered pipeline exactly.
  EXPECT_NEAR(buffered.measured_cycle_time, buffered.predicted_cycle_time,
              1e-9);
}

TEST(PipelineTest, IntraMatrixTradesBitsForQuality) {
  PipelineConfig config;
  config.width = 32;
  config.height = 16;
  config.frames = 2;
  config.qscale = 2;
  const PipelineResult flat = run_functional_pipeline(config);
  config.intra_matrix = true;
  const PipelineResult intra = run_functional_pipeline(config);
  ASSERT_FALSE(flat.deadlocked);
  ASSERT_FALSE(intra.deadlocked);
  // The intra matrix quantizes high frequencies harder: fewer bits at some
  // quality cost (both streams still decode).
  EXPECT_LT(intra.total_bits, flat.total_bits);
  EXPECT_LE(intra.psnr_db, flat.psnr_db + 1e-9);
  EXPECT_GT(intra.psnr_db, 25.0);
}

}  // namespace
}  // namespace ermes::mpeg2
