#pragma once
// Hostile-input corpus for the .soc parser, shared by tests/test_io.cpp
// (direct io::parse_soc hardening) and tests/test_svc.cpp (the daemon's
// end-to-end bad_request path: every entry shipped inside an `analyze`
// request must come back as a structured error, never kill the server).
//
// Each entry is a complete .soc document that must be REJECTED: parse_soc
// returns ok == false with a non-empty error and must not crash, throw out
// of the call, or hang.

#include <cstddef>
#include <string>
#include <vector>

namespace ermes::testing {

struct BadSoc {
  const char* label;  // what the entry attacks
  const char* text;
};

inline const std::vector<BadSoc>& bad_soc_corpus() {
  static const std::vector<BadSoc> corpus = {
      {"unknown keyword", "systtem oops\n"},
      {"system without name", "system\n"},
      {"system with extra tokens", "system a b c\n"},
      {"process missing latency keyword", "process a 3\n"},
      {"process non-numeric latency", "process a latency ten\n"},
      {"process negative latency", "process a latency -4\n"},
      {"process latency overflow",
       "process a latency 99999999999999999999999999\n"},
      {"process latency above magnitude bound",
       "process a latency 9000000000000000\n"},
      {"process area inf", "process a latency 1 area inf\n"},
      {"process area nan", "process a latency 1 area nan\n"},
      {"process negative area", "process a latency 1 area -2.5\n"},
      {"process area overflow", "process a latency 1 area 1e999\n"},
      {"process trailing garbage", "process a latency 1 garbage\n"},
      {"duplicate process",
       "process a latency 1\nprocess a latency 2\n"},
      {"channel arrow missing",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a b latency 0\n"},
      {"channel unknown source",
       "process b latency 1\nchannel ab a -> b latency 0\n"},
      {"channel unknown target",
       "process a latency 1\nchannel ab a -> b latency 0\n"},
      {"channel negative latency",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency -1\n"},
      {"channel bad capacity",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity many\n"},
      {"channel negative capacity",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity -3\n"},
      {"duplicate channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\nchannel ab a -> b latency 0\n"},
      {"channel trailing garbage",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity 1 junk\n"},
      {"impl for unknown process", "impl ghost fast latency 1 area 2\n"},
      {"impl non-finite area",
       "process a latency 1\nimpl a fast latency 1 area inf\n"},
      {"impl trailing garbage",
       "process a latency 1\nimpl a fast latency 1 area 2 selected junk\n"},
      {"gets unknown process", "gets ghost\n"},
      {"gets unknown channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\ngets b ghost\n"},
      {"gets wrong channel set",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\nchannel ba b -> a latency 0\n"
       "gets b ba\n"},
      {"gets duplicated channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\ngets b ab ab\n"},
  };
  return corpus;
}

/// A deeply nested / pathological oversized document: a single token of
/// `size` bytes. Must be rejected (or cleanly parsed) without crashing.
inline std::string huge_token_soc(std::size_t size) {
  std::string soc = "process ";
  soc.append(size, 'x');
  soc += " latency 1\n";
  return soc;
}

}  // namespace ermes::testing
