#pragma once
// Hostile-input corpus for the .soc parser, shared by tests/test_io.cpp
// (direct io::parse_soc hardening) and tests/test_svc.cpp (the daemon's
// end-to-end bad_request path: every entry shipped inside an `analyze`
// request must come back as a structured error, never kill the server).
//
// Each entry is a complete .soc document that must be REJECTED: parse_soc
// returns ok == false with a non-empty error and must not crash, throw out
// of the call, or hang.

#include <cstddef>
#include <string>
#include <vector>

namespace ermes::testing {

struct BadSoc {
  const char* label;  // what the entry attacks
  const char* text;
};

inline const std::vector<BadSoc>& bad_soc_corpus() {
  static const std::vector<BadSoc> corpus = {
      {"unknown keyword", "systtem oops\n"},
      {"system without name", "system\n"},
      {"system with extra tokens", "system a b c\n"},
      {"process missing latency keyword", "process a 3\n"},
      {"process non-numeric latency", "process a latency ten\n"},
      {"process negative latency", "process a latency -4\n"},
      {"process latency overflow",
       "process a latency 99999999999999999999999999\n"},
      {"process latency above magnitude bound",
       "process a latency 9000000000000000\n"},
      {"process area inf", "process a latency 1 area inf\n"},
      {"process area nan", "process a latency 1 area nan\n"},
      {"process negative area", "process a latency 1 area -2.5\n"},
      {"process area overflow", "process a latency 1 area 1e999\n"},
      {"process trailing garbage", "process a latency 1 garbage\n"},
      {"duplicate process",
       "process a latency 1\nprocess a latency 2\n"},
      {"channel arrow missing",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a b latency 0\n"},
      {"channel unknown source",
       "process b latency 1\nchannel ab a -> b latency 0\n"},
      {"channel unknown target",
       "process a latency 1\nchannel ab a -> b latency 0\n"},
      {"channel negative latency",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency -1\n"},
      {"channel bad capacity",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity many\n"},
      {"channel negative capacity",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity -3\n"},
      {"duplicate channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\nchannel ab a -> b latency 0\n"},
      {"channel trailing garbage",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0 capacity 1 junk\n"},
      {"impl for unknown process", "impl ghost fast latency 1 area 2\n"},
      {"impl non-finite area",
       "process a latency 1\nimpl a fast latency 1 area inf\n"},
      {"impl trailing garbage",
       "process a latency 1\nimpl a fast latency 1 area 2 selected junk\n"},
      {"gets unknown process", "gets ghost\n"},
      {"gets unknown channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\ngets b ghost\n"},
      {"gets wrong channel set",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\nchannel ba b -> a latency 0\n"
       "gets b ba\n"},
      {"gets duplicated channel",
       "process a latency 1\nprocess b latency 1\n"
       "channel ab a -> b latency 0\ngets b ab ab\n"},
  };
  return corpus;
}

/// Hostile-input corpus for the *hierarchical* grammar (io::parse_soc_hier +
/// comp::flatten, i.e. the io::parse_soc_flattened entry the CLI and the
/// daemon's `hier` requests use). Same contract as bad_soc_corpus: every
/// entry must come back ok == false with a non-empty error, no crash/throw/
/// hang. Exercised by tests/test_comp.cpp directly and by tests/test_svc.cpp
/// through `open_session` requests.
inline const std::vector<BadSoc>& bad_hier_corpus() {
  static const std::vector<BadSoc> corpus = {
      {"subsystem without name", "subsystem\nend\n"},
      {"subsystem with extra tokens", "subsystem a b\nend\n"},
      {"subsystem never closed", "subsystem a\nprocess p latency 1\n"},
      {"end without subsystem", "process p latency 1\nend\n"},
      {"textually nested subsystem",
       "subsystem a\nsubsystem b\nend\nend\n"},
      {"duplicate subsystem definition",
       "subsystem a\nprocess p latency 1\nend\n"
       "subsystem a\nprocess q latency 1\nend\n"},
      {"port outside subsystem", "port in x = p\nprocess p latency 1\n"},
      {"port bad direction",
       "subsystem a\nport sideways x = p\nprocess p latency 1\nend\n"},
      {"port missing equals",
       "subsystem a\nport in x p\nprocess p latency 1\nend\n"},
      {"duplicate port",
       "subsystem a\nprocess p latency 1\n"
       "port in x = p\nport out x = p\nend\n"},
      {"port bound to unknown process",
       "subsystem a\nport in x = ghost\nend\ninstance u a\n"},
      {"endpoint with two dots",
       "subsystem a\nprocess p latency 1\nport in x = p\nend\n"
       "instance u a\ninstance v a\nprocess s latency 1\n"
       "channel c s -> u.v.x latency 0\n"},
      {"instance without subsystem name", "instance u\n"},
      {"instance of unknown subsystem", "instance u ghost\n"},
      {"duplicate instance",
       "subsystem a\nprocess p latency 1\nend\n"
       "instance u a\ninstance u a\n"},
      {"instance shadowing a process",
       "subsystem a\nprocess p latency 1\nend\n"
       "process u latency 1\ninstance u a\n"},
      {"self-instantiation cycle",
       "subsystem a\ninstance u a\nend\ninstance top a\n"},
      {"two-definition instantiation cycle",
       "subsystem a\ninstance x b\nend\n"
       "subsystem b\ninstance y a\nend\n"
       "instance top a\n"},
      {"channel to unknown instance port",
       "subsystem a\nprocess p latency 1\nport in x = p\nend\n"
       "instance u a\nprocess s latency 1\n"
       "channel c s -> u.ghost latency 0\n"},
      {"channel into an out port",
       "subsystem a\nprocess p latency 1\nport out x = p\nend\n"
       "instance u a\nprocess s latency 1\n"
       "channel c s -> u.x latency 0\n"},
      {"channel from an in port",
       "subsystem a\nprocess p latency 1\nport in x = p\nend\n"
       "instance u a\nprocess s latency 1\n"
       "channel c u.x -> s latency 0\n"},
      {"unused definition with unbound channel endpoint",
       "subsystem a\nprocess p latency 1\n"
       "channel c p -> ghost latency 0\nend\n"
       "instance u a\n"},
      {"order names a port channel",
       // `link` reaches p through the enclosing scope, so p's incident
       // channels are not all local to the definition — gets cannot bind.
       "subsystem a\nprocess p latency 1\nport in x = p\n"
       "gets p link\nend\n"
       "instance u a\nprocess s latency 1\n"
       "channel link s -> u.x latency 0\n"},
  };
  return corpus;
}

/// An instantiation chain `depth` levels deep (d0 instantiates d1
/// instantiates d2 ...). Legal below comp::kMaxHierDepth; past it flatten
/// must reject with a depth error instead of recursing unboundedly.
inline std::string deep_hier_soc(int depth) {
  std::string soc = "system deep\n";
  for (int d = 0; d < depth; ++d) {
    soc += "subsystem d" + std::to_string(d) + "\n";
    if (d + 1 < depth) {
      soc += "instance next d" + std::to_string(d + 1) + "\n";
    } else {
      soc += "process leaf latency 1\n";
    }
    soc += "end\n";
  }
  soc += "instance top d0\n";
  return soc;
}

/// A deeply nested / pathological oversized document: a single token of
/// `size` bytes. Must be rejected (or cleanly parsed) without crashing.
inline std::string huge_token_soc(std::size_t size) {
  std::string soc = "process ";
  soc.append(size, 'x');
  soc += " latency 1\n";
  return soc;
}

}  // namespace ermes::testing
