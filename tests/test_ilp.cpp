// Unit tests for the ILP substrate: simplex LP solving, 0/1 branch & bound,
// multiple-choice knapsack (ILP path vs DP cross-check).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ilp/branch_and_bound.h"
#include "ilp/mckp.h"
#include "ilp/model.h"
#include "ilp/simplex.h"
#include "util/rng.h"

namespace ermes::ilp {
namespace {

// ---- model -----------------------------------------------------------------

TEST(ModelTest, NormalizeMergesAndDropsZeros) {
  const LinearExpr expr = normalize({{1, 2.0}, {0, 1.0}, {1, 3.0}, {2, 0.0}});
  ASSERT_EQ(expr.size(), 2u);
  EXPECT_EQ(expr[0].var, 0);
  EXPECT_DOUBLE_EQ(expr[1].coeff, 5.0);
}

TEST(ModelTest, ObjectiveValue) {
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.set_objective({{x, 2.0}, {y, -1.0}}, true);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
}

TEST(ModelTest, FeasibilityCheck) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint({{x, 1.0}}, Sense::kLe, 0.5, "cap");
  EXPECT_TRUE(m.is_feasible({0.0}));
  EXPECT_FALSE(m.is_feasible({1.0}));   // violates cap
  EXPECT_FALSE(m.is_feasible({0.5}));   // violates integrality
}

// ---- simplex ----------------------------------------------------------------

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, Sense::kLe, 6.0);
  m.set_objective({{x, 3.0}, {y, 2.0}}, true);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 12.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-7);
}

TEST(SimplexTest, Minimization) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2).
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Sense::kGe, 4.0);
  m.add_constraint({{x, 3.0}, {y, 1.0}}, Sense::kGe, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}}, false);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.8, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0);
  m.set_objective({{x, 1.0}}, true);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 5.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::kGe, 20.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Model m;
  const VarId x = m.add_continuous("x");
  m.set_objective({{x, 1.0}}, true);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, VariableBoundsRespected) {
  Model m;
  const VarId x = m.add_continuous("x", 1.0, 3.0);
  m.set_objective({{x, 1.0}}, true);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 3.0, 1e-7);
}

TEST(SimplexTest, LowerBoundShiftCorrect) {
  // min x with lo = -5: answer -5 (negative bounds shift correctly).
  Model m;
  const VarId x = m.add_continuous("x", -5.0, 5.0);
  m.set_objective({{x, 1.0}}, false);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], -5.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // x - y <= -1 with max x, x,y in [0,10] -> x = 9 when y = 10.
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 10.0);
  const VarId y = m.add_continuous("y", 0.0, 10.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Sense::kLe, -1.0);
  m.set_objective({{x, 1.0}}, true);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 9.0, 1e-7);
}

TEST(SimplexTest, BoundOverridesApplied) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 10.0);
  m.set_objective({{x, 1.0}}, true);
  const Solution sol = solve_lp(m, {0.0}, {2.5});
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 2.5, 1e-7);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy);
  // Bland's rule must avoid cycling.
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Sense::kLe, 2.0);
  m.add_constraint({{x, 1.0}}, Sense::kLe, 1.0);
  m.set_objective({{x, 1.0}, {y, 1.0}}, true);
  const Solution sol = solve_lp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

// ---- branch and bound --------------------------------------------------------

TEST(BnbTest, IntegerKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> a + b = 16.
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLe, 2.0);
  m.set_objective({{a, 10.0}, {b, 6.0}, {c, 4.0}}, true);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 16.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 1.0, 1e-7);
}

TEST(BnbTest, FractionalLpForcedIntegral) {
  // LP relaxation of: max x + y, x + y <= 1.5 (binaries) is 1.5; ILP = 1.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.5);
  m.set_objective({{x, 1.0}, {y, 1.0}}, true);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(BnbTest, InfeasibleIlp) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint({{x, 1.0}}, Sense::kGe, 2.0);
  EXPECT_EQ(solve_ilp(m).status, SolveStatus::kInfeasible);
}

TEST(BnbTest, GeneralIntegerVariable) {
  // max x s.t. 2x <= 7, x integer in [0, 10] -> 3.
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  m.add_constraint({{x, 2.0}}, Sense::kLe, 7.0);
  m.set_objective({{x, 1.0}}, true);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 3.0, 1e-7);
}

TEST(BnbTest, MixedIntegerContinuous) {
  // max 2x + y, x binary, y <= 1.5 continuous, x + y <= 2 -> x=1, y=1.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_continuous("y", 0.0, 1.5);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0);
  m.set_objective({{x, 2.0}, {y, 1.0}}, true);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(BnbTest, MinimizationDirection) {
  // min x + y s.t. x + y >= 1, binaries -> 1.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGe, 1.0);
  m.set_objective({{x, 1.0}, {y, 1.0}}, false);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(BnbTest, SolutionIsFeasible) {
  Model m;
  std::vector<VarId> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(m.add_binary("x"));
  LinearExpr cap;
  LinearExpr obj;
  const double w[] = {3, 5, 7, 2, 4, 6};
  const double v[] = {4, 6, 9, 2, 5, 7};
  for (int i = 0; i < 6; ++i) {
    cap.push_back({vars[static_cast<std::size_t>(i)], w[i]});
    obj.push_back({vars[static_cast<std::size_t>(i)], v[i]});
  }
  m.add_constraint(cap, Sense::kLe, 12.0);
  m.set_objective(obj, true);
  const Solution sol = solve_ilp(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_TRUE(m.is_feasible(sol.values));
  EXPECT_NEAR(sol.objective, 15.0, 1e-7);  // {5,7} w=12 v=15
}

// ---- MCKP ---------------------------------------------------------------------

MckpProblem small_mckp() {
  MckpProblem problem;
  problem.groups = {
      {{5.0, 3.0}, {8.0, 6.0}},            // group 0
      {{4.0, 2.0}, {9.0, 7.0}, {1.0, 1.0}}  // group 1
  };
  problem.capacity = 8.0;
  return problem;
}

TEST(MckpTest, IlpSolvesSmallInstance) {
  const MckpSolution sol = solve_mckp(small_mckp());
  ASSERT_TRUE(sol.feasible);
  // Best: group0 item0 (5,3) + group1 item1? 3+7=10 > 8. So (5,3)+(4,2)=9/5
  // or (8,6)+(4,2)=12 w 8 <= 8 -> value 12.
  EXPECT_NEAR(sol.value, 12.0, 1e-9);
  EXPECT_EQ(sol.choice[0], 1u);
  EXPECT_EQ(sol.choice[1], 0u);
}

TEST(MckpTest, DpMatchesIlp) {
  const MckpSolution ilp = solve_mckp(small_mckp());
  const MckpSolution dp = solve_mckp_dp(small_mckp());
  ASSERT_TRUE(dp.feasible);
  EXPECT_NEAR(dp.value, ilp.value, 1e-9);
}

TEST(MckpTest, InfeasibleWhenCapacityTooSmall) {
  MckpProblem problem;
  problem.groups = {{{1.0, 5.0}}};
  problem.capacity = 3.0;
  EXPECT_FALSE(solve_mckp(problem).feasible);
  EXPECT_FALSE(solve_mckp_dp(problem).feasible);
}

TEST(MckpTest, NegativeWeightsHandled) {
  // Choosing a negative-weight item frees budget for another group.
  MckpProblem problem;
  problem.groups = {
      {{0.0, 0.0}, {3.0, -4.0}},  // item 1 frees 4 units
      {{0.0, 0.0}, {5.0, 4.0}},
  };
  problem.capacity = 0.0;
  const MckpSolution ilp = solve_mckp(problem);
  const MckpSolution dp = solve_mckp_dp(problem);
  ASSERT_TRUE(ilp.feasible);
  ASSERT_TRUE(dp.feasible);
  EXPECT_NEAR(ilp.value, 8.0, 1e-9);
  EXPECT_NEAR(dp.value, 8.0, 1e-9);
}

TEST(MckpTest, RandomInstancesIlpEqualsDp) {
  util::Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    MckpProblem problem;
    const auto groups = rng.uniform_int(1, 5);
    for (std::int64_t g = 0; g < groups; ++g) {
      std::vector<MckpItem> group;
      const auto items = rng.uniform_int(1, 4);
      for (std::int64_t i = 0; i < items; ++i) {
        group.push_back(MckpItem{
            static_cast<double>(rng.uniform_int(0, 20)),
            static_cast<double>(rng.uniform_int(-5, 10))});
      }
      problem.groups.push_back(std::move(group));
    }
    problem.capacity = static_cast<double>(rng.uniform_int(-3, 25));
    const MckpSolution ilp = solve_mckp(problem);
    const MckpSolution dp = solve_mckp_dp(problem);
    ASSERT_EQ(ilp.feasible, dp.feasible) << "trial " << trial;
    if (ilp.feasible) {
      EXPECT_NEAR(ilp.value, dp.value, 1e-6) << "trial " << trial;
      EXPECT_LE(ilp.weight, problem.capacity + 1e-9);
    }
  }
}

TEST(MckpTest, ChoiceIndicesConsistentWithTotals) {
  const MckpSolution sol = solve_mckp(small_mckp());
  const MckpProblem problem = small_mckp();
  double value = 0.0, weight = 0.0;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    value += problem.groups[g][sol.choice[g]].value;
    weight += problem.groups[g][sol.choice[g]].weight;
  }
  EXPECT_NEAR(value, sol.value, 1e-9);
  EXPECT_NEAR(weight, sol.weight, 1e-9);
}

// ---- randomized cross-validation -----------------------------------------------

// Exhaustive 0/1 enumeration oracle for small random ILPs.
double brute_force_best(const Model& m) {
  const int n = m.num_vars();
  double best = -std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      x[static_cast<std::size_t>(v)] = (mask >> v) & 1;
    }
    if (!m.is_feasible(x)) continue;
    const double value = m.objective_value(x);
    const double signed_value = m.maximize() ? value : -value;
    if (signed_value > best) best = signed_value;
  }
  return m.maximize() ? best : -best;
}

TEST(BnbPropertyTest, MatchesExhaustiveOnRandomBinaryIlps) {
  util::Rng rng(71);
  int solved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    std::vector<VarId> vars;
    for (int v = 0; v < n; ++v) vars.push_back(m.add_binary("x"));
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rows; ++r) {
      LinearExpr expr;
      for (VarId v : vars) {
        const double coeff = static_cast<double>(rng.uniform_int(-4, 6));
        if (coeff != 0.0) expr.push_back({v, coeff});
      }
      const Sense sense = rng.flip() ? Sense::kLe : Sense::kGe;
      m.add_constraint(std::move(expr), sense,
                       static_cast<double>(rng.uniform_int(-3, 12)));
    }
    LinearExpr objective;
    for (VarId v : vars) {
      objective.push_back({v, static_cast<double>(rng.uniform_int(-5, 9))});
    }
    m.set_objective(std::move(objective), rng.flip());

    const Solution sol = solve_ilp(m);
    const double oracle = brute_force_best(m);
    const bool oracle_feasible = std::isfinite(oracle);
    ASSERT_EQ(sol.optimal(), oracle_feasible) << "trial " << trial;
    if (sol.optimal()) {
      EXPECT_NEAR(sol.objective, oracle, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(sol.values)) << "trial " << trial;
      ++solved;
    }
  }
  EXPECT_GT(solved, 10);  // the corpus must contain real instances
}

TEST(SimplexPropertyTest, RelaxationBoundsTheIlp) {
  util::Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    LinearExpr cap, objective;
    for (int v = 0; v < n; ++v) {
      const VarId var = m.add_binary("x");
      cap.push_back({var, static_cast<double>(rng.uniform_int(1, 9))});
      objective.push_back({var, static_cast<double>(rng.uniform_int(1, 9))});
    }
    m.add_constraint(std::move(cap), Sense::kLe,
                     static_cast<double>(rng.uniform_int(3, 25)));
    m.set_objective(std::move(objective), true);
    const Solution lp = solve_lp(m);
    const Solution ilp = solve_ilp(m);
    ASSERT_TRUE(lp.optimal());
    ASSERT_TRUE(ilp.optimal());
    EXPECT_GE(lp.objective + 1e-7, ilp.objective) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ermes::ilp
