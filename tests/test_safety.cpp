// Direct unit tests for the safety/refinement layers around Algorithm 1:
// the liveness repair pass, the feedback-safe ordering variant, the
// hill-climb local search, and the steady-state period estimator they all
// lean on.

#include <gtest/gtest.h>

#include <limits>

#include "analysis/performance.h"
#include "ordering/baselines.h"
#include "ordering/channel_ordering.h"
#include "ordering/local_search.h"
#include "ordering/repair.h"
#include "synth/generator.h"
#include "sysmodel/builder.h"
#include "util/period.h"
#include "util/rng.h"

namespace ermes {
namespace {

using sysmodel::ProcessId;
using sysmodel::SystemModel;

double cost(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time
                     : std::numeric_limits<double>::infinity();
}

// ---- period estimation ---------------------------------------------------------

TEST(PeriodTest, ExactOnUniformSpacing) {
  std::vector<std::int64_t> times;
  for (int k = 0; k < 40; ++k) times.push_back(7 * k);
  EXPECT_DOUBLE_EQ(util::estimate_period(times), 7.0);
}

TEST(PeriodTest, ExactOnAlternatingPattern) {
  // Period-2 firing pattern: gaps 3, 5, 3, 5, ... -> average 4.
  std::vector<std::int64_t> times{0};
  for (int k = 0; k < 40; ++k) {
    times.push_back(times.back() + (k % 2 == 0 ? 3 : 5));
  }
  EXPECT_DOUBLE_EQ(util::estimate_period(times), 4.0);
}

TEST(PeriodTest, IgnoresTransient) {
  // Irregular head, periodic tail.
  std::vector<std::int64_t> times{0, 1, 9, 10, 37};
  for (int k = 0; k < 60; ++k) times.push_back(times.back() + 11);
  EXPECT_DOUBLE_EQ(util::estimate_period(times), 11.0);
}

TEST(PeriodTest, TooFewSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(util::estimate_period({1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(util::estimate_period({}), 0.0);
}

TEST(PeriodTest, FallsBackOnAperiodicTail) {
  util::Rng rng(5);
  std::vector<std::int64_t> times{0};
  for (int k = 0; k < 50; ++k) {
    times.push_back(times.back() + rng.uniform_int(1, 9));
  }
  const double estimate = util::estimate_period(times);
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 10.0);
}

// ---- repair ---------------------------------------------------------------------

TEST(RepairTest, NoOpOnLiveSystem) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const ordering::RepairResult result = ordering::ensure_live(sys);
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.random_restarts, 0);
}

TEST(RepairTest, FixesMotivatingDeadlock) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const ordering::RepairResult result = ordering::ensure_live(sys);
  EXPECT_TRUE(result.live);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST(RepairTest, FixesRandomDeadlocksAcrossSeeds) {
  int deadlocked = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    synth::GeneratorConfig config;
    config.num_processes = 24;
    config.num_channels = 40;
    config.feedback_fraction = 0.25;
    config.seed = seed;
    SystemModel sys = synth::generate_soc(config);
    util::Rng rng(seed * 13);
    ordering::apply_random_ordering(sys, rng);
    if (analysis::analyze_system(sys).live) continue;
    ++deadlocked;
    const ordering::RepairResult result = ordering::ensure_live(sys);
    EXPECT_TRUE(result.live) << "seed " << seed;
  }
  EXPECT_GT(deadlocked, 0);  // the corpus must actually exercise repair
}

// ---- feedback-safe variant ---------------------------------------------------------

TEST(FeedbackSafeTest, MatchesDefaultOnDags) {
  // Without feedback arcs the variant must coincide with Algorithm 1.
  synth::GeneratorConfig config;
  config.num_processes = 20;
  config.num_channels = 34;
  config.feedback_fraction = 0.0;
  config.seed = 3;
  const SystemModel sys = synth::generate_soc(config);
  const auto a = ordering::channel_ordering(sys);
  const auto b = ordering::channel_ordering_feedback_safe(sys);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    EXPECT_EQ(a.input_order[static_cast<std::size_t>(p)],
              b.input_order[static_cast<std::size_t>(p)]);
    EXPECT_EQ(a.output_order[static_cast<std::size_t>(p)],
              b.output_order[static_cast<std::size_t>(p)]);
  }
}

TEST(FeedbackSafeTest, PrimedGetsComeFirst) {
  SystemModel sys;
  const auto src = sys.add_process("src", 1);
  const auto a = sys.add_process("a", 1);
  const auto fb = sys.add_process("fb", 1);
  const auto snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, a, 5);
  sys.add_channel("af", a, fb, 1);
  sys.add_channel("fa", fb, a, 1);  // primed-source feedback into a
  sys.add_channel("out", a, snk, 1);
  sys.set_primed(fb, true);
  const auto result = ordering::channel_ordering_feedback_safe(sys);
  // a's gets: the feedback input (from the primed fb) first.
  EXPECT_EQ(sys.channel_name(result.input_order[static_cast<std::size_t>(a)][0]),
            "fa");
}

TEST(FeedbackSafeTest, LiveAcrossFeedbackHeavyCorpus) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    synth::GeneratorConfig config;
    config.num_processes = 40;
    config.num_channels = 72;
    config.feedback_fraction = 0.35;
    config.seed = seed * 3;
    SystemModel sys = synth::generate_soc(config);
    util::Rng rng(seed);
    ordering::apply_random_ordering(sys, rng);
    ordering::apply_ordering(sys,
                             ordering::channel_ordering_feedback_safe(sys));
    EXPECT_TRUE(analysis::analyze_system(sys).live) << "seed " << seed;
  }
}

// ---- local search ------------------------------------------------------------------

TEST(LocalSearchTest, NeverWorsensAndReportsCounts) {
  synth::GeneratorConfig config;
  config.num_processes = 12;
  config.num_channels = 20;
  config.seed = 11;
  SystemModel sys =
      ordering::with_optimal_ordering(synth::generate_soc(config));
  const double before = cost(sys);
  const ordering::LocalSearchResult result =
      ordering::hill_climb_ordering(sys);
  EXPECT_DOUBLE_EQ(result.initial_cycle_time, before);
  EXPECT_LE(result.final_cycle_time, before);
  EXPECT_GE(result.evaluations, 1);
  EXPECT_DOUBLE_EQ(cost(sys), result.final_cycle_time);
}

TEST(LocalSearchTest, RefusesDeadSystems) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const ordering::LocalSearchResult result =
      ordering::hill_climb_ordering(sys);
  EXPECT_EQ(result.accepted_moves, 0);
  EXPECT_EQ(result.final_cycle_time,
            std::numeric_limits<double>::infinity());
}

TEST(LocalSearchTest, StaysLiveWhileImproving) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    synth::GeneratorConfig config;
    config.num_processes = 14;
    config.num_channels = 24;
    config.feedback_fraction = 0.2;
    config.seed = seed;
    SystemModel sys =
        ordering::with_optimal_ordering(synth::generate_soc(config));
    ordering::hill_climb_ordering(sys, 3);
    EXPECT_TRUE(analysis::analyze_system(sys).live) << "seed " << seed;
  }
}

TEST(LocalSearchTest, FindsKnownImprovementOnSuboptimalOrder) {
  // The motivating example's suboptimal order (CT 20) has the optimum (12)
  // within a few adjacent swaps.
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"f", "b", "d"}, {"e", "g", "d"});
  const ordering::LocalSearchResult result =
      ordering::hill_climb_ordering(sys);
  EXPECT_DOUBLE_EQ(result.initial_cycle_time, 20.0);
  EXPECT_DOUBLE_EQ(result.final_cycle_time, 12.0);
}

}  // namespace
}  // namespace ermes
