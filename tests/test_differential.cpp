// Randomized differential testing of every TMG analysis path.
//
// A generator builds random strongly connected timed marked graphs (a
// permutation-cycle backbone guarantees strong connectivity; extra arcs add
// cycle structure), then independent oracles must agree on every instance:
//
//  D1. Unit-token graphs: Howard's policy iteration == Karp's cycle mean ==
//      brute-force cycle enumeration (on unit-token graphs the maximum cycle
//      ratio *is* the maximum cycle mean), exactly as rationals and within
//      1e-9 as doubles.
//  D2. General markings: Howard == Lawler's binary search == brute force,
//      including agreement on infinite ratios (zero-token cycles).
//  D3. Every solver's reported critical cycle reproduces its claimed ratio.
//  D4. The structural liveness check (token-free cycle search) agrees with
//      actually playing the token game: a strongly connected TMG with a dead
//      cycle deadlocks after finitely many firings, a live one never does.
//  D5. The CSR solver core (tmg/csr.h) is bit-identical to the legacy
//      Howard path — same rationals, same critical cycle, same double bits —
//      whether prepared from the RatioGraph or the MarkedGraph, cold or
//      after any sequence of warm weight-only re-prepares.
//  D6. One CycleMeanSolver reused across differently-shaped graphs (its
//      workspaces only ever grow) never contaminates a later solve.
//  D7. solve_seeded() reaches the exact same maximum ratio as the canonical
//      solve (compare_ratios == 0) and its witness reproduces that ratio.
//  D8. A cold solve_batch over random weight scenarios is bit-identical to
//      installing each scenario and calling solve() in order, including the
//      weights the solver is left holding afterwards.
//  D9. Warm mutation streams that interleave solve() and solve_batch() on
//      one solver never diverge from a serial reference solver.
// D10. One solver batching across differently-shaped graphs (workspaces,
//      staging, and memo state reused) stays bit-identical per structure.
//
// Failures shrink the offending instance (dropping extra arcs, zeroing
// delays, trimming tokens) while the disagreement persists, then print the
// seed and a compact reconstruction of the minimized graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "tmg/brute_force.h"
#include "tmg/csr.h"
#include "tmg/cycle_ratio.h"
#include "tmg/howard.h"
#include "tmg/karp.h"
#include "tmg/liveness.h"
#include "tmg/marked_graph.h"
#include "tmg/token_game.h"
#include "util/rng.h"

namespace ermes::tmg {
namespace {

constexpr std::uint64_t kBaseSeed = 0xd1ffe7e57ULL;

// A value-type recipe for a random TMG, kept separate from MarkedGraph so
// the shrinker can edit and rebuild it.
struct TmgSpec {
  std::vector<std::int64_t> delays;  // one per transition
  std::vector<int> backbone;         // permutation cycle (strong connectivity)
  std::vector<std::int64_t> backbone_tokens;
  struct Arc {
    int src = 0;
    int dst = 0;
    std::int64_t tokens = 0;
  };
  std::vector<Arc> extras;

  int num_transitions() const { return static_cast<int>(delays.size()); }

  MarkedGraph build() const {
    MarkedGraph g;
    for (std::size_t t = 0; t < delays.size(); ++t) {
      g.add_transition("t" + std::to_string(t), delays[t]);
    }
    for (std::size_t i = 0; i < backbone.size(); ++i) {
      g.add_place(backbone[i], backbone[(i + 1) % backbone.size()],
                  backbone_tokens[i]);
    }
    for (const Arc& arc : extras) {
      g.add_place(arc.src, arc.dst, arc.tokens);
    }
    return g;
  }
};

TmgSpec random_spec(util::Rng& rng, bool unit_tokens) {
  TmgSpec spec;
  const int n = static_cast<int>(rng.uniform_int(3, 10));
  spec.delays.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    spec.delays.push_back(rng.uniform_int(0, 20));
  }
  for (std::size_t i : rng.permutation(static_cast<std::size_t>(n))) {
    spec.backbone.push_back(static_cast<int>(i));
    spec.backbone_tokens.push_back(unit_tokens ? 1 : rng.uniform_int(0, 2));
  }
  const std::int64_t extra = rng.uniform_int(0, 2 * n);
  for (std::int64_t e = 0; e < extra; ++e) {
    TmgSpec::Arc arc;
    arc.src = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    arc.dst = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    arc.tokens = unit_tokens ? 1 : rng.uniform_int(0, 2);
    spec.extras.push_back(arc);
  }
  return spec;
}

std::string describe(const TmgSpec& spec) {
  std::ostringstream os;
  os << "transitions (delay):";
  for (std::size_t t = 0; t < spec.delays.size(); ++t) {
    os << " t" << t << "(" << spec.delays[t] << ")";
  }
  os << "\nbackbone:";
  for (std::size_t i = 0; i < spec.backbone.size(); ++i) {
    os << " " << spec.backbone[i] << "->"
       << spec.backbone[(i + 1) % spec.backbone.size()] << "["
       << spec.backbone_tokens[i] << "]";
  }
  os << "\nextras:";
  for (const TmgSpec::Arc& arc : spec.extras) {
    os << " " << arc.src << "->" << arc.dst << "[" << arc.tokens << "]";
  }
  return os.str();
}

// Greedy shrink: keep any edit under which the failure persists, until no
// edit helps. Edits: drop an extra arc, zero a delay, drop a token.
using FailurePredicate = std::function<bool(const TmgSpec&)>;

TmgSpec shrink(TmgSpec spec, const FailurePredicate& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < spec.extras.size(); ++i) {
      TmgSpec cand = spec;
      cand.extras.erase(cand.extras.begin() +
                        static_cast<std::ptrdiff_t>(i));
      if (fails(cand)) {
        spec = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t t = 0; t < spec.delays.size(); ++t) {
      if (spec.delays[t] == 0) continue;
      TmgSpec cand = spec;
      cand.delays[t] = 0;
      if (fails(cand)) {
        spec = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < spec.backbone_tokens.size(); ++i) {
      if (spec.backbone_tokens[i] <= 1) continue;
      TmgSpec cand = spec;
      cand.backbone_tokens[i] -= 1;
      if (fails(cand)) {
        spec = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  return spec;
}

void report_failure(std::uint64_t seed, const TmgSpec& original,
                    const FailurePredicate& fails, const char* what) {
  const TmgSpec minimal = shrink(original, fails);
  ADD_FAILURE() << what << " (shard seed " << seed << ")\n"
                << "minimized instance:\n"
                << describe(minimal);
}

// Ratio of the cycle claimed by a result, recomputed from its arcs.
bool critical_cycle_consistent(const RatioGraph& rg,
                               const CycleRatioResult& result) {
  if (!result.has_cycle || result.is_infinite()) return true;
  if (result.critical_cycle.empty()) return false;
  std::int64_t w = 0, t = 0;
  for (graph::ArcId a : result.critical_cycle) {
    w += rg.arc_weight(a);
    t += rg.arc_tokens(a);
  }
  return t > 0 && compare_ratios(w, t, result.ratio_num, result.ratio_den) == 0;
}

bool results_agree(const CycleRatioResult& a, const CycleRatioResult& b) {
  if (a.has_cycle != b.has_cycle) return false;
  if (!a.has_cycle) return true;
  if (a.is_infinite() || b.is_infinite()) {
    return a.is_infinite() == b.is_infinite();
  }
  return compare_ratios(a.ratio_num, a.ratio_den, b.ratio_num, b.ratio_den) ==
             0 &&
         std::abs(a.ratio - b.ratio) <= 1e-9;
}

// --- D1 + D3 (unit tokens) --------------------------------------------------

bool unit_token_solvers_disagree(const TmgSpec& spec) {
  const MarkedGraph g = spec.build();
  const RatioGraph rg = to_ratio_graph(g);
  const CycleRatioResult howard = max_cycle_ratio_howard(rg);
  const CycleRatioResult karp = max_cycle_mean_karp(rg);
  const CycleRatioResult brute = max_cycle_ratio_brute_force(rg);
  // Every unit-token arc carries one token, so ratio denominators equal arc
  // counts and the max cycle ratio equals Karp's max cycle mean.
  return !results_agree(howard, brute) || !results_agree(karp, brute) ||
         !critical_cycle_consistent(rg, howard) ||
         !critical_cycle_consistent(rg, karp) ||
         !critical_cycle_consistent(rg, brute);
}

TEST(DifferentialCycleRatio, UnitTokensHowardKarpBruteForceAgree) {
  for (std::uint64_t shard = 0; shard < 120; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/true);
    if (unit_token_solvers_disagree(spec)) {
      report_failure(shard, spec, unit_token_solvers_disagree,
                     "Howard/Karp/brute-force disagree on a unit-token TMG");
      return;
    }
  }
}

// --- D2 + D3 (general markings) ---------------------------------------------

bool general_token_solvers_disagree(const TmgSpec& spec) {
  const MarkedGraph g = spec.build();
  const RatioGraph rg = to_ratio_graph(g);
  const CycleRatioResult howard = max_cycle_ratio_howard(rg);
  const CycleRatioResult lawler = max_cycle_ratio_lawler(rg);
  const CycleRatioResult brute = max_cycle_ratio_brute_force(rg);
  return !results_agree(howard, brute) || !results_agree(lawler, brute) ||
         !critical_cycle_consistent(rg, howard) ||
         !critical_cycle_consistent(rg, lawler) ||
         !critical_cycle_consistent(rg, brute);
}

TEST(DifferentialCycleRatio, GeneralMarkingsHowardLawlerBruteForceAgree) {
  for (std::uint64_t shard = 0; shard < 120; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0xa5a5a5a5ULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/false);
    if (general_token_solvers_disagree(spec)) {
      report_failure(shard, spec, general_token_solvers_disagree,
                     "Howard/Lawler/brute-force disagree on a general TMG");
      return;
    }
  }
}

// --- D4 (liveness vs token game) --------------------------------------------

// Round-robin fair play. Marked graphs are conflict-free (every place has
// one consumer), so firing one enabled transition never disables another;
// a strongly connected TMG with a token-free cycle starves every transition
// after finitely many firings (tokens on any path out of the dead cycle are
// never replenished), while a live one runs forever.
bool token_game_deadlocks(const MarkedGraph& g, std::int64_t max_firings) {
  TokenGame game(g);
  std::int64_t fired = 0;
  while (fired < max_firings) {
    const std::vector<TransitionId> enabled = game.enabled();
    if (enabled.empty()) return true;
    for (TransitionId t : enabled) {
      game.fire(t);
      ++fired;
    }
  }
  return false;
}

bool liveness_disagrees_with_token_game(const TmgSpec& spec) {
  const MarkedGraph g = spec.build();
  const LivenessResult liveness = check_liveness(g);
  // Firings before deadlock are bounded by (#transitions x total tokens);
  // the corpus tops out near 10 x ~60, so 20000 is far beyond the bound.
  const bool deadlocked = token_game_deadlocks(g, 20'000);
  if (liveness.live == deadlocked) return true;
  if (!liveness.live) {
    // The witness must be a real token-free cycle.
    if (liveness.dead_cycle.empty()) return true;
    for (std::size_t i = 0; i < liveness.dead_cycle.size(); ++i) {
      const PlaceId p = liveness.dead_cycle[i];
      const PlaceId q =
          liveness.dead_cycle[(i + 1) % liveness.dead_cycle.size()];
      if (g.tokens(p) != 0 || g.consumer(p) != g.producer(q)) return true;
    }
  }
  return false;
}

TEST(DifferentialLiveness, StructuralCheckAgreesWithTokenGame) {
  for (std::uint64_t shard = 0; shard < 120; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0x11feULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/false);
    if (liveness_disagrees_with_token_game(spec)) {
      report_failure(shard, spec, liveness_disagrees_with_token_game,
                     "liveness check disagrees with the token game");
      return;
    }
  }
}

// --- D5 (CSR solver core, cold + warm) ---------------------------------------

bool bits_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// Stricter than results_agree: the determinism contract of tmg/csr.h
// promises the same rationals, the same critical cycle, and the same raw
// double — not just agreement up to ties and epsilon.
bool results_bit_identical(const CycleRatioResult& a,
                           const CycleRatioResult& b) {
  return a.has_cycle == b.has_cycle && bits_equal(a.ratio, b.ratio) &&
         a.ratio_num == b.ratio_num && a.ratio_den == b.ratio_den &&
         a.critical_cycle == b.critical_cycle;
}

bool csr_cold_diverges(const TmgSpec& spec) {
  const MarkedGraph g = spec.build();
  const RatioGraph rg = to_ratio_graph(g);
  const CycleRatioResult legacy = max_cycle_ratio_howard(rg);
  CycleMeanSolver from_rg;
  from_rg.prepare(rg);
  if (!results_bit_identical(from_rg.solve(), legacy)) return true;
  // The MarkedGraph compile must mirror to_ratio_graph exactly.
  CycleMeanSolver from_tmg;
  from_tmg.prepare(g);
  if (!results_bit_identical(from_tmg.solve(), legacy)) return true;
  // Re-solving on the already-used workspaces must not drift.
  return !results_bit_identical(from_tmg.solve(), legacy);
}

TEST(DifferentialCsrSolver, ColdSolveBitIdenticalToHoward) {
  for (std::uint64_t shard = 0; shard < 120; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0xc5cULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    if (csr_cold_diverges(spec)) {
      report_failure(shard, spec, csr_cold_diverges,
                     "CSR solve is not bit-identical to legacy Howard");
      return;
    }
  }
}

bool csr_warm_mutations_diverge(const TmgSpec& spec) {
  MarkedGraph g = spec.build();
  CycleMeanSolver solver;
  solver.prepare(g);
  // Deterministic per spec shape, so the shrinker can replay it.
  util::Rng rng(kBaseSeed ^ 0x3a7bULL ^
                (static_cast<std::uint64_t>(spec.delays.size()) * 131));
  for (int s = 0; s < 24; ++s) {
    const auto t =
        static_cast<TransitionId>(rng.index(spec.delays.size()));
    g.set_delay(t, rng.uniform_int(0, 20));
    if (!solver.prepare(g)) return true;  // must stay warm: weights only
    const CycleRatioResult legacy = max_cycle_ratio_howard(to_ratio_graph(g));
    if (!results_bit_identical(solver.solve(), legacy)) return true;
  }
  return false;
}

TEST(DifferentialCsrSolver, WarmWeightMutationsStayBitIdentical) {
  for (std::uint64_t shard = 0; shard < 60; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0x3a7bULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    if (csr_warm_mutations_diverge(spec)) {
      report_failure(shard, spec, csr_warm_mutations_diverge,
                     "warm CSR re-solve diverged from cold legacy Howard");
      return;
    }
  }
}

// --- D6 (one solver across differently-sized graphs) -------------------------

TEST(DifferentialCsrSolver, SolverReusedAcrossGraphsStaysBitIdentical) {
  // One solver absorbs a stream of unrelated graphs; its workspaces only
  // grow, so a large graph followed by a small one exercises stale tails.
  CycleMeanSolver solver;
  for (std::uint64_t shard = 0; shard < 60; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0x5eedULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    const MarkedGraph g = spec.build();
    const CycleRatioResult legacy =
        max_cycle_ratio_howard(to_ratio_graph(g));
    solver.prepare(g);
    if (!results_bit_identical(solver.solve(), legacy)) {
      const auto fails = [&](const TmgSpec& cand) {
        // Re-create the cross-graph state: a fresh solver first sized by the
        // *previous* shard's graph, then fed the candidate.
        CycleMeanSolver s2;
        if (shard > 0) {
          util::Rng prev_rng = util::Rng::for_shard(kBaseSeed ^ 0x5eedULL,
                                                    shard - 1);
          s2.solve(random_spec(prev_rng, (shard - 1) % 2 == 0).build());
        }
        const MarkedGraph cg = cand.build();
        return !results_bit_identical(
            s2.solve(cg), max_cycle_ratio_howard(to_ratio_graph(cg)));
      };
      report_failure(shard, spec, fails,
                     "reused solver diverged after a differently-sized graph");
      return;
    }
  }
}

// --- D7 (seeded warm start: exact ratio, self-consistent witness) ------------

bool csr_seeded_diverges(const TmgSpec& spec) {
  MarkedGraph g = spec.build();
  CycleMeanSolver solver;
  solver.prepare(g);
  solver.solve();  // establish a previous optimal policy
  util::Rng rng(kBaseSeed ^ 0x5eedeULL ^
                (static_cast<std::uint64_t>(spec.delays.size()) * 137));
  for (int s = 0; s < 16; ++s) {
    const auto t =
        static_cast<TransitionId>(rng.index(spec.delays.size()));
    g.set_delay(t, rng.uniform_int(0, 20));
    solver.prepare(g);
    const CycleRatioResult seeded = solver.solve_seeded();
    const RatioGraph rg = to_ratio_graph(g);
    const CycleRatioResult legacy = max_cycle_ratio_howard(rg);
    if (seeded.has_cycle != legacy.has_cycle) return true;
    if (!seeded.has_cycle) continue;
    if (seeded.is_infinite() != legacy.is_infinite()) return true;
    if (seeded.is_infinite()) continue;
    // Exact same maximum ratio, and a witness that actually attains it.
    if (compare_ratios(seeded.ratio_num, seeded.ratio_den, legacy.ratio_num,
                       legacy.ratio_den) != 0) {
      return true;
    }
    if (!critical_cycle_consistent(rg, seeded)) return true;
  }
  return false;
}

TEST(DifferentialCsrSolver, SeededSolveReachesExactRatio) {
  for (std::uint64_t shard = 0; shard < 60; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0x5eedeULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    if (csr_seeded_diverges(spec)) {
      report_failure(shard, spec, csr_seeded_diverges,
                     "seeded CSR solve missed the exact maximum ratio");
      return;
    }
  }
}

// --- D8 (cold batch vs serial solves) ----------------------------------------

// Random arc-indexed scenarios; a deliberate duplicate exercises the
// slice-replay memo on every instance.
std::vector<WeightVector> random_scenarios(util::Rng& rng, std::size_t k,
                                           std::size_t num_arcs) {
  std::vector<WeightVector> scenarios(k, WeightVector(num_arcs));
  for (WeightVector& w : scenarios) {
    for (std::int64_t& x : w) x = rng.uniform_int(0, 20);
  }
  if (k >= 2) scenarios.back() = scenarios.front();
  return scenarios;
}

bool serial_reference_disagrees(CycleMeanSolver& serial,
                                const std::vector<WeightVector>& scenarios,
                                const std::vector<BatchSolveReport>& reports) {
  const auto m = static_cast<std::size_t>(serial.csr().num_arcs);
  for (std::size_t j = 0; j < scenarios.size(); ++j) {
    for (std::size_t a = 0; a < m; ++a) {
      serial.set_arc_weight(static_cast<graph::ArcId>(a), scenarios[j][a]);
    }
    if (!results_bit_identical(reports[j].result, serial.solve())) return true;
  }
  return false;
}

bool batch_cold_diverges(const TmgSpec& spec) {
  const MarkedGraph g = spec.build();
  const RatioGraph rg = to_ratio_graph(g);
  // Deterministic per spec shape, so the shrinker can replay it.
  util::Rng rng(kBaseSeed ^ 0xba7c8ULL ^
                (static_cast<std::uint64_t>(spec.delays.size()) * 149) ^
                (static_cast<std::uint64_t>(rg.weight.size()) * 157));
  CycleMeanSolver batched;
  batched.prepare(rg);
  const std::vector<WeightVector> scenarios =
      random_scenarios(rng, 8, rg.weight.size());
  const std::vector<BatchSolveReport> reports = batched.solve_batch(scenarios);
  CycleMeanSolver serial;
  serial.prepare(rg);
  if (serial_reference_disagrees(serial, scenarios, reports)) return true;
  // The batch leaves the last scenario's weights installed, exactly like
  // the serial loop would: one more canonical solve must agree too.
  return !results_bit_identical(batched.solve(), serial.solve());
}

TEST(DifferentialCsrSolver, ColdBatchBitIdenticalToSerialSolves) {
  for (std::uint64_t shard = 0; shard < 60; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0xba7c8ULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    if (batch_cold_diverges(spec)) {
      report_failure(shard, spec, batch_cold_diverges,
                     "cold solve_batch diverged from serial solves");
      return;
    }
  }
}

// --- D9 (interleaved warm solve / solve_batch streams) -----------------------

bool batch_interleaved_diverges(const TmgSpec& spec) {
  MarkedGraph g = spec.build();
  CycleMeanSolver batched;
  CycleMeanSolver serial;
  batched.prepare(g);
  serial.prepare(g);
  const auto m = static_cast<std::size_t>(batched.csr().num_arcs);
  util::Rng rng(kBaseSeed ^ 0xba7c9ULL ^
                (static_cast<std::uint64_t>(spec.delays.size()) * 151));
  for (int round = 0; round < 10; ++round) {
    const auto t = static_cast<TransitionId>(rng.index(spec.delays.size()));
    g.set_delay(t, rng.uniform_int(0, 20));
    // Re-prepares must stay warm (weight-only) even right after a batch
    // left foreign scenario weights installed.
    if (!batched.prepare(g) || !serial.prepare(g)) return true;
    if (round % 3 == 0) {
      if (!results_bit_identical(batched.solve(), serial.solve())) return true;
      continue;
    }
    const std::vector<WeightVector> scenarios =
        random_scenarios(rng, 1 + rng.index(4), m);
    const std::vector<BatchSolveReport> reports =
        batched.solve_batch(scenarios);
    if (serial_reference_disagrees(serial, scenarios, reports)) return true;
  }
  return false;
}

TEST(DifferentialCsrSolver, InterleavedSolveAndBatchStayBitIdentical) {
  for (std::uint64_t shard = 0; shard < 40; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0xba7c9ULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    if (batch_interleaved_diverges(spec)) {
      report_failure(shard, spec, batch_interleaved_diverges,
                     "interleaved solve/solve_batch stream diverged");
      return;
    }
  }
}

// --- D10 (one solver batching across structures) -----------------------------

TEST(DifferentialCsrSolver, BatchSolverReusedAcrossStructures) {
  // One solver absorbs batches against a stream of unrelated graphs; its
  // workspaces, staging block, and memo scaffolding are reused, so a large
  // graph followed by a small one exercises stale tails in all of them.
  CycleMeanSolver batched;
  for (std::uint64_t shard = 0; shard < 40; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed ^ 0xba7caULL, shard);
    const TmgSpec spec = random_spec(rng, /*unit_tokens=*/shard % 2 == 0);
    const MarkedGraph g = spec.build();
    batched.prepare(g);
    const auto m = static_cast<std::size_t>(batched.csr().num_arcs);
    const std::vector<WeightVector> scenarios = random_scenarios(rng, 4, m);
    const std::vector<BatchSolveReport> reports =
        batched.solve_batch(scenarios);
    CycleMeanSolver serial;
    serial.prepare(g);
    if (serial_reference_disagrees(serial, scenarios, reports)) {
      const auto fails = [&](const TmgSpec& cand) {
        // Re-create the cross-structure state: a fresh solver first sized by
        // the *previous* shard's graph, then batched on the candidate.
        CycleMeanSolver b2;
        if (shard > 0) {
          util::Rng prev_rng =
              util::Rng::for_shard(kBaseSeed ^ 0xba7caULL, shard - 1);
          b2.solve(random_spec(prev_rng, (shard - 1) % 2 == 0).build());
        }
        const MarkedGraph cg = cand.build();
        b2.prepare(cg);
        const auto cm = static_cast<std::size_t>(b2.csr().num_arcs);
        util::Rng wr(kBaseSeed ^ 0xba7caULL ^
                     (static_cast<std::uint64_t>(cm) * 163));
        const std::vector<WeightVector> ws = random_scenarios(wr, 4, cm);
        const std::vector<BatchSolveReport> reps = b2.solve_batch(ws);
        CycleMeanSolver s2;
        s2.prepare(cg);
        return serial_reference_disagrees(s2, ws, reps);
      };
      report_failure(shard, spec, fails,
                     "cross-structure solve_batch diverged from serial solves");
      return;
    }
  }
}

// --- generator sanity --------------------------------------------------------

TEST(DifferentialGenerator, ShardsProduceDistinctStreams) {
  // for_shard must give unrelated streams: the first samples of 64
  // consecutive shards should not collide en masse.
  std::vector<std::int64_t> firsts;
  for (std::uint64_t shard = 0; shard < 64; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed, shard);
    firsts.push_back(rng.uniform_int(0, 1'000'000'000));
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::unique(firsts.begin(), firsts.end()), firsts.end());
}

TEST(DifferentialGenerator, UnitTokenGraphsAreAlwaysLive) {
  for (std::uint64_t shard = 0; shard < 32; ++shard) {
    util::Rng rng = util::Rng::for_shard(kBaseSeed + 7, shard);
    const MarkedGraph g = random_spec(rng, /*unit_tokens=*/true).build();
    EXPECT_TRUE(is_live(g)) << "shard " << shard;
  }
}

}  // namespace
}  // namespace ermes::tmg
