// Unit tests for the ordering module: labeling mechanics, final ordering,
// feedback-arc handling, baselines, exhaustive search.

#include <gtest/gtest.h>

#include <limits>

#include "analysis/performance.h"
#include "ordering/baselines.h"
#include "ordering/channel_ordering.h"
#include "ordering/labeling.h"
#include "sysmodel/builder.h"
#include "util/rng.h"

namespace ermes::ordering {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

double cycle_time_cost(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time
                     : std::numeric_limits<double>::infinity();
}

// A fan-out/fan-in system with asymmetric path latencies: the ordering
// algorithm must put toward the slow path first and get from the fast path
// first.
SystemModel fork_join() {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId split = sys.add_process("split", 1);
  const ProcessId slow = sys.add_process("slow", 50);
  const ProcessId fast = sys.add_process("fast", 1);
  const ProcessId join = sys.add_process("join", 1);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, split, 1);
  sys.add_channel("to_fast", split, fast, 1);  // designer order: fast first
  sys.add_channel("to_slow", split, slow, 1);
  sys.add_channel("from_slow", slow, join, 1);
  sys.add_channel("from_fast", fast, join, 1);
  sys.add_channel("out", join, snk, 1);
  return sys;
}

TEST(LabelingTest, ForwardWeightsGrowAlongPaths) {
  const SystemModel sys = fork_join();
  const LabelingResult labels = forward_labeling(sys);
  const auto in = static_cast<std::size_t>(sys.find_channel("in"));
  const auto out = static_cast<std::size_t>(sys.find_channel("out"));
  EXPECT_LT(labels.head_weight[in], labels.head_weight[out]);
}

TEST(LabelingTest, TimestampsAreUniqueAndDense) {
  const SystemModel sys = fork_join();
  const LabelingResult labels = forward_backward_labeling(sys);
  std::vector<bool> seen_head(static_cast<std::size_t>(sys.num_channels()) + 1,
                              false);
  std::vector<bool> seen_tail(static_cast<std::size_t>(sys.num_channels()) + 1,
                              false);
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    const auto h = labels.head_timestamp[static_cast<std::size_t>(c)];
    const auto t = labels.tail_timestamp[static_cast<std::size_t>(c)];
    ASSERT_GE(h, 1);
    ASSERT_LE(h, sys.num_channels());
    ASSERT_GE(t, 1);
    ASSERT_LE(t, sys.num_channels());
    EXPECT_FALSE(seen_head[static_cast<std::size_t>(h)]);
    EXPECT_FALSE(seen_tail[static_cast<std::size_t>(t)]);
    seen_head[static_cast<std::size_t>(h)] = true;
    seen_tail[static_cast<std::size_t>(t)] = true;
  }
}

TEST(LabelingTest, NoBackArcsOnDag) {
  const LabelingResult labels = forward_backward_labeling(fork_join());
  for (bool back : labels.is_back_arc) EXPECT_FALSE(back);
}

TEST(LabelingTest, FeedbackArcIdentified) {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId a = sys.add_process("a", 1);
  const ProcessId b = sys.add_process("b", 1);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, a, 1);
  sys.add_channel("ab", a, b, 1);
  const ChannelId fb = sys.add_channel("fb", b, a, 1);
  sys.add_channel("out", b, snk, 1);
  sys.set_primed(b, true);
  const LabelingResult labels = forward_backward_labeling(sys);
  // Cycles are broken at primed-source arcs: fb is a feedback arc (its
  // producer is primed) even though the DFS no longer classifies it.
  EXPECT_TRUE(labels.is_feedback_arc[static_cast<std::size_t>(fb)]);
  // Every arc still receives labels.
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    EXPECT_GE(labels.head_timestamp[static_cast<std::size_t>(c)], 1);
    EXPECT_GE(labels.tail_timestamp[static_cast<std::size_t>(c)], 1);
  }
}

TEST(ChannelOrderingTest, PutsTowardSlowPathFirst) {
  const SystemModel sys = fork_join();
  const ChannelOrderingResult result = channel_ordering(sys);
  const ProcessId split = sys.find_process("split");
  // The slow path has the larger downstream weight: write it first.
  EXPECT_EQ(sys.channel_name(
                result.output_order[static_cast<std::size_t>(split)][0]),
            "to_slow");
  const ProcessId join = sys.find_process("join");
  // The fast path has the smaller head weight: read it first.
  EXPECT_EQ(sys.channel_name(
                result.input_order[static_cast<std::size_t>(join)][0]),
            "from_fast");
}

TEST(ChannelOrderingTest, OrderingImprovesForkJoinThroughput) {
  SystemModel sys = fork_join();
  const double before = cycle_time_cost(sys);
  apply_ordering(sys, channel_ordering(sys));
  const double after = cycle_time_cost(sys);
  EXPECT_LE(after, before);
}

TEST(ChannelOrderingTest, ResultOrdersArePermutations) {
  const SystemModel sys = fork_join();
  const ChannelOrderingResult result = channel_ordering(sys);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    auto sorted_new = result.input_order[static_cast<std::size_t>(p)];
    auto sorted_old = sys.input_order(p);
    std::sort(sorted_new.begin(), sorted_new.end());
    std::sort(sorted_old.begin(), sorted_old.end());
    EXPECT_EQ(sorted_new, sorted_old);
  }
}

TEST(ChannelOrderingTest, NoTiebreakVariantDiffersOnSymmetricGraph) {
  // Two equal-latency parallel paths: weights tie; the tie-break must fall
  // back to timestamps for a deterministic (and safe) order.
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId split = sys.add_process("split", 1);
  const ProcessId up = sys.add_process("up", 3);
  const ProcessId dn = sys.add_process("dn", 3);
  const ProcessId join = sys.add_process("join", 1);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, split, 1);
  sys.add_channel("s_up", split, up, 1);
  sys.add_channel("s_dn", split, dn, 1);
  sys.add_channel("up_j", up, join, 1);
  sys.add_channel("dn_j", dn, join, 1);
  sys.add_channel("out", join, snk, 1);
  const ChannelOrderingResult with_tb = channel_ordering(sys);
  // With ties everywhere the tie-broken order must still be deterministic
  // and deadlock-free.
  SystemModel ordered = sys;
  apply_ordering(ordered, with_tb);
  EXPECT_TRUE(analysis::analyze_system(ordered).live);
}

// ---- baselines ---------------------------------------------------------------

TEST(BaselinesTest, IndexOrderingRestoresInsertionOrder) {
  SystemModel sys = fork_join();
  util::Rng rng(3);
  apply_random_ordering(sys, rng);
  apply_index_ordering(sys);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    auto order = sys.input_order(p);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
}

TEST(BaselinesTest, ConservativeOrderingIsLive) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  ASSERT_FALSE(analysis::analyze_system(sys).live);  // starts deadlocked
  apply_conservative_ordering(sys);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST(BaselinesTest, ConservativeIsLatencyOblivious) {
  // Changing latencies must not change the conservative order.
  SystemModel a = fork_join();
  SystemModel b = fork_join();
  b.set_latency(b.find_process("slow"), 1);
  b.set_latency(b.find_process("fast"), 50);
  apply_conservative_ordering(a);
  apply_conservative_ordering(b);
  for (ProcessId p = 0; p < a.num_processes(); ++p) {
    EXPECT_EQ(a.input_order(p), b.input_order(p));
    EXPECT_EQ(a.output_order(p), b.output_order(p));
  }
}

TEST(BaselinesTest, RandomOrderingIsReproducible) {
  SystemModel a = fork_join();
  SystemModel b = fork_join();
  util::Rng ra(42), rb(42);
  apply_random_ordering(a, ra);
  apply_random_ordering(b, rb);
  for (ProcessId p = 0; p < a.num_processes(); ++p) {
    EXPECT_EQ(a.input_order(p), b.input_order(p));
    EXPECT_EQ(a.output_order(p), b.output_order(p));
  }
}

// ---- exhaustive search --------------------------------------------------------

TEST(ExhaustiveTest, CountsAllCombinationsOfMotivatingExample) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const ExhaustiveResult result = exhaustive_search(sys, cycle_time_cost);
  EXPECT_EQ(result.combinations, 36u);  // 3! * 3!
}

TEST(ExhaustiveTest, FindsTheOptimum12) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const ExhaustiveResult result = exhaustive_search(sys, cycle_time_cost);
  EXPECT_DOUBLE_EQ(result.best_cost, 12.0);
  EXPECT_GT(result.deadlocked, 0u);  // some orders deadlock
  EXPECT_DOUBLE_EQ(result.worst_finite_cost, 20.0);
}

TEST(ExhaustiveTest, AlgorithmMatchesExhaustiveOptimum) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const ExhaustiveResult exhaustive = exhaustive_search(sys, cycle_time_cost);
  SystemModel ordered = with_optimal_ordering(sys);
  EXPECT_DOUBLE_EQ(cycle_time_cost(ordered), exhaustive.best_cost);
}

TEST(ExhaustiveTest, RestoresOriginalOrders) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const auto before_in = sys.input_order(sys.find_process("P6"));
  const auto before_out = sys.output_order(sys.find_process("P2"));
  exhaustive_search(sys, cycle_time_cost);
  EXPECT_EQ(sys.input_order(sys.find_process("P6")), before_in);
  EXPECT_EQ(sys.output_order(sys.find_process("P2")), before_out);
}

TEST(ExhaustiveTest, LimitRespected) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const ExhaustiveResult result = exhaustive_search(sys, cycle_time_cost, 10);
  EXPECT_EQ(result.combinations, 10u);
}

}  // namespace
}  // namespace ermes::ordering
