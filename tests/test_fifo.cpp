// Non-blocking (FIFO) channel extension: TMG model (split write/read
// transitions with data/space places), kernel semantics, model-vs-sim
// agreement, and analytic buffer sizing.

#include <gtest/gtest.h>

#include "analysis/buffer_sizing.h"
#include "analysis/performance.h"
#include "analysis/tmg_builder.h"
#include "ordering/channel_ordering.h"
#include "sim/system_sim.h"
#include "synth/generator.h"
#include "sysmodel/builder.h"
#include "util/rng.h"

namespace ermes {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

// src --a--> worker --b--> snk, with configurable capacities.
SystemModel pipeline(std::int64_t cap_a, std::int64_t cap_b,
                     std::int64_t worker_latency = 4) {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 6);
  const ProcessId w = sys.add_process("w", worker_latency);
  const ProcessId snk = sys.add_process("snk", 1);
  const ChannelId a = sys.add_channel("a", src, w, 2);
  const ChannelId b = sys.add_channel("b", w, snk, 3);
  sys.set_channel_capacity(a, cap_a);
  sys.set_channel_capacity(b, cap_b);
  return sys;
}

// ---- TMG structure -----------------------------------------------------------

TEST(FifoTmgTest, RendezvousChannelSharesOneTransition) {
  const SystemModel sys = pipeline(0, 0);
  const analysis::SystemTmg stmg = analysis::build_tmg(sys);
  EXPECT_EQ(stmg.channel_transition[0], stmg.channel_read_transition[0]);
}

TEST(FifoTmgTest, FifoChannelSplitsTransitions) {
  const SystemModel sys = pipeline(2, 0);
  const analysis::SystemTmg stmg = analysis::build_tmg(sys);
  EXPECT_NE(stmg.channel_transition[0], stmg.channel_read_transition[0]);
  // Write side keeps the latency; read side is instantaneous.
  EXPECT_EQ(stmg.graph.delay(stmg.channel_transition[0]), 2);
  EXPECT_EQ(stmg.graph.delay(stmg.channel_read_transition[0]), 0);
}

TEST(FifoTmgTest, SpacePlaceCarriesCapacityTokens) {
  const SystemModel sys = pipeline(3, 0);
  const analysis::SystemTmg stmg = analysis::build_tmg(sys);
  bool found_space = false, found_data = false;
  for (tmg::PlaceId pl = 0; pl < stmg.graph.num_places(); ++pl) {
    const auto& role = stmg.place_role[static_cast<std::size_t>(pl)];
    if (role.kind == analysis::PlaceRole::Kind::kFifoSpace) {
      EXPECT_EQ(stmg.graph.tokens(pl), 3);
      found_space = true;
    }
    if (role.kind == analysis::PlaceRole::Kind::kFifoData) {
      EXPECT_EQ(stmg.graph.tokens(pl), 0);
      found_data = true;
    }
  }
  EXPECT_TRUE(found_space);
  EXPECT_TRUE(found_data);
}

// ---- analytic effect of buffering ---------------------------------------------

TEST(FifoAnalysisTest, BufferingDecouplesStages) {
  // Rendezvous: the worker ring is a(2)+w(4)+b(3) = 9; the src ring is
  // 6+2 = 8. With capacity on `a`, src's ring decouples from the shared
  // transition: CT drops to the slowest *stage* instead.
  const double ct0 =
      analysis::analyze_system(pipeline(0, 0)).cycle_time;
  const double ct1 =
      analysis::analyze_system(pipeline(4, 4)).cycle_time;
  EXPECT_LT(ct1, ct0);
}

TEST(FifoAnalysisTest, CapacityNeverHurts) {
  for (std::int64_t cap = 0; cap <= 4; ++cap) {
    const double with_cap =
        analysis::analyze_system(pipeline(cap, 0)).cycle_time;
    const double more_cap =
        analysis::analyze_system(pipeline(cap + 1, 0)).cycle_time;
    EXPECT_LE(more_cap, with_cap + 1e-12) << "cap " << cap;
  }
}

TEST(FifoAnalysisTest, CapacityCuresOrderingDeadlock) {
  // The motivating example's deadlocking order becomes live once channel d
  // (where P2 blocks) gets one slot of capacity.
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  ASSERT_FALSE(analysis::analyze_system(sys).live);
  sys.set_channel_capacity(sys.find_channel("d"), 1);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

// ---- kernel semantics -----------------------------------------------------------

TEST(FifoKernelTest, ProducerRunsAheadUpToCapacity) {
  // Slow consumer: the producer can complete `capacity` puts before the
  // consumer pops anything.
  sim::Kernel kernel;
  const auto prod = kernel.add_process(
      "prod", sim::Program{sim::Statement::put(0), sim::Statement::compute(1)});
  const auto cons = kernel.add_process(
      "cons",
      sim::Program{sim::Statement::get(0), sim::Statement::compute(100)});
  kernel.add_channel("c", prod, cons, 1, 3);
  // Ask for more transfers than the slow consumer can pop before the cycle
  // limit: the run stops at the limit with the buffer filled.
  kernel.run(0, 100, 50);
  EXPECT_GE(kernel.process(prod).loop_iterations, 3);
}

TEST(FifoKernelTest, SimMatchesModelOnPipeline) {
  for (std::int64_t cap : {0, 1, 2, 5}) {
    SystemModel sys = pipeline(cap, cap);
    const analysis::PerformanceReport report = analysis::analyze_system(sys);
    ASSERT_TRUE(report.live);
    const sim::SystemSimResult sim = sim::simulate_system(sys, 300);
    ASSERT_FALSE(sim.deadlocked) << "cap " << cap;
    EXPECT_NEAR(sim.measured_cycle_time, report.cycle_time, 1e-9)
        << "cap " << cap;
  }
}

TEST(FifoKernelTest, DataIntegrityThroughFifo) {
  class Producer final : public sim::Behavior {
   public:
    sim::Packet on_put(sim::SimChannelId) override {
      return sim::Packet{{counter_++}};
    }
   private:
    std::int64_t counter_ = 0;
  };
  class Consumer final : public sim::Behavior {
   public:
    void on_get(sim::SimChannelId, const sim::Packet& packet) override {
      received.push_back(packet.data.at(0));
    }
    std::vector<std::int64_t> received;
  };
  sim::Kernel kernel;
  auto consumer = std::make_unique<Consumer>();
  Consumer* consumer_ptr = consumer.get();
  const auto prod = kernel.add_process("prod",
                                       sim::Program{sim::Statement::put(0)},
                                       std::make_unique<Producer>());
  const auto cons = kernel.add_process(
      "cons",
      sim::Program{sim::Statement::get(0), sim::Statement::compute(7)},
      std::move(consumer));
  kernel.add_channel("c", prod, cons, 2, 3);
  kernel.run(0, 8);
  EXPECT_EQ(consumer_ptr->received,
            (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(FifoKernelTest, FullBufferBlocksProducerDeadlockDetected) {
  // Producer only puts; consumer never gets: fills capacity then blocks; the
  // kernel reports a stall (not a crash).
  sim::Kernel kernel;
  const auto prod =
      kernel.add_process("prod", sim::Program{sim::Statement::put(0)});
  const auto cons = kernel.add_process(
      "cons", sim::Program{sim::Statement::compute(1'000'000)});
  kernel.add_channel("c", prod, cons, 1, 2);
  const sim::RunResult run = kernel.run(0, 10, 500);
  EXPECT_TRUE(run.hit_cycle_limit || run.deadlock.deadlocked);
  (void)cons;
}

// ---- model-vs-sim property across random FIFO systems ---------------------------

class FifoAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoAgreement, ModelMatchesSimulationWithMixedCapacities) {
  synth::GeneratorConfig config;
  config.num_processes = 16;
  config.num_channels = 26;
  config.feedback_fraction = 0.2;
  config.seed = GetParam();
  SystemModel sys = synth::generate_soc(config);
  util::Rng rng(GetParam() * 31);
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    if (rng.flip(0.5)) {
      sys.set_channel_capacity(c, rng.uniform_int(1, 4));
    }
  }
  sys = ordering::with_optimal_ordering(sys);
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  ASSERT_TRUE(report.live);
  const sim::SystemSimResult sim = sim::simulate_system(sys, 400);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, report.cycle_time, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- buffer sizing ----------------------------------------------------------------

TEST(BufferSizingTest, LivenessSizingFixesDeadlockedOrder) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const analysis::SizingResult result = analysis::size_for_liveness(sys);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.slots_added, 0);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

TEST(BufferSizingTest, LiveSystemNeedsNoSlots) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  const analysis::SizingResult result = analysis::size_for_liveness(sys);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.slots_added, 0);
}

TEST(BufferSizingTest, CycleTimeSizingReachesReachableTarget) {
  SystemModel sys = pipeline(0, 0);  // CT 9 (worker ring)
  const analysis::SizingResult result =
      analysis::size_for_cycle_time(sys, 9, 16);
  ASSERT_TRUE(result.success);
  EXPECT_LT(result.cycle_time, 9.0);
  // Verify against simulation.
  const sim::SystemSimResult sim = sim::simulate_system(sys, 300);
  EXPECT_NEAR(sim.measured_cycle_time, result.cycle_time, 1e-9);
}

TEST(BufferSizingTest, UnreachableTargetReportsFailure) {
  SystemModel sys = pipeline(0, 0);
  // The worker's own latency bounds the cycle time from below: compute
  // (4) + its ring channels can't go below the compute latency.
  const analysis::SizingResult result =
      analysis::size_for_cycle_time(sys, 2, 64);
  EXPECT_FALSE(result.success);
}

TEST(BufferSizingTest, ChangesListMatchesCapacities) {
  SystemModel sys = pipeline(0, 0);
  const analysis::SizingResult result =
      analysis::size_for_cycle_time(sys, 9, 16);
  for (const auto& [channel, capacity] : result.changes) {
    EXPECT_EQ(sys.channel_capacity(channel), capacity);
  }
}

}  // namespace
}  // namespace ermes
