// Unit tests for the .soc text format: parsing, serialization, exact round
// trips, and error reporting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/performance.h"
#include "apps/mpeg2/characterization.h"
#include "io/soc_format.h"
#include "ordering/baselines.h"
#include "synth/generator.h"
#include "synth/pareto_gen.h"
#include "soc_bad_corpus.h"
#include "sysmodel/builder.h"
#include "util/rng.h"

namespace ermes::io {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

void expect_equivalent(const SystemModel& a, const SystemModel& b) {
  ASSERT_EQ(a.num_processes(), b.num_processes());
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (ProcessId p = 0; p < a.num_processes(); ++p) {
    EXPECT_EQ(a.process_name(p), b.process_name(p));
    EXPECT_EQ(a.latency(p), b.latency(p));
    EXPECT_DOUBLE_EQ(a.area(p), b.area(p));
    EXPECT_EQ(a.primed(p), b.primed(p));
    EXPECT_EQ(a.input_order(p), b.input_order(p));
    EXPECT_EQ(a.output_order(p), b.output_order(p));
    ASSERT_EQ(a.has_implementations(p), b.has_implementations(p));
    if (a.has_implementations(p)) {
      ASSERT_EQ(a.implementations(p).size(), b.implementations(p).size());
      EXPECT_EQ(a.selected_implementation(p), b.selected_implementation(p));
      for (std::size_t i = 0; i < a.implementations(p).size(); ++i) {
        EXPECT_EQ(a.implementations(p).at(i), b.implementations(p).at(i));
      }
    }
  }
  for (ChannelId c = 0; c < a.num_channels(); ++c) {
    EXPECT_EQ(a.channel_name(c), b.channel_name(c));
    EXPECT_EQ(a.channel_source(c), b.channel_source(c));
    EXPECT_EQ(a.channel_target(c), b.channel_target(c));
    EXPECT_EQ(a.channel_latency(c), b.channel_latency(c));
    EXPECT_EQ(a.channel_capacity(c), b.channel_capacity(c));
  }
}

// ---- parsing -----------------------------------------------------------------

TEST(SocParseTest, MinimalSystem) {
  const ParseResult parsed = parse_soc(R"(
system tiny
process a latency 3
process b latency 4 area 0.5
channel ab a -> b latency 7
)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.system_name, "tiny");
  EXPECT_EQ(parsed.system.num_processes(), 2);
  EXPECT_EQ(parsed.system.latency(0), 3);
  EXPECT_DOUBLE_EQ(parsed.system.area(1), 0.5);
  EXPECT_EQ(parsed.system.channel_latency(0), 7);
}

TEST(SocParseTest, CommentsAndBlanksIgnored) {
  const ParseResult parsed = parse_soc(R"(
# a comment
process a latency 1   # trailing comment

process b latency 2
channel ab a -> b latency 1
)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.system.num_processes(), 2);
}

TEST(SocParseTest, PrimedAndCapacity) {
  const ParseResult parsed = parse_soc(R"(
process a latency 1
process b latency 2 primed
channel ab a -> b latency 4 capacity 3
)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.system.primed(1));
  EXPECT_EQ(parsed.system.channel_capacity(0), 3);
}

TEST(SocParseTest, ImplementationsAttach) {
  const ParseResult parsed = parse_soc(R"(
process a latency 8
process b latency 1
channel ab a -> b latency 1
impl a fast latency 2 area 4.0
impl a slow latency 8 area 1.0 selected
)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_TRUE(parsed.system.has_implementations(0));
  EXPECT_EQ(parsed.system.implementations(0).size(), 2u);
  EXPECT_EQ(parsed.system.latency(0), 8);  // slow selected
  EXPECT_EQ(parsed.system.selected_implementation(0), 1u);
}

TEST(SocParseTest, OrdersApplied) {
  const ParseResult parsed = parse_soc(R"(
process a latency 1
process b latency 1
process c latency 1
channel x a -> c latency 1
channel y b -> c latency 1
gets c y x
)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ProcessId c = parsed.system.find_process("c");
  EXPECT_EQ(parsed.system.channel_name(parsed.system.input_order(c)[0]), "y");
}

// ---- parse errors ----------------------------------------------------------------

TEST(SocParseTest, UnknownKeywordReportsLine) {
  const ParseResult parsed = parse_soc("process a latency 1\nbogus line\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(SocParseTest, UnknownProcessInChannel) {
  const ParseResult parsed =
      parse_soc("process a latency 1\nchannel x a -> ghost latency 1\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("ghost"), std::string::npos);
}

TEST(SocParseTest, DuplicateProcessRejected) {
  const ParseResult parsed =
      parse_soc("process a latency 1\nprocess a latency 2\n");
  EXPECT_FALSE(parsed.ok);
}

TEST(SocParseTest, BadLatencyRejected) {
  EXPECT_FALSE(parse_soc("process a latency abc\n").ok);
  EXPECT_FALSE(parse_soc("process a latency -3\n").ok);
}

TEST(SocParseTest, IncompleteOrderRejected) {
  const ParseResult parsed = parse_soc(R"(
process a latency 1
process b latency 1
process c latency 1
channel x a -> c latency 1
channel y b -> c latency 1
gets c y
)");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("incident"), std::string::npos);
}

TEST(SocParseTest, MissingFileReported) {
  const ParseResult parsed = load_soc("/nonexistent/path.soc");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("cannot open"), std::string::npos);
}

// ---- round trips ---------------------------------------------------------------

TEST(SocRoundTripTest, MotivatingExample) {
  const SystemModel original = sysmodel::make_dac14_motivating_example();
  const ParseResult parsed = parse_soc(write_soc(original, "m"));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  expect_equivalent(original, parsed.system);
}

TEST(SocRoundTripTest, Mpeg2WithImplementations) {
  const SystemModel original = mpeg2::make_characterized_mpeg2_encoder();
  const ParseResult parsed = parse_soc(write_soc(original, "mpeg2"));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  expect_equivalent(original, parsed.system);
  // The analytic report of the reparsed system is identical.
  EXPECT_DOUBLE_EQ(analysis::analyze_system(original).cycle_time,
                   analysis::analyze_system(parsed.system).cycle_time);
}

TEST(SocRoundTripTest, RandomSystemsWithOrdersAndCapacities) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    synth::GeneratorConfig config;
    config.num_processes = 20;
    config.num_channels = 34;
    config.feedback_fraction = 0.2;
    config.seed = seed;
    SystemModel original = synth::generate_soc(config);
    synth::attach_pareto_sets(original, seed + 5);
    util::Rng rng(seed * 7);
    ordering::apply_random_ordering(original, rng);
    for (ChannelId c = 0; c < original.num_channels(); ++c) {
      if (rng.flip(0.3)) {
        original.set_channel_capacity(c, rng.uniform_int(1, 5));
      }
    }
    const ParseResult parsed = parse_soc(write_soc(original, "rand"));
    ASSERT_TRUE(parsed.ok) << "seed " << seed << ": " << parsed.error;
    expect_equivalent(original, parsed.system);
  }
}

TEST(SocRoundTripTest, FileSaveLoad) {
  const SystemModel original = sysmodel::make_dac14_motivating_example();
  const std::string path = ::testing::TempDir() + "/ermes_roundtrip.soc";
  ASSERT_TRUE(save_soc(original, path, "m"));
  const ParseResult parsed = load_soc(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  expect_equivalent(original, parsed.system);
  std::remove(path.c_str());
}

TEST(SocWriteTest, StableOutput) {
  const SystemModel sys = sysmodel::make_dac14_motivating_example();
  EXPECT_EQ(write_soc(sys, "m"), write_soc(sys, "m"));
}

// ---- hostile input -----------------------------------------------------------

// Every corpus entry must produce a structured error — ok == false with a
// message — and never crash or throw out of parse_soc. The same corpus runs
// end-to-end against the daemon in tests/test_svc.cpp.
TEST(SocHardeningTest, BadCorpusRejectedStructurally) {
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_soc_corpus()) {
    ParseResult parsed;
    ASSERT_NO_THROW(parsed = parse_soc(bad.text)) << bad.label;
    EXPECT_FALSE(parsed.ok) << bad.label;
    EXPECT_FALSE(parsed.error.empty()) << bad.label;
  }
}

// Rejections must be deterministic: the same hostile input yields the same
// error message (no dependence on leftover parser state).
TEST(SocHardeningTest, BadCorpusDeterministic) {
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_soc_corpus()) {
    EXPECT_EQ(parse_soc(bad.text).error, parse_soc(bad.text).error)
        << bad.label;
  }
}

// An absurdly long token must not crash (a 4 MiB process name is legal, if
// silly — the point is bounded, exception-free handling).
TEST(SocHardeningTest, HugeTokenSurvives) {
  ParseResult parsed;
  ASSERT_NO_THROW(parsed = parse_soc(ermes::testing::huge_token_soc(4u << 20)));
  if (parsed.ok) {
    EXPECT_EQ(parsed.system.num_processes(), 1u);
  } else {
    EXPECT_FALSE(parsed.error.empty());
  }
}

// Truncated documents (every prefix of a valid file) must parse or reject
// cleanly — a truncation can never crash.
TEST(SocHardeningTest, EveryPrefixHandled) {
  const std::string full =
      write_soc(sysmodel::make_dac14_motivating_example(), "m");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    ParseResult parsed;
    ASSERT_NO_THROW(parsed = parse_soc(full.substr(0, len))) << "len " << len;
    if (!parsed.ok) {
      EXPECT_FALSE(parsed.error.empty()) << "len " << len;
    }
  }
}

// Error messages carry the offending line number.
TEST(SocHardeningTest, ErrorsNameTheLine) {
  const ParseResult parsed =
      parse_soc("system ok\nprocess a latency 1\nprocess a latency 2\n");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("line 3"), std::string::npos) << parsed.error;
}

}  // namespace
}  // namespace ermes::io
