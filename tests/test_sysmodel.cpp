// Unit tests for the system model: processes, channels, I/O orders, Pareto
// sets, builders, validation.

#include <gtest/gtest.h>

#include "sysmodel/builder.h"
#include "sysmodel/implementation.h"
#include "sysmodel/system.h"
#include "sysmodel/stats.h"
#include "sysmodel/validate.h"

namespace ermes::sysmodel {
namespace {

SystemModel tiny_pipeline() {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId mid = sys.add_process("mid", 4);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("a", src, mid, 2);
  sys.add_channel("b", mid, snk, 3);
  return sys;
}

// ---- SystemModel -----------------------------------------------------------

TEST(SystemModelTest, BasicCounts) {
  const SystemModel sys = tiny_pipeline();
  EXPECT_EQ(sys.num_processes(), 3);
  EXPECT_EQ(sys.num_channels(), 2);
}

TEST(SystemModelTest, ChannelEndpointsAndLatency) {
  const SystemModel sys = tiny_pipeline();
  const ChannelId a = sys.find_channel("a");
  EXPECT_EQ(sys.process_name(sys.channel_source(a)), "src");
  EXPECT_EQ(sys.process_name(sys.channel_target(a)), "mid");
  EXPECT_EQ(sys.channel_latency(a), 2);
}

TEST(SystemModelTest, FindByName) {
  const SystemModel sys = tiny_pipeline();
  EXPECT_EQ(sys.find_process("mid"), 1);
  EXPECT_EQ(sys.find_process("nope"), kInvalidProcess);
  EXPECT_EQ(sys.find_channel("b"), 1);
  EXPECT_EQ(sys.find_channel("zzz"), kInvalidChannel);
}

TEST(SystemModelTest, DefaultOrdersAreInsertionOrder) {
  SystemModel sys;
  const ProcessId p = sys.add_process("p", 1);
  const ProcessId q = sys.add_process("q", 1);
  const ProcessId r = sys.add_process("r", 1);
  const ChannelId c1 = sys.add_channel("c1", p, q, 1);
  const ChannelId c2 = sys.add_channel("c2", p, r, 1);
  EXPECT_EQ(sys.output_order(p), (std::vector<ChannelId>{c1, c2}));
}

TEST(SystemModelTest, SetOrdersValidatesPermutation) {
  SystemModel sys;
  const ProcessId p = sys.add_process("p", 1);
  const ProcessId q = sys.add_process("q", 1);
  const ProcessId r = sys.add_process("r", 1);
  const ChannelId c1 = sys.add_channel("c1", p, q, 1);
  const ChannelId c2 = sys.add_channel("c2", p, r, 1);
  sys.set_output_order(p, {c2, c1});
  EXPECT_EQ(sys.output_order(p), (std::vector<ChannelId>{c2, c1}));
}

TEST(SystemModelTest, SourceSinkDetection) {
  const SystemModel sys = tiny_pipeline();
  EXPECT_TRUE(sys.is_source(0));
  EXPECT_FALSE(sys.is_source(1));
  EXPECT_TRUE(sys.is_sink(2));
  EXPECT_EQ(sys.sources(), (std::vector<ProcessId>{0}));
  EXPECT_EQ(sys.sinks(), (std::vector<ProcessId>{2}));
}

TEST(SystemModelTest, PrimedFlag) {
  SystemModel sys = tiny_pipeline();
  EXPECT_FALSE(sys.primed(1));
  sys.set_primed(1, true);
  EXPECT_TRUE(sys.primed(1));
}

TEST(SystemModelTest, TotalArea) {
  SystemModel sys;
  sys.add_process("a", 1, 0.5);
  sys.add_process("b", 1, 0.25);
  EXPECT_DOUBLE_EQ(sys.total_area(), 0.75);
}

TEST(SystemModelTest, OrderCombinationsFormula) {
  // The motivating example has 3!*3! = 36 combinations (paper Section 2).
  const SystemModel sys = make_dac14_motivating_example();
  EXPECT_DOUBLE_EQ(sys.num_order_combinations(), 36.0);
}

TEST(SystemModelTest, TopologyMirrorsChannels) {
  const SystemModel sys = tiny_pipeline();
  const graph::Digraph topo = sys.topology();
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_EQ(topo.num_arcs(), 2);
  EXPECT_EQ(topo.tail(0), 0);
  EXPECT_EQ(topo.head(0), 1);
}

TEST(SystemModelTest, ImplementationSelectionUpdatesLatencyArea) {
  SystemModel sys = tiny_pipeline();
  ParetoSet set;
  set.add({"fast", 2, 1.0});
  set.add({"slow", 8, 0.25});
  sys.set_implementations(1, set, 1);
  EXPECT_EQ(sys.latency(1), 8);
  EXPECT_DOUBLE_EQ(sys.area(1), 0.25);
  sys.select_implementation(1, 0);
  EXPECT_EQ(sys.latency(1), 2);
  EXPECT_DOUBLE_EQ(sys.area(1), 1.0);
  EXPECT_EQ(sys.selected_implementation(1), 0u);
}

TEST(SystemModelTest, TotalParetoPoints) {
  SystemModel sys = tiny_pipeline();
  ParetoSet set;
  set.add({"a", 2, 1.0});
  set.add({"b", 8, 0.5});
  sys.set_implementations(1, set, 0);
  EXPECT_EQ(sys.total_pareto_points(), 2u);
}

// ---- ParetoSet -------------------------------------------------------------

TEST(ParetoSetTest, SortedByLatency) {
  ParetoSet set;
  set.add({"slow", 10, 1.0});
  set.add({"fast", 2, 4.0});
  set.add({"mid", 5, 2.0});
  EXPECT_EQ(set.at(0).latency, 2);
  EXPECT_EQ(set.at(1).latency, 5);
  EXPECT_EQ(set.at(2).latency, 10);
}

TEST(ParetoSetTest, ParetoOptimalityCheck) {
  ParetoSet good({{"a", 2, 4.0}, {"b", 5, 2.0}});
  EXPECT_TRUE(good.is_pareto_optimal());
  ParetoSet bad({{"a", 2, 4.0}, {"b", 5, 5.0}});  // b dominated by a
  EXPECT_FALSE(bad.is_pareto_optimal());
}

TEST(ParetoSetTest, PruneRemovesDominated) {
  ParetoSet set({{"a", 2, 4.0}, {"dom", 3, 4.5}, {"b", 5, 2.0},
                 {"dup", 5, 2.5}});
  set.prune_to_frontier();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.is_pareto_optimal());
}

TEST(ParetoSetTest, FastestAndSmallestIndices) {
  ParetoSet set({{"a", 2, 4.0}, {"b", 5, 2.0}, {"c", 9, 1.0}});
  EXPECT_EQ(set.fastest_index(), 0u);
  EXPECT_EQ(set.smallest_index(), 2u);
}

TEST(ParetoSetTest, FindLocatesImplementation) {
  ParetoSet set({{"a", 2, 4.0}, {"b", 5, 2.0}});
  EXPECT_EQ(set.find({"b", 5, 2.0}), 1u);
  EXPECT_EQ(set.find({"x", 7, 7.0}), ParetoSet::npos);
}

// ---- builder ---------------------------------------------------------------

TEST(BuilderTest, BuildsFromSpec) {
  SystemSpec spec;
  spec.processes = {{"x", 3, 0.1}, {"y", 4, 0.2}};
  spec.channels = {{"xy", "x", "y", 7}};
  const SystemModel sys = build_system(spec);
  EXPECT_EQ(sys.num_processes(), 2);
  EXPECT_EQ(sys.latency(sys.find_process("x")), 3);
  EXPECT_EQ(sys.channel_latency(sys.find_channel("xy")), 7);
}

TEST(BuilderTest, MotivatingExampleShape) {
  const SystemModel sys = make_dac14_motivating_example();
  EXPECT_EQ(sys.num_processes(), 7);
  EXPECT_EQ(sys.num_channels(), 8);
  EXPECT_EQ(sys.latency(sys.find_process("P2")), 5);
  EXPECT_EQ(sys.channel_latency(sys.find_channel("d")), 3);
  // P2's default put order is b, d, f (insertion order).
  const ProcessId p2 = sys.find_process("P2");
  std::vector<std::string> names;
  for (ChannelId c : sys.output_order(p2)) names.push_back(sys.channel_name(c));
  EXPECT_EQ(names, (std::vector<std::string>{"b", "d", "f"}));
}

TEST(BuilderTest, ApplyMotivatingOrders) {
  SystemModel sys = make_dac14_motivating_example();
  apply_motivating_orders(sys, {"f", "b", "d"}, {"e", "g", "d"});
  const ProcessId p2 = sys.find_process("P2");
  const ProcessId p6 = sys.find_process("P6");
  EXPECT_EQ(sys.channel_name(sys.output_order(p2)[0]), "f");
  EXPECT_EQ(sys.channel_name(sys.input_order(p6)[0]), "e");
}

// ---- validate --------------------------------------------------------------

TEST(ValidateTest, MotivatingExampleIsClean) {
  const ValidationReport report = validate(make_dac14_motivating_example());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
}

TEST(ValidateTest, IsolatedProcessIsError) {
  SystemModel sys = tiny_pipeline();
  sys.add_process("island", 1);
  const ValidationReport report = validate(sys);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateTest, SelfLoopIsError) {
  SystemModel sys;
  const ProcessId p = sys.add_process("p", 1);
  const ProcessId q = sys.add_process("q", 1);
  sys.add_channel("pq", p, q, 1);
  sys.add_channel("loop", q, q, 1);
  EXPECT_FALSE(validate(sys).ok());
}

TEST(ValidateTest, MissingSourceWarns) {
  SystemModel sys;
  const ProcessId p = sys.add_process("p", 1);
  const ProcessId q = sys.add_process("q", 1);
  sys.add_channel("pq", p, q, 1);
  sys.add_channel("qp", q, p, 1);
  const ValidationReport report = validate(sys);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.warnings.empty());
}

TEST(ValidateTest, NonParetoSetWarns) {
  SystemModel sys = tiny_pipeline();
  ParetoSet set({{"a", 2, 1.0}, {"dominated", 3, 2.0}});
  sys.set_implementations(1, set, 0);
  const ValidationReport report = validate(sys);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.warnings.empty());
}

TEST(ValidateTest, DivergentLatencyWarns) {
  SystemModel sys = tiny_pipeline();
  ParetoSet set({{"a", 2, 1.0}, {"b", 6, 0.5}});
  sys.set_implementations(1, set, 0);
  sys.set_latency(1, 999);  // diverges from selected implementation
  const ValidationReport report = validate(sys);
  EXPECT_FALSE(report.warnings.empty());
}

// ---- stats -------------------------------------------------------------------

TEST(StatsTest, MotivatingExampleNumbers) {
  const SystemStats stats =
      compute_stats(make_dac14_motivating_example());
  EXPECT_EQ(stats.processes, 7);
  EXPECT_EQ(stats.channels, 8);
  EXPECT_EQ(stats.sources, 1);
  EXPECT_EQ(stats.sinks, 1);
  EXPECT_EQ(stats.primed_processes, 0);
  EXPECT_EQ(stats.feedback_channels, 0);
  EXPECT_EQ(stats.max_fan_in, 3);   // P6
  EXPECT_EQ(stats.max_fan_out, 3);  // P2
  EXPECT_EQ(stats.reconvergence_points, 1);  // P6
  EXPECT_EQ(stats.pipeline_depth, 5);  // src->P2->P3->P4->P6->snk
  EXPECT_EQ(stats.min_channel_latency, 1);
  EXPECT_EQ(stats.max_channel_latency, 3);
  EXPECT_DOUBLE_EQ(stats.order_combinations, 36.0);
}

TEST(StatsTest, CountsPrimedAndFifo) {
  SystemModel sys = tiny_pipeline();
  sys.set_primed(1, true);
  sys.set_channel_capacity(0, 4);
  const SystemStats stats = compute_stats(sys);
  EXPECT_EQ(stats.primed_processes, 1);
  EXPECT_EQ(stats.fifo_channels, 1);
}

TEST(StatsTest, FeedbackCountedThroughPrimedArcs) {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId a = sys.add_process("a", 1);
  const ProcessId b = sys.add_process("b", 1);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("in", src, a, 1);
  sys.add_channel("ab", a, b, 1);
  sys.add_channel("fb", b, a, 1);
  sys.add_channel("out", b, snk, 1);
  sys.set_primed(b, true);
  const SystemStats stats = compute_stats(sys);
  // Both of b's outputs are primed-source; only they count as feedback.
  EXPECT_EQ(stats.feedback_channels, 2);
}

TEST(StatsTest, ToStringMentionsKeyNumbers) {
  const std::string text =
      to_string(compute_stats(make_dac14_motivating_example()));
  EXPECT_NE(text.find("7 processes"), std::string::npos);
  EXPECT_NE(text.find("8 channels"), std::string::npos);
  EXPECT_NE(text.find("36"), std::string::npos);
}

}  // namespace
}  // namespace ermes::sysmodel
