// Unit tests for the TMG module: structure, token game, ASAP timed
// simulation, liveness.

#include <gtest/gtest.h>

#include "tmg/dot.h"
#include "tmg/liveness.h"
#include "tmg/marked_graph.h"
#include "tmg/token_game.h"

namespace ermes::tmg {
namespace {

// A two-transition producer/consumer ring: t0 -> p01 -> t1 -> p10 -> t0,
// token on p10 (t0 may fire first).
struct Ring2 {
  MarkedGraph g;
  TransitionId t0, t1;
  PlaceId p01, p10;
  Ring2(std::int64_t d0 = 1, std::int64_t d1 = 1) {
    t0 = g.add_transition("t0", d0);
    t1 = g.add_transition("t1", d1);
    p01 = g.add_place(t0, t1, 0, "p01");
    p10 = g.add_place(t1, t0, 1, "p10");
  }
};

// ---- structure -------------------------------------------------------------

TEST(MarkedGraphTest, BasicAccessors) {
  Ring2 ring(3, 5);
  EXPECT_EQ(ring.g.num_transitions(), 2);
  EXPECT_EQ(ring.g.num_places(), 2);
  EXPECT_EQ(ring.g.delay(ring.t0), 3);
  EXPECT_EQ(ring.g.delay(ring.t1), 5);
  EXPECT_EQ(ring.g.tokens(ring.p01), 0);
  EXPECT_EQ(ring.g.tokens(ring.p10), 1);
  EXPECT_EQ(ring.g.producer(ring.p01), ring.t0);
  EXPECT_EQ(ring.g.consumer(ring.p01), ring.t1);
}

TEST(MarkedGraphTest, PlaceDegreeInvariant) {
  // Every place has exactly one producer and one consumer by construction;
  // transition adjacency reflects that.
  Ring2 ring;
  EXPECT_EQ(ring.g.in_places(ring.t0).size(), 1u);
  EXPECT_EQ(ring.g.out_places(ring.t0).size(), 1u);
}

TEST(MarkedGraphTest, TotalTokens) {
  Ring2 ring;
  EXPECT_EQ(ring.g.total_tokens(), 1);
  ring.g.set_tokens(ring.p01, 4);
  EXPECT_EQ(ring.g.total_tokens(), 5);
}

TEST(MarkedGraphTest, SettersUpdate) {
  Ring2 ring;
  ring.g.set_delay(ring.t0, 9);
  EXPECT_EQ(ring.g.delay(ring.t0), 9);
}

TEST(MarkedGraphTest, TransitionGraphMirrorsPlaces) {
  Ring2 ring;
  const graph::Digraph tg = ring.g.transition_graph();
  EXPECT_EQ(tg.num_nodes(), 2);
  EXPECT_EQ(tg.num_arcs(), 2);
  EXPECT_EQ(tg.tail(ring.p01), ring.t0);
  EXPECT_EQ(tg.head(ring.p01), ring.t1);
}

TEST(MarkedGraphTest, NamesStored) {
  Ring2 ring;
  EXPECT_EQ(ring.g.transition_name(ring.t0), "t0");
  EXPECT_EQ(ring.g.place_name(ring.p01), "p01");
}

TEST(MarkedGraphTest, DotExportBipartite) {
  Ring2 ring(3, 5);
  const std::string dot = to_dot(ring.g, "ring");
  EXPECT_NE(dot.find("digraph \"ring\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // transitions
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);  // places
  EXPECT_NE(dot.find("d=3"), std::string::npos);
  EXPECT_NE(dot.find("(1)"), std::string::npos);  // the token
  EXPECT_NE(dot.find("t0 -> p0"), std::string::npos);
}

// ---- token game ------------------------------------------------------------

TEST(TokenGameTest, InitialEnabling) {
  Ring2 ring;
  TokenGame game(ring.g);
  EXPECT_TRUE(game.is_enabled(ring.t0));
  EXPECT_FALSE(game.is_enabled(ring.t1));
  EXPECT_EQ(game.enabled(), (std::vector<TransitionId>{ring.t0}));
}

TEST(TokenGameTest, FireMovesTokens) {
  Ring2 ring;
  TokenGame game(ring.g);
  game.fire(ring.t0);
  EXPECT_EQ(game.tokens(ring.p01), 1);
  EXPECT_EQ(game.tokens(ring.p10), 0);
  EXPECT_TRUE(game.is_enabled(ring.t1));
  EXPECT_FALSE(game.is_enabled(ring.t0));
}

TEST(TokenGameTest, FiringSequenceReturnsToInitialMarking) {
  Ring2 ring;
  TokenGame game(ring.g);
  game.fire(ring.t0);
  game.fire(ring.t1);
  EXPECT_EQ(game.marking(), ring.g.initial_marking());
  EXPECT_EQ(game.fire_count(ring.t0), 1);
  EXPECT_EQ(game.fire_count(ring.t1), 1);
}

TEST(TokenGameTest, CycleTokenCountInvariant) {
  Ring2 ring;
  TokenGame game(ring.g);
  const std::vector<PlaceId> cycle{ring.p01, ring.p10};
  const std::int64_t before = game.tokens_on(cycle);
  game.fire(ring.t0);
  EXPECT_EQ(game.tokens_on(cycle), before);
  game.fire(ring.t1);
  EXPECT_EQ(game.tokens_on(cycle), before);
}

TEST(TokenGameTest, DeadlockedWhenNoTokens) {
  MarkedGraph g;
  const TransitionId t0 = g.add_transition("t0", 1);
  const TransitionId t1 = g.add_transition("t1", 1);
  g.add_place(t0, t1, 0);
  g.add_place(t1, t0, 0);
  TokenGame game(g);
  EXPECT_TRUE(game.is_deadlocked());
}

TEST(TokenGameTest, ResetRestoresInitialState) {
  Ring2 ring;
  TokenGame game(ring.g);
  game.fire(ring.t0);
  game.reset();
  EXPECT_EQ(game.marking(), ring.g.initial_marking());
  EXPECT_EQ(game.fire_count(ring.t0), 0);
}

TEST(TokenGameTest, MultiTokenPlaceEnablesRepeatedFiring) {
  MarkedGraph g;
  const TransitionId t0 = g.add_transition("t0", 1);
  const TransitionId t1 = g.add_transition("t1", 1);
  g.add_place(t0, t1, 0);
  const PlaceId p10 = g.add_place(t1, t0, 3);
  TokenGame game(g);
  game.fire(t0);
  game.fire(t0);
  game.fire(t0);
  EXPECT_EQ(game.tokens(p10), 0);
  EXPECT_FALSE(game.is_enabled(t0));
}

// ---- liveness --------------------------------------------------------------

TEST(LivenessTest, MarkedRingIsLive) {
  Ring2 ring;
  EXPECT_TRUE(is_live(ring.g));
}

TEST(LivenessTest, TokenFreeCycleIsDead) {
  MarkedGraph g;
  const TransitionId t0 = g.add_transition("t0", 1);
  const TransitionId t1 = g.add_transition("t1", 1);
  const PlaceId p01 = g.add_place(t0, t1, 0);
  const PlaceId p10 = g.add_place(t1, t0, 0);
  const LivenessResult result = check_liveness(g);
  EXPECT_FALSE(result.live);
  ASSERT_EQ(result.dead_cycle.size(), 2u);
  // The witness is a closed chain of places.
  const PlaceId a = result.dead_cycle[0];
  const PlaceId b = result.dead_cycle[1];
  EXPECT_EQ(g.consumer(a), g.producer(b));
  EXPECT_EQ(g.consumer(b), g.producer(a));
  (void)p01;
  (void)p10;
}

TEST(LivenessTest, TokenOnEveryCycleIsLive) {
  // Two nested cycles; both get a token.
  MarkedGraph g;
  const TransitionId a = g.add_transition("a", 1);
  const TransitionId b = g.add_transition("b", 1);
  const TransitionId c = g.add_transition("c", 1);
  g.add_place(a, b, 1);  // on both cycles: every cycle holds >= 1 token
  g.add_place(b, c, 0);
  g.add_place(c, a, 0);
  g.add_place(b, a, 0);  // short cycle a->b->a
  EXPECT_TRUE(is_live(g));
}

TEST(LivenessTest, WitnessCycleIsTokenFree) {
  MarkedGraph g;
  const TransitionId a = g.add_transition("a", 1);
  const TransitionId b = g.add_transition("b", 1);
  const TransitionId c = g.add_transition("c", 1);
  g.add_place(a, b, 1);
  g.add_place(b, c, 0);
  g.add_place(c, b, 0);  // dead 2-cycle b<->c
  const LivenessResult result = check_liveness(g);
  ASSERT_FALSE(result.live);
  for (PlaceId p : result.dead_cycle) {
    EXPECT_EQ(g.tokens(p), 0);
  }
}

TEST(LivenessTest, SelfLoopPlaceWithTokenLive) {
  MarkedGraph g;
  const TransitionId t = g.add_transition("t", 1);
  g.add_place(t, t, 1);
  EXPECT_TRUE(is_live(g));
}

TEST(LivenessTest, SelfLoopPlaceWithoutTokenDead) {
  MarkedGraph g;
  const TransitionId t = g.add_transition("t", 1);
  g.add_place(t, t, 0);
  const LivenessResult result = check_liveness(g);
  EXPECT_FALSE(result.live);
  EXPECT_EQ(result.dead_cycle.size(), 1u);
}

// ---- timed simulation ------------------------------------------------------

TEST(TimedSimTest, RingPeriodEqualsDelaySum) {
  Ring2 ring(3, 5);  // single token: period = 3 + 5 = 8
  const TimedSimResult result = simulate_asap(ring.g, ring.t0, 50);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_NEAR(result.measured_cycle_time, 8.0, 1e-9);
}

TEST(TimedSimTest, TwoTokensHalveThePeriod) {
  MarkedGraph g;
  const TransitionId t0 = g.add_transition("t0", 3);
  const TransitionId t1 = g.add_transition("t1", 5);
  g.add_place(t0, t1, 0);
  g.add_place(t1, t0, 2);  // two tokens in flight
  const TimedSimResult result = simulate_asap(g, t0, 64);
  EXPECT_NEAR(result.measured_cycle_time, 4.0, 1e-9);
}

TEST(TimedSimTest, DeadlockDetected) {
  MarkedGraph g;
  const TransitionId t0 = g.add_transition("t0", 1);
  const TransitionId t1 = g.add_transition("t1", 1);
  g.add_place(t0, t1, 0);
  g.add_place(t1, t0, 0);
  const TimedSimResult result = simulate_asap(g, t0, 10);
  EXPECT_TRUE(result.deadlocked);
}

TEST(TimedSimTest, StartTimesMonotone) {
  Ring2 ring(2, 2);
  const TimedSimResult result = simulate_asap(ring.g, ring.t1, 20);
  for (std::size_t i = 1; i < result.observed_starts.size(); ++i) {
    EXPECT_GE(result.observed_starts[i], result.observed_starts[i - 1]);
  }
}

TEST(TimedSimTest, BottleneckRingDominates) {
  // Two rings sharing transition s: ring A period 4, ring B period 10.
  MarkedGraph g;
  const TransitionId s = g.add_transition("s", 1);
  const TransitionId a = g.add_transition("a", 3);
  const TransitionId b = g.add_transition("b", 9);
  g.add_place(s, a, 0);
  g.add_place(a, s, 1);
  g.add_place(s, b, 0);
  g.add_place(b, s, 1);
  const TimedSimResult result = simulate_asap(g, s, 50);
  EXPECT_NEAR(result.measured_cycle_time, 10.0, 1e-9);
}

TEST(TimedSimTest, ZeroDelayTransitionsAllowed) {
  Ring2 ring(0, 4);
  const TimedSimResult result = simulate_asap(ring.g, ring.t0, 30);
  EXPECT_NEAR(result.measured_cycle_time, 4.0, 1e-9);
}

}  // namespace
}  // namespace ermes::tmg
