// Tests for the bounded cache subsystem (src/cache) and its EvalCache
// integration: clock/second-chance eviction, byte-budget accounting,
// pin-while-in-use semantics, the versioned snapshot container (including
// rejection of corrupt and incompatible files), EvalCache snapshot
// round-trips across all three memo families, bit-identity of bounded
// analysis, and the shard-stats/window-rate surface under concurrent
// mutation (the suite CI runs under TSan).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/eval_cache.h"
#include "analysis/performance.h"
#include "cache/clock_cache.h"
#include "cache/snapshot.h"
#include "sysmodel/builder.h"
#include "tmg/csr.h"
#include "util/rng.h"

namespace ermes {
namespace {

// ---------------------------------------------------------------------------
// ClockCache core

// A fixed-cost payload makes budget arithmetic exact in the tests below.
cache::ClockCache<std::string>::CostFn string_cost() {
  return [](const std::string& s) {
    return static_cast<std::int64_t>(s.size());
  };
}

// Per-entry tracked cost for a string payload (cost fn + key + overhead).
std::int64_t entry_cost(const std::string& s) {
  return static_cast<std::int64_t>(s.size()) +
         cache::ClockCache<std::string>::kEntryOverhead +
         static_cast<std::int64_t>(sizeof(std::uint64_t));
}

TEST(ClockCache, HitMissAndFirstWriteWins) {
  cache::ClockCache<std::string> c(4, 0, string_cost());
  std::string out;
  EXPECT_FALSE(c.lookup(1, &out));
  EXPECT_TRUE(c.insert(1, "alpha").inserted);
  ASSERT_TRUE(c.lookup(1, &out));
  EXPECT_EQ(out, "alpha");
  // Re-inserting the same key is a no-op: the first value is immutable.
  EXPECT_FALSE(c.insert(1, "beta").inserted);
  ASSERT_TRUE(c.lookup(1, &out));
  EXPECT_EQ(out, "alpha");
  EXPECT_EQ(c.size(), 1u);
}

TEST(ClockCache, TracksBytesAndReleasesOnEviction) {
  const std::string value(100, 'x');
  const std::int64_t cost = entry_cost(value);
  // Single shard, room for exactly 3 entries.
  cache::ClockCache<std::string> c(1, 3 * cost, string_cost());
  for (std::uint64_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(c.insert(k, value).inserted);
  }
  EXPECT_EQ(c.bytes(), 3 * cost);
  // A fourth insert must evict exactly one entry; the tracked bytes never
  // exceed the budget.
  const cache::InsertResult r = c.insert(3, value);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(r.evicted, 1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.bytes(), 3 * cost);
  EXPECT_LE(c.bytes(), c.byte_budget());
  EXPECT_EQ(c.evictions(), 1);
}

TEST(ClockCache, SecondChanceKeepsRecentlyTouchedEntry) {
  const std::string value(100, 'x');
  const std::int64_t cost = entry_cost(value);
  cache::ClockCache<std::string> c(1, 3 * cost, string_cost());
  ASSERT_TRUE(c.insert(0, value).inserted);  // A
  ASSERT_TRUE(c.insert(1, value).inserted);  // B
  ASSERT_TRUE(c.insert(2, value).inserted);  // C
  // All three carry insert-time reference bits, so the first eviction sweep
  // clears every bit in one revolution and evicts where the hand started:
  ASSERT_TRUE(c.insert(3, value).inserted);  // D evicts A
  EXPECT_FALSE(c.lookup(0, nullptr));
  // Residents now: B and C with cleared bits, D referenced. A hit on B sets
  // its bit again — the second chance — so the next eviction must take the
  // untouched C, never the re-referenced B.
  EXPECT_TRUE(c.lookup(1, nullptr));
  ASSERT_TRUE(c.insert(4, value).inserted);  // E evicts C
  EXPECT_TRUE(c.lookup(1, nullptr)) << "re-referenced entry was evicted";
  EXPECT_FALSE(c.lookup(2, nullptr)) << "unreferenced entry survived";
  EXPECT_EQ(c.size(), 3u);
}

TEST(ClockCache, OversizedEntryIsRejected) {
  cache::ClockCache<std::string> c(1, 128, string_cost());
  const cache::InsertResult r = c.insert(1, std::string(1024, 'x'));
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.bytes(), 0);
  EXPECT_EQ(c.admission_rejects(), 1);
}

TEST(ClockCache, TinyBudgetNeverGoesUnbounded) {
  // A positive budget smaller than the shard count used to truncate the
  // per-shard budget to 0 — ClockCache's "unbounded" sentinel — silently
  // disabling the bound. It now clamps to 1 byte per shard: nothing is
  // admitted, but bytes() <= byte_budget() holds.
  cache::ClockCache<std::string> c(16, 7, string_cost());
  for (std::uint64_t k = 0; k < 64; ++k) {
    const cache::InsertResult r = c.insert(k, "payload");
    EXPECT_FALSE(r.inserted);
    EXPECT_TRUE(r.rejected);
  }
  EXPECT_EQ(c.size(), 0u);
  EXPECT_LE(c.bytes(), c.byte_budget());
}

TEST(ClockCache, PinnedEntryIsNeverEvicted) {
  const std::string value(100, 'x');
  const std::int64_t cost = entry_cost(value);
  cache::ClockCache<std::string> c(1, 2 * cost, string_cost());
  ASSERT_TRUE(c.insert(1, value).inserted);
  ASSERT_TRUE(c.insert(2, value).inserted);
  auto pin1 = c.acquire(1);
  auto pin2 = c.acquire(2);
  ASSERT_NE(pin1.value(), nullptr);
  ASSERT_NE(pin2.value(), nullptr);
  // Both residents pinned: the insert cannot make room and must refuse
  // rather than break the budget or destroy a pinned entry.
  const cache::InsertResult r = c.insert(3, value);
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(*pin1.value(), value);
  EXPECT_LE(c.bytes(), c.byte_budget());
  pin1.release();
  // With one pin released, the next insert evicts the unpinned entry and
  // the pinned one survives.
  EXPECT_TRUE(c.insert(3, value).inserted);
  EXPECT_NE(pin2.value(), nullptr);
  EXPECT_EQ(*pin2.value(), value);
  EXPECT_TRUE(c.lookup(2, nullptr));
  EXPECT_FALSE(c.lookup(1, nullptr));
}

TEST(ClockCache, ClearSkipsPinnedEntries) {
  cache::ClockCache<std::string> c(2, 0, string_cost());
  ASSERT_TRUE(c.insert(1, "keep").inserted);
  ASSERT_TRUE(c.insert(2, "drop").inserted);
  ASSERT_TRUE(c.insert(3, "drop").inserted);
  auto pin = c.acquire(1);
  c.clear();
  EXPECT_EQ(c.size(), 1u);
  ASSERT_NE(pin.value(), nullptr);
  EXPECT_EQ(*pin.value(), "keep");
  pin.release();
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.bytes(), 0);
}

TEST(ClockCache, ShardStatsFoldToTotals) {
  cache::ClockCache<std::string> c(4, 0, string_cost());
  for (std::uint64_t k = 0; k < 64; ++k) {
    c.insert(k, "v" + std::to_string(k));
  }
  for (std::uint64_t k = 0; k < 64; ++k) c.lookup(k, nullptr);
  for (std::uint64_t k = 64; k < 96; ++k) c.lookup(k, nullptr);
  std::size_t entries = 0;
  std::int64_t hits = 0, misses = 0, bytes = 0;
  for (const auto& s : c.shard_stats()) {
    entries += s.entries;
    hits += s.hits;
    misses += s.misses;
    bytes += s.bytes;
  }
  EXPECT_EQ(entries, c.size());
  EXPECT_EQ(hits, 64);
  EXPECT_EQ(misses, 32);
  EXPECT_EQ(bytes, c.bytes());
}

// Randomized differential check against a reference map: whatever the
// insert/lookup/evict interleaving, (a) tracked bytes never exceed the
// budget, (b) every hit returns the exact value the reference holds, and
// (c) entry counts and byte accounting agree with a recount.
TEST(ClockCache, RandomizedBudgetAndIntegrityInvariants) {
  util::Rng rng(20260807);
  const std::string small(40, 's');
  const std::string big(400, 'b');
  cache::ClockCache<std::string> c(2, 4096, string_cost());
  std::map<std::uint64_t, std::string> reference;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.index(256);
    if (rng.flip()) {
      const std::string& value = rng.flip(0.25) ? big : small;
      if (c.insert(key, value).inserted) reference[key] = value;
    } else {
      std::string out;
      if (c.lookup(key, &out)) {
        // The cache may have evicted a key the reference still holds (the
        // reference never evicts), but a HIT must match the reference: the
        // cache never invents or mutates values.
        ASSERT_TRUE(reference.count(key)) << "hit for a never-inserted key";
        EXPECT_EQ(out, reference[key]);
      }
    }
    ASSERT_LE(c.bytes(), c.byte_budget());
  }
  // Recount: per-shard stats and global accessors agree.
  std::int64_t bytes = 0;
  std::size_t entries = 0;
  for (const auto& s : c.shard_stats()) {
    bytes += s.bytes;
    entries += s.entries;
  }
  EXPECT_EQ(bytes, c.bytes());
  EXPECT_EQ(entries, c.size());
  EXPECT_GT(c.evictions(), 0);
}

TEST(ClockCache, ConcurrentHammerHoldsInvariants) {
  const std::string value(64, 'x');
  cache::ClockCache<std::string> c(4, 8192, string_cost());
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c, &value, t] {
      util::Rng rng = util::Rng::for_shard(1000, t);
      for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = rng.index(512);
        if (rng.flip()) {
          c.insert(key, value);
        } else {
          std::string out;
          c.lookup(key, &out);
        }
      }
    });
  }
  // A stats poller races the mutators (the TSan target of this suite).
  std::thread poller([&c, &stop] {
    while (!stop.load()) {
      std::int64_t bytes = 0;
      for (const auto& s : c.shard_stats()) bytes += s.bytes;
      EXPECT_LE(bytes, c.byte_budget());
      EXPECT_LE(c.bytes(), c.byte_budget());
      c.size();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true);
  poller.join();
  EXPECT_LE(c.bytes(), c.byte_budget());
}

// ---------------------------------------------------------------------------
// Snapshot container

cache::Snapshot sample_snapshot() {
  cache::Snapshot snapshot;
  snapshot.build = "ermes-test 9.9.9";
  cache::SnapshotSection section;
  section.id = 7;
  section.records.push_back({42, "payload-a"});
  section.records.push_back({7, "payload-b"});
  section.records.push_back({1000, std::string("\x00\x01\xff", 3)});
  snapshot.sections.push_back(section);
  return snapshot;
}

TEST(Snapshot, RoundTripsSectionsAndRecords) {
  const std::string data = cache::write_snapshot(sample_snapshot());
  cache::Snapshot restored;
  std::string error;
  ASSERT_TRUE(cache::read_snapshot(data, &restored, &error)) << error;
  EXPECT_EQ(restored.build, "ermes-test 9.9.9");
  ASSERT_EQ(restored.sections.size(), 1u);
  EXPECT_EQ(restored.sections[0].id, 7u);
  ASSERT_EQ(restored.sections[0].records.size(), 3u);
  // Records come back sorted by key (deterministic serialization).
  EXPECT_EQ(restored.sections[0].records[0].key, 7u);
  EXPECT_EQ(restored.sections[0].records[1].key, 42u);
  EXPECT_EQ(restored.sections[0].records[2].key, 1000u);
  EXPECT_EQ(restored.sections[0].records[2].payload.size(), 3u);
}

TEST(Snapshot, SerializationIsDeterministic) {
  cache::Snapshot a = sample_snapshot();
  cache::Snapshot b = sample_snapshot();
  // Same contents in a different record order serialize byte-identically.
  std::reverse(b.sections[0].records.begin(), b.sections[0].records.end());
  EXPECT_EQ(cache::write_snapshot(a), cache::write_snapshot(b));
}

TEST(Snapshot, RejectsBadMagic) {
  std::string data = cache::write_snapshot(sample_snapshot());
  data[0] = 'X';
  cache::Snapshot out;
  std::string error;
  EXPECT_FALSE(cache::read_snapshot(data, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Snapshot, RejectsFutureFormatVersionNamingBothVersions) {
  std::string data = cache::write_snapshot(sample_snapshot());
  data[4] = static_cast<char>(cache::kSnapshotFormatVersion + 1);
  cache::Snapshot out;
  std::string error;
  EXPECT_FALSE(cache::read_snapshot(data, &out, &error));
  // The error names the file's version, the supported version, and the
  // writing build, so "written by a newer ermes" is diagnosable.
  EXPECT_NE(error.find("v" + std::to_string(cache::kSnapshotFormatVersion + 1)),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("v" + std::to_string(cache::kSnapshotFormatVersion)),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("ermes-test 9.9.9"), std::string::npos) << error;
}

TEST(Snapshot, RejectsTruncation) {
  const std::string data = cache::write_snapshot(sample_snapshot());
  cache::Snapshot out;
  std::string error;
  for (const std::size_t keep : {data.size() - 1, data.size() / 2,
                                 std::size_t{5}, std::size_t{0}}) {
    EXPECT_FALSE(cache::read_snapshot(data.substr(0, keep), &out, &error))
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST(Snapshot, RejectsCorruptBody) {
  std::string data = cache::write_snapshot(sample_snapshot());
  data[data.size() - 3] ^= 0x40;  // flip a bit inside the body
  cache::Snapshot out;
  std::string error;
  EXPECT_FALSE(cache::read_snapshot(data, &out, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// EvalCache on the bounded core

// Distinct systems derived from the motivating example by re-labeling one
// process latency; each gets a distinct fingerprint and report.
sysmodel::SystemModel variant(std::int64_t i) {
  sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  sys.set_latency(1, 5 + (i % 17));
  sys.set_channel_latency(0, 2 + (i % 11));
  return sys;
}

TEST(EvalCacheBounded, AnalyzeIsBitIdenticalToUncachedUnderEviction) {
  // A budget small enough to force constant eviction across the loop.
  analysis::EvalCache cache(4, 16 * 1024);
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t i = 0; i < 64; ++i) {
      const sysmodel::SystemModel sys = variant(i);
      const analysis::PerformanceReport cached = cache.analyze(sys);
      const analysis::PerformanceReport direct = analysis::analyze_system(sys);
      ASSERT_EQ(cached.live, direct.live);
      ASSERT_EQ(cached.ct_num, direct.ct_num);
      ASSERT_EQ(cached.ct_den, direct.ct_den);
      ASSERT_EQ(cached.cycle_time, direct.cycle_time);
      ASSERT_EQ(cached.critical_channels, direct.critical_channels);
      ASSERT_LE(cache.bytes(), cache.byte_budget());
    }
  }
  EXPECT_GT(cache.evictions(), 0);
}

TEST(EvalCacheBounded, BatchDuplicatesResolveWhenInsertsAreRejected) {
  // In-batch duplicates must copy their leader's report even when the cache
  // refuses every insert — a degenerate budget makes each family's shard
  // budget 1 byte, so the leader's freshly computed report is never
  // admitted and a cache round trip in pass 3 would miss (the old bug:
  // duplicates silently returned a default report, live=false).
  analysis::EvalCache cache(4, 3);
  tmg::CycleMeanSolver solver;
  const sysmodel::SystemModel a = variant(1);
  const sysmodel::SystemModel b = variant(2);
  const std::vector<const sysmodel::SystemModel*> batch = {&a, &a, &b, &a,
                                                           &b};
  const std::vector<analysis::PerformanceReport> reports =
      cache.analyze_batch(batch, &solver);
  ASSERT_EQ(reports.size(), batch.size());
  EXPECT_EQ(cache.size(), 0u) << "degenerate budget should admit nothing";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const analysis::PerformanceReport direct =
        analysis::analyze_system(*batch[i]);
    ASSERT_TRUE(reports[i].live) << "duplicate got a default report at " << i;
    EXPECT_EQ(reports[i].ct_num, direct.ct_num);
    EXPECT_EQ(reports[i].ct_den, direct.ct_den);
    EXPECT_EQ(reports[i].cycle_time, direct.cycle_time);
    EXPECT_EQ(reports[i].critical_channels, direct.critical_channels);
  }
}

TEST(EvalCacheBounded, SnapshotRoundTripsAllThreeFamilies) {
  const std::string path = ::testing::TempDir() + "/eval_cache_rt.snap";
  analysis::EvalCache cache(4);
  const sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  const std::uint64_t fp = analysis::system_fingerprint(sys);
  const analysis::PerformanceReport report = cache.analyze(sys);

  analysis::OrderedEval eval;
  eval.input_orders = {{0, 1}, {2}};
  eval.output_orders = {{3}, {}};
  eval.report = report;
  cache.insert_eval(fp, eval);
  cache.insert_aux(analysis::fingerprint_mix(fp, 7), {1, -2, 3'000'000'000});

  std::string error;
  ASSERT_TRUE(cache.save_snapshot(path, &error)) << error;

  analysis::EvalCache restored(4);
  std::size_t count = 0;
  ASSERT_TRUE(restored.load_snapshot(path, &error, &count)) << error;
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(restored.size(), cache.size());
  // Byte accounting is reproduced exactly (costs use size(), not capacity).
  EXPECT_EQ(restored.bytes(), cache.bytes());

  analysis::PerformanceReport r2;
  ASSERT_TRUE(restored.lookup(fp, &r2));
  EXPECT_EQ(r2.ct_num, report.ct_num);
  EXPECT_EQ(r2.ct_den, report.ct_den);
  EXPECT_EQ(r2.cycle_time, report.cycle_time);
  EXPECT_EQ(r2.critical_processes, report.critical_processes);
  analysis::OrderedEval e2;
  ASSERT_TRUE(restored.lookup_eval(fp, &e2));
  EXPECT_EQ(e2.input_orders, eval.input_orders);
  EXPECT_EQ(e2.output_orders, eval.output_orders);
  EXPECT_EQ(e2.report.ct_num, report.ct_num);
  std::vector<std::int64_t> a2;
  ASSERT_TRUE(restored.lookup_aux(analysis::fingerprint_mix(fp, 7), &a2));
  EXPECT_EQ(a2, (std::vector<std::int64_t>{1, -2, 3'000'000'000}));
}

TEST(EvalCacheBounded, RestoreRespectsByteBudget) {
  const std::string path = ::testing::TempDir() + "/eval_cache_budget.snap";
  analysis::EvalCache big(4);  // unbounded
  for (std::int64_t i = 0; i < 128; ++i) big.analyze(variant(i));
  std::string error;
  ASSERT_TRUE(big.save_snapshot(path, &error)) << error;

  analysis::EvalCache small(4, big.bytes() / 4);
  std::size_t count = 0;
  ASSERT_TRUE(small.load_snapshot(path, &error, &count)) << error;
  EXPECT_GT(count, 0u);
  // Restored entries pass through normal admission: whatever over-fills the
  // budget is evicted or refused, so only a fraction stays resident and the
  // budget invariant holds at the end of the load.
  EXPECT_LT(small.size(), big.size());
  EXPECT_GT(small.size(), 0u);
  EXPECT_LE(small.bytes(), small.byte_budget());
}

TEST(EvalCacheBounded, LoadRejectsCorruptFileAndStaysCold) {
  const std::string path = ::testing::TempDir() + "/eval_cache_bad.snap";
  analysis::EvalCache cache(4);
  cache.analyze(sysmodel::make_dac14_motivating_example());
  std::string error;
  ASSERT_TRUE(cache.save_snapshot(path, &error)) << error;

  // Corrupt one payload byte: checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -2, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -2, SEEK_END);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
  }
  analysis::EvalCache fresh(4);
  std::size_t count = 123;
  EXPECT_FALSE(fresh.load_snapshot(path, &error, &count));
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(fresh.size(), 0u) << "rejected snapshot must leave cache cold";
  EXPECT_EQ(fresh.bytes(), 0);
  EXPECT_FALSE(error.empty());

  // And a missing file fails cleanly too.
  EXPECT_FALSE(fresh.load_snapshot(path + ".does-not-exist", &error));
  EXPECT_EQ(fresh.size(), 0u);
}

// The satellite regression: shard_stats(), window_hit_rate(), bytes(), and
// size() polled concurrently with mutating traffic (CI runs this binary
// under TSan; the assertions also pin the fold-to-totals contract).
TEST(EvalCacheBounded, ShardStatsAndWindowRateUnderConcurrentMutation) {
  analysis::EvalCache cache(8, 64 * 1024);
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 3; ++t) {
    mutators.emplace_back([&cache, t] {
      for (std::int64_t i = 0; i < 200; ++i) {
        cache.analyze(variant(t * 200 + (i % 97)));
        std::vector<std::int64_t> aux;
        const std::uint64_t key =
            analysis::fingerprint_mix(static_cast<std::uint64_t>(i), t);
        if (!cache.lookup_aux(key, &aux)) {
          cache.insert_aux(key, {i, t});
        }
      }
    });
  }
  std::thread poller([&cache, &stop] {
    while (!stop.load()) {
      std::size_t entries = 0;
      std::int64_t bytes = 0;
      for (const auto& s : cache.shard_stats()) {
        entries += s.entries;
        bytes += s.bytes;
      }
      EXPECT_LE(bytes, cache.byte_budget());
      const double rate = cache.window_hit_rate();
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, 1.0);
      const double cumulative = cache.hit_rate();
      EXPECT_GE(cumulative, 0.0);
      EXPECT_LE(cumulative, 1.0);
      cache.bytes();
      cache.size();
    }
  });
  for (auto& m : mutators) m.join();
  stop.store(true);
  poller.join();

  // Quiescent recount: per-shard stats fold exactly to the totals.
  std::size_t entries = 0;
  std::int64_t hits = 0, misses = 0, bytes = 0;
  for (const auto& s : cache.shard_stats()) {
    entries += s.entries;
    hits += s.hits;
    misses += s.misses;
    bytes += s.bytes;
  }
  EXPECT_EQ(entries, cache.size());
  EXPECT_EQ(hits, cache.hits());
  EXPECT_EQ(misses, cache.misses());
  EXPECT_EQ(bytes, cache.bytes());
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

}  // namespace
}  // namespace ermes
