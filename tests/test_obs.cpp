// Unit tests for the telemetry subsystem: instrument semantics, JSON
// snapshot round-trip, trace spans (nesting + Chrome trace well-formedness),
// registry reset, and the sim kernel's stall accounting checked against a
// hand-computed rendezvous schedule.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/quantile.h"
#include "obs/report.h"
#include "obs/request_context.h"
#include "obs/span.h"
#include "sim/kernel.h"
#include "sim/stall_report.h"
#include "util/timer.h"

namespace ermes::obs {
namespace {

// ---- mini JSON parser --------------------------------------------------------
//
// Just enough recursive descent to round-trip what the exporters emit:
// objects, arrays, strings (with \uXXXX escapes), and numbers.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::monostate, double, std::string, JsonArray, JsonObject> v;

  bool is_number() const { return std::holds_alternative<double>(v); }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const JsonArray& arr() const { return std::get<JsonArray>(v); }
  const JsonObject& obj() const { return std::get<JsonObject>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage in JSON";
    return value;
  }

  bool failed() const { return failed_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      failed_ = true;
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    if (peek() != c) {
      failed_ = true;
      return false;
    }
    ++pos_;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonObject out;
    consume('{');
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (!failed_) {
      std::string key = parse_string();
      consume(':');
      out.emplace(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume('}');
      break;
    }
    return JsonValue{std::move(out)};
  }

  JsonValue parse_array() {
    JsonArray out;
    consume('[');
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (!failed_) {
      out.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume(']');
      break;
    }
    return JsonValue{std::move(out)};
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            // \uXXXX: the exporters only emit it for control characters.
            out.push_back(static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16)));
            pos_ += 4;
            break;
          default: out.push_back(esc); break;
        }
      } else {
        out.push_back(c);
      }
    }
    consume('"');
    return out;
  }

  JsonValue parse_number() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      failed_ = true;
      return JsonValue{};
    }
    const double value = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return JsonValue{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// Restores the process-wide enable flag on scope exit so tests cannot leak
// telemetry state into each other.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

// ---- bucketing ---------------------------------------------------------------

TEST(HistogramBuckets, IndexMatchesDocumentedRanges) {
  EXPECT_EQ(bucket_index(-5), 0);
  EXPECT_EQ(bucket_index(0), 0);
  EXPECT_EQ(bucket_index(1), 1);
  EXPECT_EQ(bucket_index(2), 2);
  EXPECT_EQ(bucket_index(3), 2);
  EXPECT_EQ(bucket_index(4), 3);
  EXPECT_EQ(bucket_index(7), 3);
  EXPECT_EQ(bucket_index(8), 4);
  EXPECT_EQ(bucket_index(std::numeric_limits<std::int64_t>::max()),
            kHistogramBuckets - 1);
}

TEST(HistogramBuckets, UpperBoundsBracketTheirValues) {
  for (std::int64_t v : {1, 2, 3, 100, 1023, 1024, 1 << 20}) {
    const int b = bucket_index(v);
    EXPECT_LE(v, bucket_upper_bound(b)) << "v=" << v;
    if (b > 1) {
      EXPECT_GT(v, bucket_upper_bound(b - 1)) << "v=" << v;
    }
  }
}

// ---- instrument semantics ----------------------------------------------------

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetOverwritesAddAccumulates) {
  Gauge g;
  g.set(10);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(HistogramDataTest, ObserveTracksExactMoments) {
  HistogramData h;
  for (std::int64_t v : {5, 1, 9, 0}) h.observe(v);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 15);
  EXPECT_EQ(h.min, 0);
  EXPECT_EQ(h.max, 9);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  EXPECT_EQ(h.buckets[bucket_index(0)], 1);
  EXPECT_EQ(h.buckets[bucket_index(1)], 1);
  EXPECT_EQ(h.buckets[bucket_index(5)], 1);
  EXPECT_EQ(h.buckets[bucket_index(9)], 1);
}

TEST(HistogramDataTest, MergeMatchesSequentialObserve) {
  HistogramData a, b, both;
  for (std::int64_t v : {3, 100}) { a.observe(v); both.observe(v); }
  for (std::int64_t v : {1, 7, 50}) { b.observe(v); both.observe(v); }
  a.merge(b);
  EXPECT_EQ(a.count, both.count);
  EXPECT_EQ(a.sum, both.sum);
  EXPECT_EQ(a.min, both.min);
  EXPECT_EQ(a.max, both.max);
  EXPECT_EQ(a.buckets, both.buckets);
}

TEST(HistogramDataTest, QuantileReturnsBucketUpperBound) {
  HistogramData h;
  for (int i = 0; i < 99; ++i) h.observe(4);   // bucket 3: [4,7]
  h.observe(1000);                             // bucket 10: [512,1023]
  EXPECT_EQ(h.quantile(0.5), bucket_upper_bound(bucket_index(4)));
  // The bucket bound is clamped by the exact max, so the tail quantile is
  // the observed maximum rather than the looser 2^k - 1.
  EXPECT_EQ(h.quantile(1.0), 1000);
}

TEST(HistogramTest, AtomicMirrorsPlainData) {
  Histogram h;
  h.observe(5);
  h.observe(600);
  HistogramData batch;
  batch.observe(2);
  batch.observe(70);
  h.record(batch);
  const HistogramData snap = h.snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.sum, 677);
  EXPECT_EQ(snap.min, 2);
  EXPECT_EQ(snap.max, 600);
}

// ---- registry ----------------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x.count").value(), 3);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("a");
  reg.gauge("b").set(7);
  reg.histogram("c").observe(12);
  c.add(5);
  reg.reset();
  EXPECT_EQ(reg.entries().size(), 3u);  // registrations survive
  EXPECT_EQ(c.value(), 0);              // old reference still valid
  EXPECT_EQ(reg.gauge("b").value(), 0);
  EXPECT_EQ(reg.histogram("c").count(), 0);
}

TEST(RegistryTest, FreeFunctionsGateOnEnabledFlag) {
  const std::string name = "test.gated_counter";
  set_enabled(false);
  count(name, 5);
  for (const Registry::Entry& e : Registry::global().entries()) {
    EXPECT_NE(e.name, name) << "disabled count() must not register";
  }
  {
    EnabledGuard guard(true);
    count(name, 5);
    gauge_set("test.gated_gauge", 9);
    observe("test.gated_hist", 100);
  }
  EXPECT_EQ(Registry::global().counter(name).value(), 5);
  EXPECT_EQ(Registry::global().gauge("test.gated_gauge").value(), 9);
  EXPECT_EQ(Registry::global().histogram("test.gated_hist").count(), 1);
}

TEST(RegistryTest, JsonSnapshotRoundTrips) {
  Registry reg;
  reg.counter("howard.iterations").add(42);
  reg.gauge("dse.frontier").set(-3);
  Histogram& h = reg.histogram("sim.put_wait");
  h.observe(0);
  h.observe(5);
  h.observe(1000);

  const std::string json = reg.to_json();
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonObject& obj = root.obj();
  EXPECT_EQ(obj.at("counters").obj().at("howard.iterations").num(), 42.0);
  EXPECT_EQ(obj.at("gauges").obj().at("dse.frontier").num(), -3.0);
  const JsonObject& hist = obj.at("histograms").obj().at("sim.put_wait").obj();
  EXPECT_EQ(hist.at("count").num(), 3.0);
  EXPECT_EQ(hist.at("sum").num(), 1005.0);
  EXPECT_EQ(hist.at("min").num(), 0.0);
  EXPECT_EQ(hist.at("max").num(), 1000.0);
  // Buckets serialize as [upper_bound, count] pairs covering every sample.
  double bucket_total = 0.0;
  for (const JsonValue& pair : hist.at("buckets").arr()) {
    ASSERT_EQ(pair.arr().size(), 2u);
    bucket_total += pair.arr()[1].num();
  }
  EXPECT_EQ(bucket_total, 3.0);
}

TEST(JsonUtilTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ReportTest, TablesIncludeRegisteredInstruments) {
  Registry reg;
  reg.counter("m.events").add(7);
  reg.histogram("m.wait").observe(16);
  const std::string text = metrics_tables(reg);
  EXPECT_NE(text.find("m.events"), std::string::npos);
  EXPECT_NE(text.find("m.wait"), std::string::npos);
  // Prefix filtering drops everything else.
  EXPECT_EQ(metrics_tables(reg, "nomatch").find("m.events"),
            std::string::npos);
}

// ---- spans -------------------------------------------------------------------

TEST(SpanTest, DisabledSpanRecordsNothing) {
  set_enabled(false);
  SpanRecorder& rec = SpanRecorder::global();
  rec.clear();
  { ObsSpan span("should_not_appear"); }
  EXPECT_EQ(rec.size(), 0u);
}

TEST(SpanTest, NestedSpansAreContainedInParent) {
  EnabledGuard guard(true);
  SpanRecorder& rec = SpanRecorder::global();
  rec.clear();
  {
    ObsSpan outer("outer", "test");
    {
      ObsSpan inner("inner", "test");
    }
  }
  const std::vector<SpanEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  // Children close first, so they precede their parent in the buffer.
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(inner.dur_ns, 0);
}

TEST(SpanTest, CloseIsIdempotentAndEndsTheSpanEarly) {
  EnabledGuard guard(true);
  SpanRecorder& rec = SpanRecorder::global();
  rec.clear();
  ObsSpan span("early", "test");
  EXPECT_TRUE(span.active());
  span.close();
  EXPECT_FALSE(span.active());
  span.close();  // no double record
  EXPECT_EQ(rec.size(), 1u);
}

TEST(SpanRecorderTest, RingKeepsNewestAndCountsDrops) {
  SpanRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    rec.record("s" + std::to_string(i), "test", /*start_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2);
  const std::vector<SpanEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "s2");  // oldest surviving
  EXPECT_EQ(events.back().name, "s5");
}

TEST(SpanRecorderTest, ChromeTraceJsonIsWellFormed) {
  SpanRecorder rec(/*capacity=*/16);
  rec.record("alpha", "test", 1500, 2500);       // 1.5us .. 4us
  rec.record("beta \"quoted\"", "test", 0, 10);  // name needs escaping
  const std::string json = rec.to_chrome_json();
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  const JsonArray& events = root.obj().at("traceEvents").arr();
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& ev : events) {
    const JsonObject& obj = ev.obj();
    EXPECT_EQ(obj.at("ph").str(), "X");
    EXPECT_GE(obj.at("ts").num(), 0.0);
    EXPECT_GE(obj.at("dur").num(), 0.0);
    EXPECT_TRUE(obj.count("pid"));
    EXPECT_TRUE(obj.count("tid"));
  }
  // ts/dur are microseconds at nanosecond resolution.
  EXPECT_DOUBLE_EQ(events[0].obj().at("ts").num(), 1.5);
  EXPECT_DOUBLE_EQ(events[0].obj().at("dur").num(), 2.5);
  EXPECT_EQ(events[1].obj().at("name").str(), "beta \"quoted\"");
}

// ---- util::Timer -------------------------------------------------------------

TEST(TimerTest, FeedsHistogramOnlyWhenEnabled) {
  Histogram hist;
  set_enabled(false);
  { util::Timer t(hist); }
  EXPECT_EQ(hist.count(), 0);
  {
    EnabledGuard guard(true);
    util::Timer t(hist);
  }
  EXPECT_EQ(hist.count(), 1);
  EXPECT_GE(hist.snapshot().min, 0);
}

// ---- kernel stall accounting -------------------------------------------------
//
// Hand-computed rendezvous schedule. producer = compute(3); put(a) and
// consumer = get(a); compute(5), channel latency 2. Timeline for the first
// two transfers:
//
//   t=0   cons blocks on get (no put pending); prod computes until 3
//   t=3   prod puts, cons was waiting 3 cycles -> transfer until 5
//   t=5   prod computes until 8; cons computes until 10
//   t=8   prod blocks on put (cons still computing)
//   t=10  cons gets, prod was waiting 2 cycles -> transfer until 12
//   t=12  second transfer completes, run stops
TEST(StallAccountingTest, MatchesHandComputedSchedule) {
  sim::Kernel kernel;
  const sim::SimProcessId prod = kernel.add_process(
      "prod",
      sim::Program{sim::Statement::compute(3), sim::Statement::put(0)});
  const sim::SimProcessId cons = kernel.add_process(
      "cons",
      sim::Program{sim::Statement::get(0), sim::Statement::compute(5)});
  const sim::SimChannelId a = kernel.add_channel("a", prod, cons, 2);

  const sim::RunResult run = kernel.run(a, 2);
  ASSERT_FALSE(run.deadlock.deadlocked);
  ASSERT_EQ(run.cycles, 12);

  const sim::StallReport report = sim::collect_stalls(kernel);
  ASSERT_EQ(report.processes.size(), 2u);
  ASSERT_EQ(report.channels.size(), 1u);

  const sim::ProcessStall& ps = report.processes[0];
  EXPECT_EQ(ps.computing, 6);      // [0,3] + [5,8]
  EXPECT_EQ(ps.waiting, 2);        // [8,10]
  EXPECT_EQ(ps.transferring, 4);   // [3,5] + [10,12]
  EXPECT_EQ(ps.total(), 12);       // the split covers the whole run

  const sim::ProcessStall& cs = report.processes[1];
  EXPECT_EQ(cs.waiting, 3);        // [0,3]
  EXPECT_EQ(cs.computing, 5);      // [5,10]
  EXPECT_EQ(cs.transferring, 4);
  EXPECT_EQ(cs.total(), 12);

  const sim::ChannelStall& ch = report.channels[0];
  EXPECT_EQ(ch.transfers, 2);
  EXPECT_EQ(ch.blocked_puts, 1);   // only the t=8 put actually suspended
  EXPECT_EQ(ch.blocked_gets, 1);
  EXPECT_EQ(ch.put_wait_cycles, 2);
  EXPECT_EQ(ch.get_wait_cycles, 3);
  // Every episode lands in the histograms, including the zero-wait ones.
  EXPECT_EQ(ch.put_wait.count, 2);
  EXPECT_EQ(ch.put_wait.sum, 2);
  EXPECT_EQ(ch.put_wait.max, 2);
  EXPECT_EQ(ch.get_wait.count, 2);
  EXPECT_EQ(ch.get_wait.sum, 3);
  EXPECT_EQ(ch.get_wait.max, 3);

  // The rendered report names both tables.
  const std::string text = report.to_text(0);
  EXPECT_NE(text.find("stall accounting over 12 cycles"), std::string::npos);
  EXPECT_NE(text.find("prod"), std::string::npos);
  EXPECT_NE(text.find("blocked puts"), std::string::npos);
}

TEST(StallAccountingTest, PublishMetricsFillsSimPrefix) {
  EnabledGuard guard(true);
  Registry::global().reset();
  sim::Kernel kernel;
  const sim::SimProcessId prod = kernel.add_process(
      "p", sim::Program{sim::Statement::compute(3), sim::Statement::put(0)});
  const sim::SimProcessId cons = kernel.add_process(
      "c", sim::Program{sim::Statement::get(0), sim::Statement::compute(5)});
  const sim::SimChannelId ch = kernel.add_channel("a", prod, cons, 2);
  kernel.run(ch, 2);
  kernel.publish_metrics("simtest");

  Registry& reg = Registry::global();
  EXPECT_EQ(reg.counter("simtest.runs").value(), 1);
  EXPECT_EQ(reg.counter("simtest.transfers").value(), 2);
  EXPECT_EQ(reg.counter("simtest.blocked_puts").value(), 1);
  EXPECT_EQ(reg.counter("simtest.blocked_gets").value(), 1);
  EXPECT_EQ(reg.counter("simtest.channel.a.put_wait_cycles").value(), 2);
  EXPECT_EQ(reg.counter("simtest.channel.a.get_wait_cycles").value(), 3);
  EXPECT_EQ(reg.counter("simtest.process.p.compute_cycles").value(), 6);
  EXPECT_EQ(reg.counter("simtest.process.c.waiting_cycles").value(), 3);
  EXPECT_EQ(reg.histogram("simtest.channel.a.put_wait").count(), 2);
}

// ---- quantile histogram ------------------------------------------------------

TEST(QuantileTest, BucketIndexRoundTripsExactRange) {
  // Below kQuantileExactLimit every value owns its bucket: index == value
  // and the bucket upper bound is the value itself.
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{37},
                         kQuantileExactLimit - 1}) {
    const int b = quantile_bucket_index(v);
    EXPECT_EQ(b, static_cast<int>(v));
    EXPECT_EQ(quantile_bucket_upper(b), v);
  }
  EXPECT_EQ(quantile_bucket_index(-5), 0);  // negatives clamp to bucket 0
}

TEST(QuantileTest, BucketUpperBoundsBracketLargeValues) {
  // Above the exact range: value <= upper(bucket(value)) and the bucket
  // width bounds relative error by 2^-kQuantilePrecisionBits.
  for (std::int64_t v :
       {std::int64_t{256}, std::int64_t{1000}, std::int64_t{123456789},
        std::int64_t{1} << 40, std::numeric_limits<std::int64_t>::max()}) {
    const int b = quantile_bucket_index(v);
    const std::int64_t upper = quantile_bucket_upper(b);
    ASSERT_GE(upper, v);
    const double rel = static_cast<double>(upper - v) / static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / (1 << kQuantilePrecisionBits))
        << "value " << v << " bucket " << b;
  }
}

TEST(QuantileTest, ExactBelowLimitNearestRankAboveIt) {
  QuantileSnapshot q;
  for (std::int64_t v = 1; v <= 100; ++v) q.observe(v);
  // Values < 256 are exact: the nearest-rank quantile is the value itself.
  EXPECT_EQ(q.quantile(0.50), 50);
  EXPECT_EQ(q.quantile(0.90), 90);
  EXPECT_EQ(q.quantile(0.99), 99);
  EXPECT_EQ(q.quantile(0.0), 1);    // clamped to min
  EXPECT_EQ(q.quantile(1.0), 100);  // clamped to max
  EXPECT_EQ(q.count, 100);
  EXPECT_EQ(q.sum, 5050);
  EXPECT_DOUBLE_EQ(q.mean(), 50.5);
}

TEST(QuantileTest, RelativeErrorBoundHoldsAboveExactRange) {
  QuantileSnapshot q;
  for (std::int64_t v = 1; v <= 10'000; ++v) q.observe(v * 1000);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        1000.0 * std::ceil(p * 10'000.0);  // nearest-rank ground truth
    const double got = static_cast<double>(q.quantile(p));
    EXPECT_GE(got, exact);  // bucket upper bound never under-reports
    EXPECT_LE((got - exact) / exact, 1.0 / (1 << kQuantilePrecisionBits))
        << "p=" << p;
  }
}

TEST(QuantileTest, QuantilesAreMonotoneInQ) {
  QuantileSnapshot q;
  std::int64_t seed = 12345;
  for (int i = 0; i < 5000; ++i) {
    seed = (seed * 6364136223846793005LL + 1442695040888963407LL);
    q.observe((seed >> 33) & ((std::int64_t{1} << 28) - 1));
  }
  std::int64_t prev = q.quantile(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const std::int64_t cur = q.quantile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(QuantileTest, MergeMatchesSequentialObserve) {
  QuantileSnapshot a, b, all;
  for (std::int64_t v = 1; v <= 400; ++v) {
    ((v % 2 == 0) ? a : b).observe(v * 7);
    all.observe(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_EQ(a.sum, all.sum);
  EXPECT_EQ(a.min, all.min);
  EXPECT_EQ(a.max, all.max);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(p), all.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileTest, EmptySnapshotIsAllZero) {
  const QuantileSnapshot q;
  EXPECT_EQ(q.count, 0);
  EXPECT_EQ(q.quantile(0.5), 0);
  EXPECT_EQ(q.quantile(0.99), 0);
  EXPECT_DOUBLE_EQ(q.mean(), 0.0);
  // Merging an empty snapshot is a no-op in both directions.
  QuantileSnapshot other;
  other.observe(42);
  QuantileSnapshot merged = other;
  merged.merge(q);
  EXPECT_EQ(merged.count, 1);
  QuantileSnapshot empty;
  empty.merge(other);
  EXPECT_EQ(empty.quantile(0.5), 42);
}

TEST(QuantileTest, AtomicHistogramMirrorsSnapshot) {
  QuantileHistogram h;
  for (std::int64_t v = 1; v <= 300; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 300);
  const QuantileSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 300);
  EXPECT_EQ(snap.quantile(0.5), 150);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0);
}

TEST(QuantileTest, RegistryObserveQuantileGatesOnEnabled) {
  Registry::global().reset();
  set_enabled(false);
  observe_quantile("q.test.gate", 10);
  EXPECT_EQ(Registry::global().quantile("q.test.gate").count(), 0);
  {
    EnabledGuard guard(true);
    observe_quantile("q.test.gate", 10);
  }
  EXPECT_EQ(Registry::global().quantile("q.test.gate").count(), 1);
  Registry::global().reset();
}

// ---- sliding-window rates ----------------------------------------------------

TEST(WindowRateTest, SumCoversOnlyTheWindow) {
  WindowRate rate(10);
  EXPECT_EQ(rate.window_seconds(), 10);
  for (std::int64_t s = 100; s < 110; ++s) rate.record_at(s, 2);
  EXPECT_EQ(rate.sum_at(109), 20);  // all ten seconds inside the window
  // Five seconds later, the first five seconds have aged out.
  EXPECT_EQ(rate.sum_at(114), 10);
  // A full window later, everything has aged out.
  EXPECT_EQ(rate.sum_at(120), 0);
  EXPECT_DOUBLE_EQ(rate.rate_per_sec_at(109), 2.0);
}

TEST(WindowRateTest, RolloverRepurposesStaleSlots) {
  WindowRate rate(3);
  rate.record_at(5, 100);
  // Second 9 maps onto second 5's ring slot (ring size 4); the stale count
  // must not leak into the new epoch.
  rate.record_at(9, 1);
  EXPECT_EQ(rate.sum_at(9), 1);
  rate.record_at(9, 1);
  EXPECT_EQ(rate.sum_at(9), 2);
  // Going quiet decays to zero; old epochs never resurface.
  EXPECT_EQ(rate.sum_at(13), 0);
}

// ---- Prometheus exposition ---------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(prometheus_name("svc.request_ns"), "ermes_svc_request_ns");
  EXPECT_EQ(prometheus_name("svc.op_ns.open_session"),
            "ermes_svc_op_ns_open_session");
  EXPECT_EQ(prometheus_name("weird-name 1"), "ermes_weird_name_1");
}

TEST(PrometheusTest, RendersEveryInstrumentKind) {
  Registry registry;
  registry.counter("svc.requests.accepted").add(7);
  registry.gauge("svc.queue.waiting").set(3);
  registry.histogram("solve.ns").observe(12);
  for (std::int64_t v = 1; v <= 100; ++v) {
    registry.quantile("svc.request_ns").observe(v);
  }
  const std::string text = render_prometheus(registry);

  EXPECT_NE(text.find("# TYPE ermes_svc_requests_accepted counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_svc_requests_accepted_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ermes_svc_queue_waiting gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_svc_queue_waiting 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ermes_solve_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_solve_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_solve_ns_count 1\n"), std::string::npos);
  // The quantile instrument renders as a histogram plus precomputed
  // quantile gauges.
  EXPECT_NE(text.find("# TYPE ermes_svc_request_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_svc_request_ns_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("ermes_svc_request_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("ermes_svc_request_ns_q{quantile=\"0.5\"} 50\n"),
            std::string::npos);
  EXPECT_NE(text.find("ermes_svc_request_ns_q{quantile=\"0.99\"} 99\n"),
            std::string::npos);
  // Cumulative bucket counts are monotone and end at the total count.
  const std::string bucket_prefix = "ermes_solve_ns_bucket{le=";
  EXPECT_NE(text.find(bucket_prefix), std::string::npos);
  // Every line the renderer emits is newline-terminated.
  EXPECT_EQ(text.back(), '\n');
}

// ---- request context ---------------------------------------------------------

TEST(RequestContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(current_request(), nullptr);
  RequestContext outer;
  outer.id = "\"r1\"";
  {
    RequestScope scope(&outer);
    EXPECT_EQ(current_request(), &outer);
    RequestContext inner;
    {
      RequestScope nested(&inner);
      EXPECT_EQ(current_request(), &inner);
    }
    EXPECT_EQ(current_request(), &outer);
  }
  EXPECT_EQ(current_request(), nullptr);
}

TEST(RequestContextTest, StageTimerAccumulatesIntoCurrentContext) {
  RequestContext ctx;
  {
    RequestScope scope(&ctx);
    { StageTimer t(Stage::kSolve); }
    { StageTimer t(Stage::kSolve); }
    { StageTimer t(Stage::kParse); }
  }
  EXPECT_GE(ctx.stage(Stage::kSolve), 0);
  EXPECT_GE(ctx.stage(Stage::kParse), 0);
  EXPECT_EQ(ctx.stage(Stage::kQueueWait), 0);
  ctx.add(Stage::kQueueWait, 1234);
  EXPECT_EQ(ctx.stage(Stage::kQueueWait), 1234);
  // Outside a scope a StageTimer is inert.
  { StageTimer t(Stage::kRender); }
  EXPECT_EQ(ctx.stage(Stage::kRender), 0);
}

TEST(RequestContextTest, StageNamesAreStable) {
  EXPECT_STREQ(to_string(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(to_string(Stage::kParse), "parse");
  EXPECT_STREQ(to_string(Stage::kCacheProbe), "cache_probe");
  EXPECT_STREQ(to_string(Stage::kSolve), "solve");
  EXPECT_STREQ(to_string(Stage::kRender), "render");
}

TEST(RequestContextTest, UntracedContextSuppressesSpans) {
  EnabledGuard guard(true);
  SpanRecorder::global().clear();
  RequestContext ctx;
  ctx.traced = false;
  {
    RequestScope scope(&ctx);
    ObsSpan span("suppressed");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(SpanRecorder::global().size(), 0u);
  ctx.traced = true;
  {
    RequestScope scope(&ctx);
    ObsSpan span("recorded");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(SpanRecorder::global().size(), 1u);
  SpanRecorder::global().clear();
}

}  // namespace
}  // namespace ermes::obs
