// Unit tests for the DSE methodology: candidate gains, area recovery,
// timing optimization, and the ERMES exploration loop.

#include <gtest/gtest.h>

#include "analysis/performance.h"
#include "apps/mpeg2/characterization.h"
#include "dse/area_recovery.h"
#include "dse/explorer.h"
#include "dse/selection.h"
#include "dse/timing_opt.h"
#include "sysmodel/system.h"

namespace ermes::dse {
namespace {

using sysmodel::ParetoSet;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

// src -> a -> b -> snk; a and b have 3-point frontiers.
struct Fixture {
  SystemModel sys;
  ProcessId a, b;
  Fixture() {
    const ProcessId src = sys.add_process("src", 1);
    a = sys.add_process("a", 0);
    b = sys.add_process("b", 0);
    const ProcessId snk = sys.add_process("snk", 1);
    sys.add_channel("sa", src, a, 1);
    sys.add_channel("ab", a, b, 1);
    sys.add_channel("bs", b, snk, 1);
    ParetoSet set_a;
    set_a.add({"fast", 4, 8.0});
    set_a.add({"mid", 8, 4.0});
    set_a.add({"slow", 16, 2.0});
    sys.set_implementations(a, set_a, 2);  // slow selected
    ParetoSet set_b;
    set_b.add({"fast", 5, 6.0});
    set_b.add({"mid", 10, 3.0});
    set_b.add({"slow", 20, 1.5});
    sys.set_implementations(b, set_b, 2);
  }
};

// ---- selection --------------------------------------------------------------

TEST(SelectionTest, CandidatesIncludeNoOpWithZeroGains) {
  Fixture f;
  const auto cands = candidates_of(f.sys, f.a);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[2].latency_gain, 0);
  EXPECT_DOUBLE_EQ(cands[2].area_gain, 0.0);
}

TEST(SelectionTest, GainSignsFollowParetoStructure) {
  Fixture f;
  const auto cands = candidates_of(f.sys, f.a);
  // Fastest candidate: positive latency gain (16 -> 4), negative area gain.
  EXPECT_EQ(cands[0].latency_gain, 12);
  EXPECT_DOUBLE_EQ(cands[0].area_gain, 2.0 - 8.0);
}

TEST(SelectionTest, ProcessWithoutImplementationsYieldsNoOp) {
  Fixture f;
  const auto cands = candidates_of(f.sys, 0);  // src
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].latency_gain, 0);
}

TEST(SelectionTest, ApplySelectionRoundTrip) {
  Fixture f;
  SelectionVector sel = current_selection(f.sys);
  EXPECT_EQ(sel[static_cast<std::size_t>(f.a)], 2u);
  sel[static_cast<std::size_t>(f.a)] = 0;
  EXPECT_TRUE(apply_selection(f.sys, sel));
  EXPECT_EQ(f.sys.latency(f.a), 4);
  EXPECT_FALSE(apply_selection(f.sys, sel));  // idempotent
}

// ---- area recovery ------------------------------------------------------------

TEST(AreaRecoveryTest, NoSlackMeansNoMove) {
  Fixture f;
  const AreaRecoveryResult result = area_recovery(f.sys, {f.a, f.b}, 0);
  EXPECT_FALSE(result.feasible);
}

TEST(AreaRecoveryTest, RespectsLatencyBudgetOnCriticalCycle) {
  Fixture f;
  // Start from the fastest implementations.
  f.sys.select_implementation(f.a, 0);
  f.sys.select_implementation(f.b, 0);
  // Slack 13 (budget 12 after the strict margin): can afford a: 4->8 (+4)
  // and b: 5->10 (+5) but not both slowest (12 + 15).
  const AreaRecoveryResult result = area_recovery(f.sys, {f.a, f.b}, 13);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.latency_spent, 12);
  EXPECT_GT(result.area_gain, 0.0);
}

TEST(AreaRecoveryTest, NonCriticalProcessesUnconstrained) {
  Fixture f;
  f.sys.select_implementation(f.a, 0);
  f.sys.select_implementation(f.b, 0);
  // Only a is critical; b may take its smallest implementation outright.
  const AreaRecoveryResult result = area_recovery(f.sys, {f.a}, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.b)], 2u);
}

TEST(AreaRecoveryTest, PicksMaximalAreaGainWithinBudget) {
  Fixture f;
  f.sys.select_implementation(f.a, 0);
  f.sys.select_implementation(f.b, 0);
  // Generous slack: everything can go slowest.
  const AreaRecoveryResult result = area_recovery(f.sys, {f.a, f.b}, 1000);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.a)], 2u);
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.b)], 2u);
  EXPECT_NEAR(result.area_gain, (8.0 - 2.0) + (6.0 - 1.5), 1e-9);
}

// ---- timing optimization -------------------------------------------------------

TEST(TimingOptTest, SelectsFasterImplementationsOnCriticalCycle) {
  Fixture f;  // slow everywhere
  const TimingOptResult result = timing_optimization(f.sys, {f.a, f.b}, 100);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.a)], 0u);
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.b)], 0u);
  EXPECT_EQ(result.latency_gain, 12 + 15);
}

TEST(TimingOptTest, StageBOnlySpendsWhatIsNeeded) {
  Fixture f;
  // Need only 9 cycles of gain: a: 16->8 (+8) is not enough alone; the
  // optimizer must reach >= 9 but may then recover area (not everything
  // fastest).
  const TimingOptResult result = timing_optimization(f.sys, {f.a, f.b}, 9);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.latency_gain, 9);
  // Area gain must be strictly better than the all-fastest selection
  // (which costs (8-2)+(6-1.5) = -10.5 of area gain).
  EXPECT_GT(result.area_gain, -10.5);
}

TEST(TimingOptTest, AreaBudgetRespected) {
  Fixture f;
  // Current area = 2 + 1.5 = 3.5. Budget 8.0 allows a->mid (4.0) + b->mid
  // (3.0) = 7, or a->fast(8)+b stays(1.5) = 9.5 > 8.
  const TimingOptResult result =
      timing_optimization(f.sys, {f.a, f.b}, 100, 8.0);
  ASSERT_TRUE(result.feasible);
  double area = 0.0;
  for (ProcessId p = 0; p < f.sys.num_processes(); ++p) {
    if (!f.sys.has_implementations(p)) continue;
    area += f.sys.implementations(p)
                .at(result.selection[static_cast<std::size_t>(p)])
                .area;
  }
  EXPECT_LE(area, 8.0 + 1e-9);
  EXPECT_GT(result.latency_gain, 0);
}

TEST(TimingOptTest, NonCriticalProcessesRecoverArea) {
  Fixture f;
  f.sys.select_implementation(f.b, 0);  // b fast (area 6) but not critical
  const TimingOptResult result = timing_optimization(f.sys, {f.a}, 100);
  ASSERT_TRUE(result.feasible);
  // b should fall back to its smallest implementation.
  EXPECT_EQ(result.selection[static_cast<std::size_t>(f.b)], 2u);
}

// ---- explorer -------------------------------------------------------------------

TEST(ExplorerTest, MeetsTargetOnFixture) {
  Fixture f;
  ExplorerOptions options;
  options.target_cycle_time = 12;  // b's ring slow: 1+20+1 = 22 > 12
  const ExplorationResult result = explore(f.sys, options);
  ASSERT_FALSE(result.history.empty());
  EXPECT_TRUE(result.met_target);
  EXPECT_LT(result.history.back().cycle_time,
            result.history.front().cycle_time);
}

TEST(ExplorerTest, HistoryStartsWithInitAction) {
  Fixture f;
  ExplorerOptions options;
  options.target_cycle_time = 12;
  const ExplorationResult result = explore(f.sys, options);
  EXPECT_EQ(result.history.front().action, Action::kInit);
  EXPECT_EQ(result.history.front().iteration, 0);
}

TEST(ExplorerTest, AreaRecoveryWhenTargetAlreadyMet) {
  Fixture f;
  f.sys.select_implementation(f.a, 0);
  f.sys.select_implementation(f.b, 0);
  ExplorerOptions options;
  options.target_cycle_time = 100;  // loose: CT ~ 12ish
  const ExplorationResult result = explore(f.sys, options);
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_EQ(result.history[1].action, Action::kAreaRecovery);
  EXPECT_LT(result.history.back().area, result.history.front().area);
  EXPECT_TRUE(result.met_target);
}

TEST(ExplorerTest, TerminatesAtFixpoint) {
  Fixture f;
  ExplorerOptions options;
  options.target_cycle_time = 1;  // unattainable
  options.max_iterations = 10;
  const ExplorationResult result = explore(f.sys, options);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.met_target);
  // After picking the fastest implementations nothing else can improve.
  EXPECT_LE(result.history.size(), 4u);
}

TEST(ExplorerTest, ActionStringsStable) {
  EXPECT_STREQ(to_string(Action::kInit), "init");
  EXPECT_STREQ(to_string(Action::kTimingOpt), "timing-opt");
  EXPECT_STREQ(to_string(Action::kAreaRecovery), "area-recovery");
}

// ---- explorer on the MPEG-2 model ------------------------------------------------

TEST(ExplorerMpeg2Test, TimingExplorationImprovesM2) {
  sysmodel::SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 0.55);
  options.max_iterations = 12;
  const ExplorationResult result = explore(sys, options);
  ASSERT_FALSE(result.history.empty());
  EXPECT_LT(result.history.back().cycle_time, ct0);
  EXPECT_TRUE(result.history.back().live);
}

TEST(ExplorerMpeg2Test, AreaRecoveryReducesAreaUnderLooseTarget) {
  sysmodel::SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  mpeg2::select_m1(sys);  // fastest/largest start
  const double area0 = sys.total_area();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 2.0);
  options.max_iterations = 12;
  const ExplorationResult result = explore(sys, options);
  EXPECT_LT(result.history.back().area, area0);
  EXPECT_TRUE(result.met_target);
}

// ---- dual (area-constrained) explorer ---------------------------------------

TEST(DualExplorerTest, ImprovesCtWithinBudgetOnFixture) {
  Fixture f;  // slow/small everywhere: area 3.5, CT 22
  DualExplorerOptions options;
  options.area_budget = 8.0;
  const ExplorationResult result = explore_area_constrained(f.sys, options);
  ASSERT_FALSE(result.history.empty());
  EXPECT_TRUE(result.met_target);  // area stays under budget
  EXPECT_LT(result.history.back().cycle_time,
            result.history.front().cycle_time);
  EXPECT_LE(result.history.back().area, 8.0 + 1e-9);
}

TEST(DualExplorerTest, TightBudgetLimitsSpeedup) {
  Fixture f;
  DualExplorerOptions loose, tight;
  loose.area_budget = 100.0;
  tight.area_budget = 5.0;
  const ExplorationResult fast = explore_area_constrained(f.sys, loose);
  const ExplorationResult slow = explore_area_constrained(f.sys, tight);
  EXPECT_LE(fast.history.back().cycle_time,
            slow.history.back().cycle_time);
  EXPECT_LE(slow.history.back().area, 5.0 + 1e-9);
}

TEST(DualExplorerTest, Mpeg2UnderBudget) {
  sysmodel::SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const double area0 = sys.total_area();
  const double ct0 = analysis::analyze_system(sys).cycle_time;
  DualExplorerOptions options;
  options.area_budget = area0 * 1.15;
  options.max_iterations = 8;
  const ExplorationResult result = explore_area_constrained(sys, options);
  EXPECT_TRUE(result.met_target);
  EXPECT_LT(result.history.back().cycle_time, ct0);
  EXPECT_LE(result.history.back().area, area0 * 1.15 + 1e-9);
}

}  // namespace
}  // namespace ermes::dse
