// Unit tests for latency sensitivity analysis and exploration reporting.

#include <gtest/gtest.h>

#include "analysis/performance.h"
#include "analysis/sensitivity.h"
#include "apps/mpeg2/characterization.h"
#include "dse/explorer.h"
#include "dse/report.h"
#include "ordering/channel_ordering.h"
#include "sysmodel/builder.h"

namespace ermes {
namespace {

using sysmodel::ProcessId;
using sysmodel::SystemModel;

// ---- sensitivity -----------------------------------------------------------

TEST(SensitivityTest, MotivatingExampleOnlyP2Matters) {
  // At the optimum the critical cycle is P2's own ring: only P2's latency
  // moves the cycle time; everyone else has zero marginal effect.
  SystemModel sys = ordering::with_optimal_ordering(
      sysmodel::make_dac14_motivating_example());
  const analysis::SensitivityReport report =
      analysis::latency_sensitivity(sys);
  EXPECT_DOUBLE_EQ(report.base_cycle_time, 12.0);
  ASSERT_FALSE(report.processes.empty());
  // Sorted descending: P2 first with gain 1 CT-cycle per latency cycle.
  EXPECT_EQ(sys.process_name(report.processes[0].process), "P2");
  EXPECT_DOUBLE_EQ(report.processes[0].ct_gain_per_cycle, 1.0);
  EXPECT_TRUE(report.processes[0].on_critical_cycle);
  for (std::size_t i = 1; i < report.processes.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.processes[i].ct_gain_per_cycle, 0.0)
        << sys.process_name(report.processes[i].process);
  }
}

TEST(SensitivityTest, GainBoundedByOneOverTokens) {
  // On any live system the marginal gain per latency cycle is at most 1
  // (critical cycle with a single token) and never negative.
  SystemModel sys = ordering::with_optimal_ordering(
      mpeg2::make_characterized_mpeg2_encoder());
  const analysis::SensitivityReport report =
      analysis::latency_sensitivity(sys, 1000);
  for (const auto& entry : report.processes) {
    EXPECT_GE(entry.ct_gain_per_cycle, -1e-12);
    EXPECT_LE(entry.ct_gain_per_cycle, 1.0 + 1e-12);
  }
}

TEST(SensitivityTest, CriticalProcessesCarryTheGain) {
  SystemModel sys = ordering::with_optimal_ordering(
      mpeg2::make_characterized_mpeg2_encoder());
  const analysis::SensitivityReport report =
      analysis::latency_sensitivity(sys, 1000);
  // Every process with positive gain must be on the critical cycle.
  for (const auto& entry : report.processes) {
    if (entry.ct_gain_per_cycle > 1e-9) {
      EXPECT_TRUE(entry.on_critical_cycle)
          << sys.process_name(entry.process);
    }
  }
}

TEST(SensitivityTest, DeadSystemYieldsEmptyReport) {
  SystemModel sys = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const analysis::SensitivityReport report =
      analysis::latency_sensitivity(sys);
  EXPECT_TRUE(report.processes.empty());
}

TEST(SensitivityTest, SortedDescending) {
  SystemModel sys = ordering::with_optimal_ordering(
      mpeg2::make_characterized_mpeg2_encoder());
  const analysis::SensitivityReport report =
      analysis::latency_sensitivity(sys, 1000);
  for (std::size_t i = 1; i < report.processes.size(); ++i) {
    EXPECT_GE(report.processes[i - 1].ct_gain_per_cycle,
              report.processes[i].ct_gain_per_cycle);
  }
}

// ---- dse report -------------------------------------------------------------

const dse::ExplorationResult& sample_exploration() {
  // The MPEG-2 exploration is a few seconds of ILP; share it across tests.
  static const dse::ExplorationResult result = [] {
    SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
    dse::ExplorerOptions options;
    options.target_cycle_time = static_cast<std::int64_t>(
        analysis::analyze_system(sys).cycle_time * 0.8);
    options.max_iterations = 6;
    return dse::explore(sys, options);
  }();
  return result;
}

TEST(DseReportTest, TableContainsEveryIteration) {
  const dse::ExplorationResult& result = sample_exploration();
  const std::string table =
      dse::history_table(result, result.final_system);
  for (const dse::IterationRecord& rec : result.history) {
    EXPECT_NE(table.find(dse::to_string(rec.action)), std::string::npos);
  }
  EXPECT_NE(table.find("cycle time"), std::string::npos);
}

TEST(DseReportTest, CsvHasHeaderAndRows) {
  const dse::ExplorationResult& result = sample_exploration();
  const std::string csv = dse::history_csv(result);
  EXPECT_EQ(csv.substr(0, 9), "iteration");
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, result.history.size() + 1);
}

TEST(DseReportTest, VerdictSummarizesEndpoints) {
  const dse::ExplorationResult& result = sample_exploration();
  const std::string text = dse::verdict(result);
  EXPECT_NE(text.find("iterations"), std::string::npos);
  EXPECT_NE(text.find("area"), std::string::npos);
  if (result.met_target) {
    EXPECT_EQ(text.rfind("target met", 0), 0u);
  }
}

TEST(DseReportTest, EmptyHistoryHandled) {
  dse::ExplorationResult empty;
  EXPECT_EQ(dse::verdict(empty), "no exploration performed");
}

}  // namespace
}  // namespace ermes
