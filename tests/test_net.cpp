// src/net reactor + event server, and the broker behaviors that only exist
// because of it: request coalescing, cross-request analyze batching, and
// the background cache saver. This suite runs under TSan in CI alongside
// test_svc — the event server's cross-thread send path and the coalesce
// fan-out are exactly the kind of code TSan is for.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_server.h"
#include "net/reactor.h"
#include "svc/broker.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "sysmodel/builder.h"
#include "io/soc_format.h"

namespace ermes {
namespace {

std::string temp_socket(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/ermes_tnet_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

std::string demo_soc() {
  return io::write_soc(sysmodel::make_dac14_motivating_example(), "demo");
}

// ---------------------------------------------------------------------------
// Reactor: both backends behave identically at this API surface.

class ReactorBackend : public ::testing::TestWithParam<bool> {};

TEST_P(ReactorBackend, ReportsPipeReadable) {
  net::Reactor reactor(/*force_poll=*/GetParam());
  ASSERT_TRUE(reactor.valid());
  EXPECT_EQ(reactor.using_epoll(), !GetParam() && reactor.using_epoll());

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  reactor.add(pipe_fds[0], /*want_read=*/true, /*want_write=*/false);

  std::vector<net::Reactor::Event> events;
  EXPECT_EQ(reactor.wait(&events, 0), 0);  // nothing readable yet

  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  ASSERT_EQ(reactor.wait(&events, 1000), 1);
  EXPECT_EQ(events[0].fd, pipe_fds[0]);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  reactor.remove(pipe_fds[0]);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST_P(ReactorBackend, ModifyReplacesInterestSet) {
  net::Reactor reactor(GetParam());
  ASSERT_TRUE(reactor.valid());
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

  // An idle socket with write interest is immediately writable.
  reactor.add(pair[0], /*want_read=*/false, /*want_write=*/true);
  std::vector<net::Reactor::Event> events;
  ASSERT_EQ(reactor.wait(&events, 1000), 1);
  EXPECT_TRUE(events[0].writable);

  // Read-only interest on the same idle socket: no events at all.
  reactor.modify(pair[0], /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(reactor.wait(&events, 0), 0);

  reactor.remove(pair[0]);
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST_P(ReactorBackend, WakeupUnblocksWaitFromAnotherThread) {
  net::Reactor reactor(GetParam());
  ASSERT_TRUE(reactor.valid());
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    std::vector<net::Reactor::Event> events;
    // Indefinite wait; only the cross-thread wakeup can end it.
    reactor.wait(&events, -1);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  reactor.wakeup();
  waiter.join();
  EXPECT_TRUE(returned.load());
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackend,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll_or_default";
                         });

TEST(Reactor, ForcePollSelectsPollBackend) {
  net::Reactor reactor(/*force_poll=*/true);
  ASSERT_TRUE(reactor.valid());
  EXPECT_FALSE(reactor.using_epoll());
}

// ---------------------------------------------------------------------------
// EventServer: line framing, cross-thread sends, partial writes, overflow,
// and the connection cap.

struct EchoServer {
  std::unique_ptr<net::EventServer> server;

  explicit EchoServer(net::EventServerOptions options,
                      std::string response_suffix = "") {
    net::EventServer::Callbacks callbacks;
    callbacks.on_line = [suffix = std::move(response_suffix)](
                            const std::shared_ptr<net::Conn>& conn,
                            std::string&& line) {
      // Respond from a detached thread: exercises the any-thread send_line
      // contract the broker's pool workers rely on.
      std::thread([conn, line = std::move(line), suffix] {
        conn->send_line(line + suffix);
      }).detach();
    };
    callbacks.on_overflow = [](const std::shared_ptr<net::Conn>& conn) {
      conn->send_line("overflow");
    };
    server = std::make_unique<net::EventServer>(std::move(options),
                                                std::move(callbacks));
  }

  ~EchoServer() {
    if (server != nullptr) {
      server->request_stop();
      server->shutdown();
    }
  }
};

class EventServerBackend : public ::testing::TestWithParam<bool> {};

TEST_P(EventServerBackend, EchoesLinesAcrossShardsAndClients) {
  net::EventServerOptions options;
  options.socket_path = temp_socket("echo");
  options.shards = 2;
  options.force_poll = GetParam();
  EchoServer echo(std::move(options));
  std::string error;
  ASSERT_TRUE(echo.server->start(&error)) << error;
  EXPECT_EQ(echo.server->shard_count(), 2u);

  // More clients than shards: round-robin pins some to each shard.
  constexpr int kClients = 5;
  constexpr int kLines = 20;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string client_error;
      std::unique_ptr<svc::Client> client = svc::Client::connect_unix(
          echo.server->socket_path(), &client_error);
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kLines; ++i) {
        const std::string line =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        std::string reply;
        if (!client->send_line(line, &client_error) ||
            !client->recv_line(&reply, &client_error) || reply != line) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(echo.server->accepted_total(), kClients);
}

TEST_P(EventServerBackend, PartialWritesDeliverLargeResponseIntact) {
  // An 8 MiB response cannot fit a socket send buffer: the first write is
  // partial, the remainder drains through the EPOLLOUT path.
  const std::size_t kBig = 8u << 20;
  net::EventServerOptions options;
  options.socket_path = temp_socket("big");
  options.shards = 1;
  options.force_poll = GetParam();
  EchoServer echo(std::move(options), std::string(kBig, 'z'));
  std::string error;
  ASSERT_TRUE(echo.server->start(&error)) << error;

  std::unique_ptr<svc::Client> client =
      svc::Client::connect_unix(echo.server->socket_path(), &error);
  ASSERT_NE(client, nullptr) << error;
  ASSERT_TRUE(client->send_line("head", &error)) << error;
  std::string reply;
  ASSERT_TRUE(client->recv_line(&reply, &error)) << error;
  ASSERT_EQ(reply.size(), 4 + kBig);
  EXPECT_EQ(reply.compare(0, 4, "head"), 0);
  EXPECT_EQ(reply.find_first_not_of('z', 4), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventServerBackend,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll_or_default";
                         });

TEST(EventServer, OverflowAnswersOnceThenCloses) {
  net::EventServerOptions options;
  options.socket_path = temp_socket("overflow");
  options.shards = 1;
  options.max_line_bytes = 1024;
  EchoServer echo(std::move(options));
  std::string error;
  ASSERT_TRUE(echo.server->start(&error)) << error;

  // Raw socket: svc::Client::send_line appends '\n', which would turn the
  // blob into a complete (deliverable) line. Overflow fires only for
  // *unterminated* input past the bound.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                echo.server->socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string blob(4096, 'a');  // no newline: unterminated past bound
  ASSERT_EQ(::send(fd, blob.data(), blob.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(blob.size()));

  std::string reply;
  char buf[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    reply.append(buf, static_cast<std::size_t>(n));
    if (reply.find('\n') != std::string::npos) break;
  }
  EXPECT_EQ(reply, "overflow\n");
  // Then EOF: the server closed after flushing the one response.
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(EventServer, MaxConnsClosesTheOverflowConnection) {
  net::EventServerOptions options;
  options.socket_path = temp_socket("cap");
  options.shards = 1;
  options.max_conns = 1;
  EchoServer echo(std::move(options));
  std::string error;
  ASSERT_TRUE(echo.server->start(&error)) << error;

  std::unique_ptr<svc::Client> first =
      svc::Client::connect_unix(echo.server->socket_path(), &error);
  ASSERT_NE(first, nullptr) << error;
  std::string reply;
  ASSERT_TRUE(first->send_line("ping", &error));
  ASSERT_TRUE(first->recv_line(&reply, &error));
  EXPECT_EQ(reply, "ping");

  // The second connection is accepted, counted, and closed immediately.
  std::unique_ptr<svc::Client> second =
      svc::Client::connect_unix(echo.server->socket_path(), &error);
  ASSERT_NE(second, nullptr) << error;
  EXPECT_FALSE(second->recv_line(&reply, &error));
  EXPECT_EQ(echo.server->rejected_total(), 1);

  // The first connection still works, and the freed slot is reusable.
  ASSERT_TRUE(first->send_line("again", &error));
  ASSERT_TRUE(first->recv_line(&reply, &error));
  EXPECT_EQ(reply, "again");
}

TEST(EventServer, StopFdRequestsStop) {
  int stop_pipe[2];
  ASSERT_EQ(::pipe(stop_pipe), 0);
  net::EventServerOptions options;
  options.socket_path = temp_socket("stopfd");
  options.shards = 1;
  options.stop_fd = stop_pipe[0];
  EchoServer echo(std::move(options));
  std::string error;
  ASSERT_TRUE(echo.server->start(&error)) << error;

  std::thread waiter([&] { echo.server->wait_stop(); });
  ASSERT_EQ(::write(stop_pipe[1], "s", 1), 1);  // what a signal handler does
  waiter.join();
  echo.server->shutdown();
  ::close(stop_pipe[0]);
  ::close(stop_pipe[1]);
}

// ---------------------------------------------------------------------------
// Broker coalescing + cross-request batching. test_exec_delay_ms holds the
// leader inside execute() so concurrently submitted identical requests
// deterministically find its in-flight entry.

// Collects N async responses and blocks until all arrived.
struct Collector {
  explicit Collector(int expect) : expect_(expect), responses(expect) {}

  svc::Broker::DoneFn slot(int index) {
    return [this, index](std::string response) {
      std::lock_guard<std::mutex> lock(mu_);
      responses[static_cast<std::size_t>(index)] = std::move(response);
      if (++arrived_ == expect_) cv_.notify_all();
    };
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return arrived_ == expect_; });
  }

  std::vector<std::string> responses;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int expect_ = 0;
  int arrived_ = 0;
};

TEST(Coalesce, IdenticalConcurrentRequestsProduceOneSolve) {
  const std::string line = svc::encode_request(
      svc::Op::kAnalyze, svc::JsonValue::null(), demo_soc());

  // A single cold analyze costs >1 miss (whole-system memo + per-SCC
  // entries inside the partitioned solve), so "one solve" is asserted
  // against a one-request baseline, not a literal count.
  std::int64_t one_solve_misses = 0;
  {
    svc::Broker baseline({.workers = 1});
    baseline.handle_line_sync(line);
    one_solve_misses = baseline.cache().misses();
  }
  ASSERT_GE(one_solve_misses, 1);

  svc::Broker broker({.workers = 4, .test_exec_delay_ms = 60});
  constexpr int kRequests = 8;
  Collector collector(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    broker.handle_line(line, collector.slot(i));
  }
  collector.wait();

  // One leader solved; everyone else attached to its in-flight entry and
  // never touched the cache (no extra misses, no hits).
  EXPECT_EQ(broker.stats().coalesced, kRequests - 1);
  EXPECT_EQ(broker.cache().misses(), one_solve_misses);
  EXPECT_EQ(broker.cache().hits(), 0);
  for (const std::string& response : collector.responses) {
    const svc::ResponseView view = svc::parse_response(response);
    ASSERT_TRUE(view.ok) << view.parse_error;
    EXPECT_TRUE(view.success) << response;
  }
  // Identical ids (null) -> the fan-out re-encodings are byte-identical.
  for (int i = 1; i < kRequests; ++i) {
    EXPECT_EQ(collector.responses[static_cast<std::size_t>(i)],
              collector.responses[0]);
  }
}

TEST(Coalesce, DivergentParamsDoNotCoalesce) {
  svc::Broker broker({.workers = 4, .test_exec_delay_ms = 30});
  const std::string soc = demo_soc();
  Collector collector(2);
  // Same op + model, different sweep ranges: distinct coalesce keys.
  broker.handle_line(
      svc::encode_request(svc::Op::kSweep, svc::JsonValue::integer(1), soc, 0,
                          /*lo=*/40, /*hi=*/48, /*step=*/4),
      collector.slot(0));
  broker.handle_line(
      svc::encode_request(svc::Op::kSweep, svc::JsonValue::integer(2), soc, 0,
                          /*lo=*/40, /*hi=*/56, /*step=*/4),
      collector.slot(1));
  collector.wait();
  EXPECT_EQ(broker.stats().coalesced, 0);
  for (const std::string& response : collector.responses) {
    const svc::ResponseView view = svc::parse_response(response);
    ASSERT_TRUE(view.ok) << view.parse_error;
    EXPECT_TRUE(view.success) << response;
  }
}

TEST(Coalesce, FailingLeaderPropagatesSameErrorToFollowers) {
  svc::Broker broker({.workers = 2, .test_exec_delay_ms = 60});
  // Parses as a request envelope but the model text is garbage: the leader
  // fails inside execute(), after followers have attached.
  const std::string line = svc::encode_request(
      svc::Op::kAnalyze, svc::JsonValue::null(), "process only_half\n");
  constexpr int kRequests = 4;
  Collector collector(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    broker.handle_line(line, collector.slot(i));
  }
  collector.wait();

  EXPECT_EQ(broker.stats().coalesced, kRequests - 1);
  for (const std::string& response : collector.responses) {
    const svc::ResponseView view = svc::parse_response(response);
    ASSERT_TRUE(view.ok) << view.parse_error;
    EXPECT_FALSE(view.success);
    EXPECT_EQ(view.error_code, "bad_request");
    EXPECT_EQ(response, collector.responses[0]);  // identical error lines
  }
}

TEST(Coalesce, BatchedAndCoalescedResponsesByteIdenticalToSerial) {
  // Request mix: four analyze variants (distinct cache keys -> a real
  // analyze_batch group), three sweeps with distinct ranges, and one
  // duplicated sweep (a coalesce pair).
  const sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  std::vector<std::string> lines;
  for (int v = 0; v < 4; ++v) {
    lines.push_back(svc::encode_request(
        svc::Op::kAnalyze, svc::JsonValue::integer(v),
        io::write_soc(sys, "variant_" + std::to_string(v))));
  }
  const std::string soc = io::write_soc(sys, "demo");
  for (int s = 0; s < 3; ++s) {
    lines.push_back(svc::encode_request(
        svc::Op::kSweep, svc::JsonValue::integer(100 + s), soc, 0,
        /*lo=*/40, /*hi=*/48 + 8 * s, /*step=*/4));
  }
  lines.push_back(lines.back());  // the coalesce pair

  // Serial baseline: one worker, one request at a time.
  std::vector<std::string> serial;
  {
    svc::Broker broker({.workers = 1});
    for (const std::string& line : lines) {
      serial.push_back(broker.handle_line_sync(line));
    }
  }

  // Concurrent run: one worker + an execute delay, so the whole mix piles
  // up behind the first request — the analyzes land in one batch drain and
  // the duplicate sweep coalesces onto its twin.
  svc::Broker broker({.workers = 1, .test_exec_delay_ms = 20});
  Collector collector(static_cast<int>(lines.size()));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    broker.handle_line(lines[i], collector.slot(static_cast<int>(i)));
  }
  collector.wait();

  EXPECT_GE(broker.stats().batched, 2);    // the analyze variants grouped
  EXPECT_GE(broker.stats().coalesced, 1);  // the duplicated sweep
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(collector.responses[i], serial[i])
        << "response " << i << " diverged from the serial run";
  }
}

TEST(Coalesce, TeardownWithQueuedEmptyBatchDrainTasksIsClean) {
  // Regression (shutdown UB): every analyze enqueue submits one drain task,
  // and a single task may take the whole parked backlog — its siblings then
  // run as "empty-batch" tasks holding no in-flight slot. ~Broker's drain()
  // only waits for in_flight_ == 0, so it returns while those stragglers
  // are still queued or running; the pool must therefore be the first
  // member destroyed (joining workers, discarding the queue) or a straggler
  // locks an already-destroyed analyze mailbox. Exercised under TSan in CI.
  const sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();
  for (int round = 0; round < 8; ++round) {
    constexpr int kRequests = 12;
    Collector collector(kRequests);
    svc::Broker broker({.workers = 1, .test_exec_delay_ms = 2});
    for (int v = 0; v < kRequests; ++v) {
      // Distinct model names -> distinct coalesce keys: all twelve park in
      // the analyze queue instead of attaching to one leader.
      broker.handle_line(
          svc::encode_request(svc::Op::kAnalyze, svc::JsonValue::integer(v),
                              io::write_soc(sys, "td_" + std::to_string(v))),
          collector.slot(v));
    }
    collector.wait();
    // Destruction races the sibling drain tasks; TSan/ASan flag the old
    // member order here.
  }
}

// ---------------------------------------------------------------------------
// Background cache saver (serve --cache-save-secs).

TEST(CacheSaver, SavesOnIntervalAndSkipsWhenIdle) {
  const std::string snap =
      std::string("/tmp/ermes_tnet_saver_") + std::to_string(::getpid()) +
      ".snap";
  std::remove(snap.c_str());
  {
    svc::BrokerOptions options;
    options.workers = 1;
    options.cache_file = snap;
    options.cache_save_secs = 1;
    svc::Broker broker(options);

    // An analyze inserts into the cache; the next tick must persist it.
    const svc::ResponseView view = svc::parse_response(
        broker.handle_line_sync(svc::encode_request(
            svc::Op::kAnalyze, svc::JsonValue::null(), demo_soc())));
    ASSERT_TRUE(view.success);
    std::int64_t saves = 0;
    for (int spin = 0; spin < 100 && saves == 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      saves = broker.stats().cache_saves;
    }
    EXPECT_GE(saves, 1);
    std::FILE* f = std::fopen(snap.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "periodic save did not write " << snap;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0);
    std::fclose(f);

    // Idle interval: no insertions since the last save, so no write.
    std::this_thread::sleep_for(std::chrono::milliseconds(1300));
    EXPECT_EQ(broker.stats().cache_saves, saves);
  }
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace ermes
