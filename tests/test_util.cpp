// Unit tests for the util module: logging, RNG, tables, stopwatch.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace ermes::util {
namespace {

// ---- log -------------------------------------------------------------------

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kTrace);
    set_log_sink([this](LogLevel level, std::string_view msg) {
      captured_.emplace_back(level, std::string(msg));
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, MessageReachesSink) {
  ERMES_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogTest, LevelFilters) {
  set_log_level(LogLevel::kError);
  ERMES_LOG(kDebug) << "dropped";
  ERMES_LOG(kError) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

// ---- rng -------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, FlipProbabilityRoughlyRespected) {
  Rng rng(6);
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.flip(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10'000.0, 0.3, 0.03);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(8);
  const auto p = rng.permutation(20);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RngTest, IndexBounds) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_EQ(rng.index(1), 0u);
}

// ---- table -----------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name    value"), std::string::npos);
  EXPECT_NE(text.find("longer  22"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.to_text().find("only"), std::string::npos);
}

TEST(TableTest, CsvQuoting) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CsvHeaderFirst) {
  Table t({"p", "q"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv().substr(0, 4), "p,q\n");
}

TEST(TableTest, IndentApplied) {
  Table t({"h"});
  t.add_row({"v"});
  const std::string text = t.to_text(2);
  EXPECT_EQ(text.substr(0, 3), "  h");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(12.5, 2), "12.5");
  EXPECT_EQ(format_double(3.0, 3), "3");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
}

// ---- stopwatch -------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 8.0);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 9.0);
}

TEST(StopwatchTest, UnitsConsistent) {
  Stopwatch sw;
  const double s = sw.elapsed_seconds();
  const double us = sw.elapsed_us();
  EXPECT_GE(us, s);  // microseconds numerically exceed seconds
}

}  // namespace
}  // namespace ermes::util
