// Unit tests for the synthetic SoC generator and the Pareto-set generator.

#include <gtest/gtest.h>

#include "analysis/performance.h"
#include "graph/traversal.h"
#include "ordering/baselines.h"
#include "synth/generator.h"
#include "synth/pareto_gen.h"
#include "sysmodel/validate.h"

namespace ermes::synth {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

class GeneratorInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GeneratorConfig config_for_seed() const {
    GeneratorConfig config;
    util::Rng rng(GetParam() * 31ULL);
    config.num_processes = static_cast<std::int32_t>(rng.uniform_int(5, 120));
    config.num_channels = static_cast<std::int32_t>(
        config.num_processes + rng.uniform_int(0, 2 * config.num_processes));
    config.feedback_fraction = rng.uniform_real(0.0, 0.4);
    config.seed = GetParam();
    return config;
  }
};

TEST_P(GeneratorInvariants, ValidatesCleanly) {
  const SystemModel sys = generate_soc(config_for_seed());
  const sysmodel::ValidationReport report = sysmodel::validate(sys);
  EXPECT_TRUE(report.ok());
  for (const std::string& warning : report.warnings) {
    ADD_FAILURE() << warning;
  }
}

TEST_P(GeneratorInvariants, ProcessCountRespected) {
  const GeneratorConfig config = config_for_seed();
  const SystemModel sys = generate_soc(config);
  // Relays may add processes beyond the request only when feedback demands;
  // the generator budgets them from the request, so the count matches.
  EXPECT_EQ(sys.num_processes(), config.num_processes);
}

TEST_P(GeneratorInvariants, EveryProcessOnSourceToSinkPath) {
  const SystemModel sys = generate_soc(config_for_seed());
  const graph::Digraph topo = sys.topology();
  const ProcessId src = sys.find_process("src");
  const ProcessId snk = sys.find_process("snk");
  const auto from_src = graph::reachable_from(topo, src);
  const auto to_snk = graph::reaches(topo, snk);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    EXPECT_TRUE(from_src[static_cast<std::size_t>(p)])
        << sys.process_name(p);
    EXPECT_TRUE(to_snk[static_cast<std::size_t>(p)]) << sys.process_name(p);
  }
}

TEST_P(GeneratorInvariants, LatenciesWithinConfiguredRange) {
  GeneratorConfig config = config_for_seed();
  config.min_channel_latency = 3;
  config.max_channel_latency = 9;
  const SystemModel sys = generate_soc(config);
  for (ChannelId c = 0; c < sys.num_channels(); ++c) {
    EXPECT_GE(sys.channel_latency(c), 3);
    EXPECT_LE(sys.channel_latency(c), 9);
  }
}

TEST_P(GeneratorInvariants, DeterministicForSeed) {
  const GeneratorConfig config = config_for_seed();
  const SystemModel a = generate_soc(config);
  const SystemModel b = generate_soc(config);
  ASSERT_EQ(a.num_processes(), b.num_processes());
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (ChannelId c = 0; c < a.num_channels(); ++c) {
    EXPECT_EQ(a.channel_source(c), b.channel_source(c));
    EXPECT_EQ(a.channel_target(c), b.channel_target(c));
    EXPECT_EQ(a.channel_latency(c), b.channel_latency(c));
  }
}

TEST_P(GeneratorInvariants, FeedbackLoopsGoThroughPrimedRelays) {
  GeneratorConfig config = config_for_seed();
  config.feedback_fraction = 0.3;
  const SystemModel sys = generate_soc(config);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    const std::string& name = sys.process_name(p);
    if (name.rfind("relay", 0) == 0) {
      // Double-buffered pair: the downstream half (_b) is primed.
      EXPECT_EQ(sys.primed(p), name.back() == 'b') << name;
      EXPECT_EQ(sys.input_order(p).size(), 1u);
      EXPECT_EQ(sys.output_order(p).size(), 1u);
    }
  }
}

TEST_P(GeneratorInvariants, LiveOrderingExists) {
  // Insertion order alone can deadlock (reconvergent paths — exactly the
  // hazard the paper opens with), but the relay tokens guarantee that a
  // live ordering exists: the conservative ordering must find one.
  SystemModel sys = generate_soc(config_for_seed());
  ordering::apply_conservative_ordering(sys);
  EXPECT_TRUE(analysis::analyze_system(sys).live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariants,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(GeneratorTest, ZeroFeedbackYieldsDag) {
  GeneratorConfig config;
  config.num_processes = 40;
  config.num_channels = 80;
  config.feedback_fraction = 0.0;
  config.seed = 5;
  const SystemModel sys = generate_soc(config);
  EXPECT_TRUE(graph::is_acyclic(sys.topology()));
}

TEST(GeneratorTest, LargeGraphGeneratesQuickly) {
  GeneratorConfig config;
  config.num_processes = 10'000;
  config.num_channels = 15'000;
  config.feedback_fraction = 0.1;
  config.seed = 7;
  const SystemModel sys = generate_soc(config);
  EXPECT_EQ(sys.num_processes(), 10'000);
  EXPECT_GE(sys.num_channels(), 10'000);
}

// ---- pareto generation -----------------------------------------------------

TEST(ParetoGenTest, FrontierIsParetoOptimal) {
  util::Rng rng(9);
  const sysmodel::ParetoSet set = generate_pareto_set(1000, 0.5, 6, rng);
  EXPECT_GE(set.size(), 2u);
  EXPECT_TRUE(set.is_pareto_optimal());
}

TEST(ParetoGenTest, SpansSpeedupRange) {
  util::Rng rng(10);
  const sysmodel::ParetoSet set = generate_pareto_set(1024, 1.0, 5, rng);
  EXPECT_LT(set.at(0).latency, set.at(set.size() - 1).latency);
  EXPECT_GT(set.at(0).area, set.at(set.size() - 1).area);
}

TEST(ParetoGenTest, AttachKeepsCurrentLatency) {
  GeneratorConfig config;
  config.num_processes = 20;
  config.num_channels = 30;
  config.seed = 11;
  SystemModel sys = generate_soc(config);
  std::vector<std::int64_t> latencies;
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    latencies.push_back(sys.latency(p));
  }
  attach_pareto_sets(sys, 13);
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (!sys.has_implementations(p)) continue;
    // The selected (base) point is the slowest of the frontier, which is at
    // most the original latency (jitter can only speed it up slightly).
    EXPECT_LE(sys.latency(p),
              latencies[static_cast<std::size_t>(p)] + 1);
  }
}

TEST(ParetoGenTest, AttachSkipsTestbenchAndRelays) {
  GeneratorConfig config;
  config.num_processes = 30;
  config.num_channels = 60;
  config.feedback_fraction = 0.3;
  config.seed = 17;
  SystemModel sys = generate_soc(config);
  attach_pareto_sets(sys, 19);
  EXPECT_FALSE(sys.has_implementations(sys.find_process("src")));
  EXPECT_FALSE(sys.has_implementations(sys.find_process("snk")));
  for (ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (sys.primed(p)) EXPECT_FALSE(sys.has_implementations(p));
  }
}

TEST(ParetoGenTest, TotalPointsReported) {
  GeneratorConfig config;
  config.num_processes = 25;
  config.num_channels = 40;
  config.seed = 23;
  SystemModel sys = generate_soc(config);
  const std::size_t total = attach_pareto_sets(sys, 29);
  EXPECT_EQ(total, sys.total_pareto_points());
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace ermes::synth
