// Randomized differential testing of the compiled batch simulator.
//
// The legacy event-heap Kernel is the oracle; sim::CompiledSim must be
// bit-identical to it, step for step, on every instance:
//
//  S1. Random strongly connected systems (a process ring with a primed
//      token carrier, plus random chord channels mixing rendezvous, finite
//      FIFO, and unbounded capacities): the full ScenarioResult — final
//      marking (pc/status/buffered), stall accounting, wait histograms,
//      deadlock cycles, double bits of the measured cycle time — matches
//      run_legacy_kernel exactly.
//  S2. Scenario sweeps: simulate_batch over random latency/capacity weight
//      vectors equals per-scenario legacy runs, serial and on a thread
//      pool, with results in scenario order either way.
//  S3. Sparse timelines: latencies far beyond the calendar wheel horizon
//      route through the overflow heap and stay bit-identical.
//  S4. Instance reuse: one Instance run back-to-back over a scenario list
//      equals a fresh Instance per scenario (reset is complete).
//  S5. Model validation: on live generated SoCs (rendezvous channels, no
//      capacity constraints) the sim-measured steady-state cycle time
//      equals the Howard max cycle mean from analyze_system.
//
// Failures shrink the offending system (dropping chords, collapsing
// latencies, zeroing capacities) while the divergence persists, then print
// the seed and a compact reconstruction.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/performance.h"
#include "exec/thread_pool.h"
#include "sim/compiled.h"
#include "sim/event_queue.h"
#include "sim/system_sim.h"
#include "synth/generator.h"
#include "sysmodel/system.h"
#include "util/rng.h"

namespace ermes::sim {
namespace {

constexpr std::uint64_t kBaseSeed = 0x51dec0dedULL;

// A value-type recipe for a random system, kept separate from SystemModel
// so the shrinker can edit and rebuild it. Processes form a ring (strong
// connectivity); process 0 is primed, so the ring carries a token; chords
// add reconvergent and feedback structure.
struct SysSpec {
  struct Proc {
    std::int64_t latency = 1;
    bool primed = false;
  };
  struct Chan {
    int src = 0;
    int dst = 0;
    std::int64_t latency = 1;
    std::int64_t capacity = 0;  // sysmodel convention; -1 = unbounded
  };
  std::vector<Proc> procs;
  std::vector<Chan> rings;   // ring channel i: i -> (i+1) % n
  std::vector<Chan> chords;

  sysmodel::SystemModel build() const {
    sysmodel::SystemModel sys;
    for (std::size_t p = 0; p < procs.size(); ++p) {
      sys.add_process("p" + std::to_string(p), procs[p].latency);
      if (procs[p].primed) {
        sys.set_primed(static_cast<sysmodel::ProcessId>(p), true);
      }
    }
    auto add = [&](const Chan& chan, const std::string& name) {
      const sysmodel::ChannelId c =
          sys.add_channel(name, chan.src, chan.dst, chan.latency);
      sys.set_channel_capacity(c, chan.capacity);
    };
    for (std::size_t i = 0; i < rings.size(); ++i) {
      add(rings[i], "r" + std::to_string(i));
    }
    for (std::size_t i = 0; i < chords.size(); ++i) {
      add(chords[i], "x" + std::to_string(i));
    }
    return sys;
  }
};

std::int64_t random_capacity(util::Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0:
    case 1:
    case 2:
      return 0;  // rendezvous (the common case)
    case 3:
      return 1;
    case 4:
      return rng.uniform_int(2, 4);
    default:
      return sysmodel::kUnboundedCapacity;
  }
}

SysSpec random_spec(util::Rng& rng) {
  SysSpec spec;
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  for (int p = 0; p < n; ++p) {
    SysSpec::Proc proc;
    proc.latency = rng.uniform_int(0, 12);
    proc.primed = p == 0 || rng.flip(0.25);
    spec.procs.push_back(proc);
  }
  // Keep at least one nonzero latency: an all-zero system is a pure
  // zero-latency spin and both engines just trip the livelock guard slowly.
  if (spec.procs[0].latency == 0) spec.procs[0].latency = 1;
  for (int i = 0; i < n; ++i) {
    SysSpec::Chan chan;
    chan.src = i;
    chan.dst = (i + 1) % n;
    chan.latency = rng.uniform_int(0, 6);
    chan.capacity = random_capacity(rng);
    spec.rings.push_back(chan);
  }
  const std::int64_t extras = rng.uniform_int(0, n);
  for (std::int64_t e = 0; e < extras; ++e) {
    SysSpec::Chan chan;
    chan.src = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    do {
      chan.dst = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
    } while (chan.dst == chan.src);
    chan.latency = rng.uniform_int(0, 6);
    chan.capacity = random_capacity(rng);
    spec.chords.push_back(chan);
  }
  return spec;
}

std::string describe(const SysSpec& spec) {
  std::ostringstream os;
  os << "procs (latency/primed):";
  for (std::size_t p = 0; p < spec.procs.size(); ++p) {
    os << " p" << p << "(" << spec.procs[p].latency
       << (spec.procs[p].primed ? ",primed" : "") << ")";
  }
  auto chans = [&](const char* tag, const std::vector<SysSpec::Chan>& list) {
    os << "\n" << tag << ":";
    for (const SysSpec::Chan& c : list) {
      os << " " << c.src << "->" << c.dst << "(lat " << c.latency << ", cap "
         << c.capacity << ")";
    }
  };
  chans("ring", spec.rings);
  chans("chords", spec.chords);
  return os.str();
}

BatchOptions quick_opts() {
  BatchOptions opts;
  opts.target_transfers = 50;
  opts.max_cycles = 500'000;
  return opts;
}

// One compiled run of the base scenario vs the legacy oracle.
bool engines_agree(const SysSpec& spec) {
  const sysmodel::SystemModel sys = spec.build();
  const BatchOptions opts = quick_opts();
  const ScenarioResult oracle = run_legacy_kernel(sys, {}, opts);
  CompiledSim compiled(sys);
  CompiledSim::Instance instance(compiled);
  const ScenarioResult got = instance.run({}, opts);
  return results_bit_identical(oracle, got);
}

// Greedy shrink: drop chords, then collapse latencies and capacities, while
// the failure (predicate returns false) persists.
SysSpec shrink(SysSpec spec, const std::function<bool(const SysSpec&)>& ok) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < spec.chords.size();) {
      SysSpec candidate = spec;
      candidate.chords.erase(candidate.chords.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (!ok(candidate)) {
        spec = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    auto try_mutate = [&](const std::function<void(SysSpec&)>& mutate) {
      SysSpec candidate = spec;
      mutate(candidate);
      if (!ok(candidate)) {
        spec = std::move(candidate);
        changed = true;
      }
    };
    for (std::size_t p = 0; p < spec.procs.size(); ++p) {
      if (spec.procs[p].latency > (p == 0 ? 1 : 0)) {
        try_mutate([&](SysSpec& s) { s.procs[p].latency = p == 0 ? 1 : 0; });
      }
    }
    for (std::size_t i = 0; i < spec.rings.size(); ++i) {
      if (spec.rings[i].latency > 0) {
        try_mutate([&](SysSpec& s) { s.rings[i].latency = 0; });
      }
      if (spec.rings[i].capacity != 0) {
        try_mutate([&](SysSpec& s) { s.rings[i].capacity = 0; });
      }
    }
    for (std::size_t i = 0; i < spec.chords.size(); ++i) {
      if (spec.chords[i].latency > 0) {
        try_mutate([&](SysSpec& s) { s.chords[i].latency = 0; });
      }
      if (spec.chords[i].capacity != 0) {
        try_mutate([&](SysSpec& s) { s.chords[i].capacity = 0; });
      }
    }
  }
  return spec;
}

void report_failure(const SysSpec& spec, std::uint64_t seed,
                    const std::function<bool(const SysSpec&)>& ok,
                    const char* what) {
  const SysSpec minimized = shrink(spec, ok);
  FAIL() << what << " (seed 0x" << std::hex << seed << std::dec
         << ")\nminimized system:\n"
         << describe(minimized);
}

// ---- S1: base-scenario differential ----------------------------------------

TEST(CompiledSimDifferentialTest, RandomSystemsMatchLegacyKernel) {
  for (std::uint64_t shard = 0; shard < 60; ++shard) {
    const std::uint64_t seed = kBaseSeed + shard;
    util::Rng rng(seed);
    const SysSpec spec = random_spec(rng);
    if (!engines_agree(spec)) {
      report_failure(spec, seed, engines_agree,
                     "CompiledSim diverged from the legacy Kernel");
      return;
    }
  }
}

// ---- S2: scenario sweeps, serial and pooled ---------------------------------

std::vector<SimScenario> random_scenarios(const sysmodel::SystemModel& sys,
                                          util::Rng& rng, std::size_t k) {
  std::vector<SimScenario> scenarios(k);
  for (SimScenario& s : scenarios) {
    if (rng.flip(0.7)) {
      for (sysmodel::ProcessId p = 0; p < sys.num_processes(); ++p) {
        s.process_latency.push_back(rng.uniform_int(0, 12));
      }
      if (!s.process_latency.empty() && s.process_latency[0] == 0) {
        s.process_latency[0] = 1;
      }
    }
    if (rng.flip(0.7)) {
      for (sysmodel::ChannelId c = 0; c < sys.num_channels(); ++c) {
        s.channel_latency.push_back(rng.uniform_int(0, 6));
      }
    }
    if (rng.flip(0.7)) {
      for (sysmodel::ChannelId c = 0; c < sys.num_channels(); ++c) {
        s.channel_capacity.push_back(random_capacity(rng));
      }
    }
  }
  return scenarios;
}

TEST(CompiledSimDifferentialTest, BatchSweepsMatchLegacyPerScenario) {
  for (std::uint64_t shard = 0; shard < 8; ++shard) {
    const std::uint64_t seed = kBaseSeed ^ (0xba7c4 + shard);
    util::Rng rng(seed);
    const SysSpec spec = random_spec(rng);
    const sysmodel::SystemModel sys = spec.build();
    const std::vector<SimScenario> scenarios = random_scenarios(sys, rng, 12);
    const BatchOptions opts = quick_opts();

    CompiledSim compiled(sys);
    const std::vector<ScenarioResult> serial =
        simulate_batch(compiled, scenarios, opts);
    exec::ThreadPool pool(4);
    const std::vector<ScenarioResult> pooled =
        simulate_batch(compiled, scenarios, opts, &pool);
    ASSERT_EQ(serial.size(), scenarios.size());
    ASSERT_EQ(pooled.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const ScenarioResult oracle =
          run_legacy_kernel(sys, scenarios[i], opts);
      EXPECT_TRUE(results_bit_identical(oracle, serial[i]))
          << "serial scenario " << i << " diverged (seed 0x" << std::hex
          << seed << std::dec << ")\n"
          << describe(spec);
      EXPECT_TRUE(results_bit_identical(oracle, pooled[i]))
          << "pooled scenario " << i << " diverged (seed 0x" << std::hex
          << seed << std::dec << ")\n"
          << describe(spec);
      if (HasFailure()) return;
    }
  }
}

// ---- S3: sparse timelines exercise the overflow heap ------------------------

TEST(CompiledSimDifferentialTest, SparseTimelinesMatchLegacyKernel) {
  for (std::uint64_t shard = 0; shard < 10; ++shard) {
    const std::uint64_t seed = kBaseSeed ^ (0x5fa45e + shard);
    util::Rng rng(seed);
    SysSpec spec = random_spec(rng);
    // Blow several latencies far past the 65536-bucket wheel horizon so
    // events overflow into the binary heap and migrate back.
    for (SysSpec::Proc& p : spec.procs) {
      if (rng.flip(0.4)) p.latency = rng.uniform_int(100'000, 2'000'000);
    }
    for (SysSpec::Chan& c : spec.rings) {
      if (rng.flip(0.4)) c.latency = rng.uniform_int(100'000, 2'000'000);
    }
    auto agree = [](const SysSpec& s) {
      const sysmodel::SystemModel sys = s.build();
      BatchOptions opts;
      opts.target_transfers = 8;
      opts.max_cycles = 500'000'000;
      const ScenarioResult oracle = run_legacy_kernel(sys, {}, opts);
      CompiledSim compiled(sys);
      CompiledSim::Instance instance(compiled);
      return results_bit_identical(oracle, instance.run({}, opts));
    };
    if (!agree(spec)) {
      report_failure(spec, seed, agree,
                     "sparse-timeline run diverged from the legacy Kernel");
      return;
    }
  }
}

// ---- S4: instance reuse is a complete reset ---------------------------------

TEST(CompiledSimDifferentialTest, InstanceReuseMatchesFreshInstances) {
  const std::uint64_t seed = kBaseSeed ^ 0x4e05e;
  util::Rng rng(seed);
  const SysSpec spec = random_spec(rng);
  const sysmodel::SystemModel sys = spec.build();
  const std::vector<SimScenario> scenarios = random_scenarios(sys, rng, 10);
  const BatchOptions opts = quick_opts();

  CompiledSim compiled(sys);
  CompiledSim::Instance reused(compiled);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    CompiledSim::Instance fresh(compiled);
    const ScenarioResult a = reused.run(scenarios[i], opts);
    const ScenarioResult b = fresh.run(scenarios[i], opts);
    EXPECT_TRUE(results_bit_identical(a, b))
        << "instance reuse leaked state into scenario " << i << " (seed 0x"
        << std::hex << seed << std::dec << ")";
  }
}

// ---- S5: sim-measured throughput == Howard MCM on live graphs ---------------

TEST(CompiledSimDifferentialTest, MeasuredCycleTimeMatchesHowardOnLiveSoCs) {
  for (std::uint64_t shard = 0; shard < 6; ++shard) {
    synth::GeneratorConfig config;
    config.num_processes = 24;
    config.num_channels = 36;
    config.max_channel_latency = 16;
    config.max_process_latency = 16;
    config.seed = kBaseSeed + 977 * shard;
    const sysmodel::SystemModel sys = synth::generate_soc(config);
    const analysis::PerformanceReport report = analysis::analyze_system(sys);
    ASSERT_TRUE(report.live) << "generator must produce live systems";

    BatchOptions opts;
    opts.target_transfers = 400;
    CompiledSim compiled(sys);
    CompiledSim::Instance instance(compiled);
    const ScenarioResult run = instance.run({}, opts);
    ASSERT_FALSE(run.deadlocked);
    EXPECT_NEAR(run.measured_cycle_time, report.cycle_time, 1e-9)
        << "seed " << config.seed;
    // And the compiled run itself must still match the oracle.
    EXPECT_TRUE(
        results_bit_identical(run_legacy_kernel(sys, {}, opts), run))
        << "seed " << config.seed;
  }
}

// ---- S6: periodic extrapolation is exact ------------------------------------

// Long-horizon runs force the steady-state detector to engage (thousands of
// observations over a handful of periods); the jumped result must equal
// both the full compiled grind (detect_period off) and the legacy Kernel,
// bit for bit — counters, histograms, and the estimate_period doubles that
// hang off the replayed observation times.
TEST(CompiledSimDifferentialTest, PeriodExtrapolationIsExact) {
  for (std::uint64_t shard = 0; shard < 12; ++shard) {
    const std::uint64_t seed = kBaseSeed ^ (0x9e210d + shard);
    util::Rng rng(seed);
    const SysSpec spec = random_spec(rng);
    const sysmodel::SystemModel sys = spec.build();
    BatchOptions opts;
    opts.target_transfers = 5000;
    opts.max_cycles = 5'000'000;
    BatchOptions grind = opts;
    grind.detect_period = false;

    CompiledSim compiled(sys);
    CompiledSim::Instance instance(compiled);
    const ScenarioResult jumped = instance.run({}, opts);
    const ScenarioResult ground = instance.run({}, grind);
    EXPECT_TRUE(results_bit_identical(jumped, ground))
        << "period jump diverged from the full compiled run (seed 0x"
        << std::hex << seed << std::dec << ")\n"
        << describe(spec);
    EXPECT_TRUE(results_bit_identical(run_legacy_kernel(sys, {}, opts), jumped))
        << "period jump diverged from the legacy Kernel (seed 0x" << std::hex
        << seed << std::dec << ")\n"
        << describe(spec);
    if (HasFailure()) return;
  }
}

// ---- calendar queue unit coverage -------------------------------------------

TEST(CalendarQueueTest, OrdersAcrossWheelAndOverflow) {
  CalendarQueue queue;
  queue.configure(/*max_latency=*/100, /*expected_events=*/8);
  // In-window, beyond-horizon (overflow), and same-instant events.
  queue.push(5, 42);
  queue.push(1'000'000, 7);   // overflow
  queue.push(5, 40);
  queue.push(70'000, 9);      // overflow (past the 65536-capped wheel)
  queue.push(130, 3);

  EXPECT_EQ(queue.size(), 5u);
  std::vector<std::uint32_t> out;
  ASSERT_EQ(queue.next_time(), 5);
  queue.pop_at(5, out);
  ASSERT_EQ(out.size(), 2u);  // both instant-5 events, unsorted
  EXPECT_TRUE((out[0] == 40 && out[1] == 42) || (out[0] == 42 && out[1] == 40));

  out.clear();
  ASSERT_EQ(queue.next_time(), 130);
  queue.pop_at(130, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);

  // Pushing after a drain lands relative to the advanced window.
  queue.push(131, 11);
  out.clear();
  ASSERT_EQ(queue.next_time(), 131);
  queue.pop_at(131, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 11u);

  out.clear();
  ASSERT_EQ(queue.next_time(), 70'000);
  queue.pop_at(70'000, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 9u);

  out.clear();
  ASSERT_EQ(queue.next_time(), 1'000'000);
  queue.pop_at(1'000'000, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace ermes::sim
