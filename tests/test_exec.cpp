// Unit tests for the execution layer: the fixed-worker thread pool
// (src/exec/thread_pool.h) and the memoized evaluation cache
// (src/analysis/eval_cache.h).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/eval_cache.h"
#include "analysis/performance.h"
#include "exec/thread_pool.h"
#include "sysmodel/system.h"

namespace ermes {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(exec::hardware_jobs(), 1u);
}

TEST(ThreadPool, JobsCountsCallerPlusWorkers) {
  EXPECT_EQ(exec::ThreadPool(1).jobs(), 1u);
  EXPECT_EQ(exec::ThreadPool(4).jobs(), 4u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelMapIsDeterministicallyOrdered) {
  exec::ThreadPool pool(4);
  const std::vector<std::int64_t> out = pool.parallel_map<std::int64_t>(
      512, [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
  ASSERT_EQ(out.size(), 512u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(ThreadPool, SerialPoolMatchesParallelPool) {
  exec::ThreadPool serial(1);
  exec::ThreadPool parallel(4);
  const auto fn = [](std::size_t i) {
    return static_cast<std::int64_t>(3 * i + 7);
  };
  EXPECT_EQ(serial.parallel_map<std::int64_t>(100, fn),
            parallel.parallel_map<std::int64_t>(100, fn));
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  exec::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.parallel_map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, SingleIterationRunsInline) {
  exec::ThreadPool pool(4);
  const std::vector<int> out =
      pool.parallel_map<int>(1, [](std::size_t) { return 42; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(ThreadPool, RethrowsLowestIndexedFailure) {
  // With grain=1, chunk index == iteration index, so the contract pins the
  // observed exception to the lowest failing iteration at any worker count.
  exec::ThreadPool pool(4);
  const auto run = [&] {
    pool.parallel_for(
        64,
        [](std::size_t i) {
          if (i == 11 || i == 13 || i == 60) {
            throw std::runtime_error("failed at " + std::to_string(i));
          }
        },
        /*grain=*/1);
  };
  try {
    run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failed at 11");
  }
}

TEST(ThreadPool, ExceptionDoesNotPoisonThePool) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The pool must remain fully usable after a failed batch.
  const std::vector<int> out =
      pool.parallel_map<int>(32, [](std::size_t i) { return int(i) + 1; });
  EXPECT_EQ(out[31], 32);
}

TEST(ThreadPool, NestedSubmitIsRejected) {
  exec::ThreadPool pool(4);
  std::atomic<int> caught{0};
  pool.parallel_for(8, [&](std::size_t) {
    try {
      pool.parallel_for(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(caught.load(), 8);
}

TEST(ThreadPool, NestedSubmitIsRejectedOnSerialPoolToo) {
  // jobs=1 runs inline but must enforce the same contract, so code that is
  // wrong at jobs=N fails identically at jobs=1.
  exec::ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(2, [&](std::size_t) { pool.parallel_for(1, [](std::size_t) {}); }),
      std::logic_error);
}

TEST(ThreadPool, SubmittingToADifferentPoolFromATaskIsAllowed) {
  // Only *self*-submission deadlocks a fixed-worker pool; an inner, distinct
  // pool (e.g. sweep-over-explorations, each exploring serially) is legal.
  exec::ThreadPool outer(2);
  std::atomic<int> total{0};
  outer.parallel_for(4, [&](std::size_t) {
    exec::ThreadPool inner(1);
    inner.parallel_for(3, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 12);
}

// ---------------------------------------------------------------------------
// EvalCache

// A small live system with a feedback loop: src -> a -> b -> src.
sysmodel::SystemModel make_ring_system() {
  sysmodel::SystemModel sys;
  const auto src = sys.add_process("src", 4);
  const auto a = sys.add_process("a", 7);
  const auto b = sys.add_process("b", 5);
  sys.add_channel("c0", src, a, 2);
  sys.add_channel("c1", a, b, 3);
  sys.add_channel("c2", b, src, 1);
  sys.set_primed(src, true);  // breaks the token-free loop
  return sys;
}

TEST(EvalCache, HitAndMissAccounting) {
  analysis::EvalCache cache;
  const sysmodel::SystemModel sys = make_ring_system();
  const analysis::PerformanceReport first = cache.analyze(sys);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.size(), 1u);
  const analysis::PerformanceReport second = cache.analyze(sys);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  EXPECT_EQ(first.cycle_time, second.cycle_time);
  EXPECT_EQ(first.live, second.live);
  EXPECT_EQ(first.critical_processes, second.critical_processes);
}

TEST(EvalCache, CachedReportMatchesUncachedAnalysis) {
  analysis::EvalCache cache;
  const sysmodel::SystemModel sys = make_ring_system();
  cache.analyze(sys);  // populate
  const analysis::PerformanceReport cached = cache.analyze(sys);  // hit
  const analysis::PerformanceReport plain = analysis::analyze_system(sys);
  EXPECT_EQ(cached.cycle_time, plain.cycle_time);
  EXPECT_EQ(cached.ct_num, plain.ct_num);
  EXPECT_EQ(cached.ct_den, plain.ct_den);
  EXPECT_EQ(cached.live, plain.live);
  EXPECT_EQ(cached.critical_processes, plain.critical_processes);
}

TEST(EvalCache, FingerprintSeparatesNearIdenticalSystems) {
  // Every TMG-relevant mutation must move the fingerprint; a collision here
  // would silently serve a wrong report in release builds.
  const sysmodel::SystemModel base = make_ring_system();
  std::set<std::uint64_t> prints;
  prints.insert(analysis::system_fingerprint(base));

  {  // swap the latencies of two processes (same multiset of latencies)
    sysmodel::SystemModel sys = base;
    const std::int64_t la = sys.latency(1), lb = sys.latency(2);
    sys.set_latency(1, lb);
    sys.set_latency(2, la);
    prints.insert(analysis::system_fingerprint(sys));
  }
  {  // move latency between a process and its channel (same cycle sums)
    sysmodel::SystemModel sys = base;
    sys.set_latency(1, sys.latency(1) - 1);
    sys.set_channel_latency(1, sys.channel_latency(1) + 1);
    prints.insert(analysis::system_fingerprint(sys));
  }
  {  // capacity change
    sysmodel::SystemModel sys = base;
    sys.set_channel_capacity(0, 2);
    prints.insert(analysis::system_fingerprint(sys));
  }
  {  // marking change
    sysmodel::SystemModel sys = base;
    sys.set_primed(1, true);
    prints.insert(analysis::system_fingerprint(sys));
  }
  {  // permuted get order
    sysmodel::SystemModel sys = base;
    const auto extra = sys.add_channel("c3", 1, 0, 1);
    sysmodel::SystemModel swapped = sys;
    std::vector<sysmodel::ChannelId> order = swapped.input_order(0);
    std::swap(order.front(), order.back());
    swapped.set_input_order(0, order);
    prints.insert(analysis::system_fingerprint(sys));
    prints.insert(analysis::system_fingerprint(swapped));
    (void)extra;
  }
  EXPECT_EQ(prints.size(), 7u) << "fingerprint collision between "
                                  "near-identical systems";
}

TEST(EvalCache, NamesAndAreasDoNotAffectTheFingerprint) {
  sysmodel::SystemModel a = make_ring_system();
  sysmodel::SystemModel b;
  const auto p0 = b.add_process("renamed0", 4, /*area=*/123.0);
  const auto p1 = b.add_process("renamed1", 7, /*area=*/4.5);
  const auto p2 = b.add_process("renamed2", 5);
  b.add_channel("x0", p0, p1, 2);
  b.add_channel("x1", p1, p2, 3);
  b.add_channel("x2", p2, p0, 1);
  b.set_primed(p0, true);
  EXPECT_EQ(analysis::system_fingerprint(a), analysis::system_fingerprint(b));
}

TEST(EvalCache, MarkingChangeIsReanalyzedNotServedStale) {
  analysis::EvalCache cache;
  sysmodel::SystemModel sys = make_ring_system();
  const analysis::PerformanceReport live_report = cache.analyze(sys);
  EXPECT_TRUE(live_report.live);
  sys.set_primed(0, false);  // token-free feedback loop -> deadlock
  const analysis::PerformanceReport dead_report = cache.analyze(sys);
  EXPECT_FALSE(dead_report.live);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EvalCache, LookupInsertRoundtripAndClear) {
  analysis::EvalCache cache;
  const sysmodel::SystemModel sys = make_ring_system();
  const std::uint64_t fp = analysis::system_fingerprint(sys);
  analysis::PerformanceReport out;
  EXPECT_FALSE(cache.lookup(fp, &out));
  cache.insert(fp, analysis::analyze_system(sys));
  EXPECT_TRUE(cache.lookup(fp, &out));
  EXPECT_TRUE(out.live);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(fp, &out));
  EXPECT_EQ(cache.hits(), 1);   // statistics survive clear()
  EXPECT_EQ(cache.misses(), 2);
}

TEST(EvalCache, OrderedEvalMemoRoundtrip) {
  analysis::EvalCache cache;
  const sysmodel::SystemModel sys = make_ring_system();
  const std::uint64_t fp = analysis::system_fingerprint(sys);
  analysis::OrderedEval eval;
  EXPECT_FALSE(cache.lookup_eval(fp, &eval));
  eval.input_orders = {{}, {0}, {1}};
  eval.output_orders = {{0}, {1}, {2}};
  eval.report = analysis::analyze_system(sys);
  cache.insert_eval(fp, eval);
  analysis::OrderedEval back;
  ASSERT_TRUE(cache.lookup_eval(fp, &back));
  EXPECT_EQ(back.input_orders, eval.input_orders);
  EXPECT_EQ(back.output_orders, eval.output_orders);
  EXPECT_EQ(back.report.cycle_time, eval.report.cycle_time);
}

TEST(EvalCache, AuxMemoRoundtrip) {
  analysis::EvalCache cache;
  const std::uint64_t key =
      analysis::fingerprint_mix(0x1234u, /*word=*/0x42u);
  std::vector<std::int64_t> payload;
  EXPECT_FALSE(cache.lookup_aux(key, &payload));
  cache.insert_aux(key, {1, -5, 99});
  ASSERT_TRUE(cache.lookup_aux(key, &payload));
  EXPECT_EQ(payload, (std::vector<std::int64_t>{1, -5, 99}));
}

TEST(EvalCache, ImplementationFingerprintSeesParetoSets) {
  sysmodel::SystemModel a = make_ring_system();
  sysmodel::SystemModel b = make_ring_system();
  EXPECT_EQ(analysis::implementation_fingerprint(a),
            analysis::implementation_fingerprint(b));
  b.set_implementations(
      1, sysmodel::ParetoSet({{"fast", 3, 9.0}, {"small", 7, 2.0}}), 1);
  EXPECT_NE(analysis::implementation_fingerprint(a),
            analysis::implementation_fingerprint(b));
  // The TMG fingerprint keeps ignoring areas: selecting the implementation
  // with the same latency as the original leaves it unchanged.
  EXPECT_EQ(analysis::system_fingerprint(a), analysis::system_fingerprint(b));
}

TEST(EvalCache, ConcurrentAnalyzeIsRaceFreeAndConsistent) {
  // Hammer one shared cache from many tasks over a handful of distinct
  // systems (this is the TSan target): every returned report must equal the
  // uncached analysis of its system.
  std::vector<sysmodel::SystemModel> variants;
  for (int v = 0; v < 8; ++v) {
    sysmodel::SystemModel sys = make_ring_system();
    sys.set_latency(1, 7 + v);
    variants.push_back(std::move(sys));
  }
  std::vector<analysis::PerformanceReport> expected;
  expected.reserve(variants.size());
  for (const auto& sys : variants) {
    expected.push_back(analysis::analyze_system(sys));
  }

  analysis::EvalCache cache;
  exec::ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  std::atomic<int> mismatches{0};
  pool.parallel_for(
      kTasks,
      [&](std::size_t i) {
        const std::size_t v = i % variants.size();
        const analysis::PerformanceReport got = cache.analyze(variants[v]);
        if (got.cycle_time != expected[v].cycle_time ||
            got.live != expected[v].live ||
            got.critical_processes != expected[v].critical_processes) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), variants.size());
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::int64_t>(kTasks));
}

// ---- submit(): fire-and-forget task queue ------------------------------------

namespace {

// Polls until `done` reaches `expected` or ~5 s pass (workers have no join
// API by design; the service layer waits on its own counters).
void wait_for_count(const std::atomic<int>& done, int expected) {
  for (int spins = 0; spins < 5000 && done.load() < expected; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

TEST(ThreadPoolSubmit, RunsEveryTask) {
  exec::ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  wait_for_count(done, kTasks);
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ThreadPoolSubmit, InlineWhenPoolHasNoWorkers) {
  exec::ThreadPool pool(1);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  // jobs <= 1 means zero workers: the task ran inline, synchronously.
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolSubmit, ThrowingTaskDoesNotKillWorkers) {
  exec::ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  pool.submit([&done] { done.fetch_add(1); });
  wait_for_count(done, 1);
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolSubmit, NestedSubmitIsRejected) {
  exec::ThreadPool pool(2);
  std::atomic<bool> rejected{false};
  std::atomic<int> done{0};
  pool.submit([&] {
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      rejected.store(true);
    }
    done.fetch_add(1);
  });
  wait_for_count(done, 1);
  EXPECT_TRUE(rejected.load());
}

TEST(ThreadPoolSubmit, CoexistsWithParallelFor) {
  // Batches and tasks share the workers; interleaving them must lose
  // neither. The service serves requests (tasks) whose bodies run
  // parallel_for elsewhere, so this mix is the production shape.
  exec::ThreadPool pool(4);
  std::atomic<int> task_done{0};
  std::atomic<int> iter_done{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&task_done] { task_done.fetch_add(1); });
    }
    pool.parallel_for(
        64, [&iter_done](std::size_t) { iter_done.fetch_add(1); },
        /*grain=*/4);
  }
  wait_for_count(task_done, 80);
  EXPECT_EQ(task_done.load(), 80);
  EXPECT_EQ(iter_done.load(), 640);
}

}  // namespace
}  // namespace ermes
