// Cross-validation of the maximum-cycle-ratio solvers: Howard (production)
// vs Lawler binary search vs brute-force enumeration (Definition 3 applied
// literally), plus Karp's max cycle mean, plus agreement with the timed
// token-game simulation.

#include <gtest/gtest.h>

#include <cmath>

#include "tmg/brute_force.h"
#include "tmg/howard.h"
#include "tmg/karp.h"
#include "tmg/liveness.h"
#include "tmg/marked_graph.h"
#include "tmg/token_game.h"
#include "util/rng.h"

namespace ermes::tmg {
namespace {

RatioGraph ring_graph(std::vector<std::int64_t> delays,
                      std::vector<std::int64_t> tokens) {
  // Simple ring over n nodes; arc i: i -> (i+1)%n with weight delays[i].
  RatioGraph rg;
  const auto n = static_cast<std::int32_t>(delays.size());
  rg.g.add_nodes(n);
  for (std::int32_t i = 0; i < n; ++i) {
    rg.g.add_arc(i, (i + 1) % n);
    rg.weight.push_back(delays[static_cast<std::size_t>(i)]);
    rg.tokens.push_back(tokens[static_cast<std::size_t>(i)]);
  }
  return rg;
}

// ---- compare_ratios --------------------------------------------------------

TEST(CompareRatiosTest, Basic) {
  EXPECT_EQ(compare_ratios(1, 2, 2, 3), -1);  // 0.5 < 0.667
  EXPECT_EQ(compare_ratios(2, 3, 1, 2), 1);
  EXPECT_EQ(compare_ratios(2, 4, 1, 2), 0);
}

TEST(CompareRatiosTest, InfinityHandling) {
  EXPECT_EQ(compare_ratios(5, 0, 100, 1), 1);   // inf > 100
  EXPECT_EQ(compare_ratios(100, 1, 5, 0), -1);
  EXPECT_EQ(compare_ratios(1, 0, 2, 0), 0);
}

TEST(CompareRatiosTest, LargeValuesNoOverflow) {
  const std::int64_t big = 2'000'000'000'000LL;
  EXPECT_EQ(compare_ratios(big, big - 1, big, big), 1);
}

// ---- fixed cases, all solvers ---------------------------------------------

TEST(CycleRatioTest, SingleRing) {
  const RatioGraph rg = ring_graph({3, 5}, {0, 1});  // ratio 8/1
  const auto howard = max_cycle_ratio_howard(rg);
  const auto lawler = max_cycle_ratio_lawler(rg);
  const auto brute = max_cycle_ratio_brute_force(rg);
  EXPECT_TRUE(howard.has_cycle);
  EXPECT_DOUBLE_EQ(howard.ratio, 8.0);
  EXPECT_DOUBLE_EQ(lawler.ratio, 8.0);
  EXPECT_DOUBLE_EQ(brute.ratio, 8.0);
}

TEST(CycleRatioTest, AcyclicGraph) {
  RatioGraph rg;
  rg.g.add_nodes(3);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 2);
  rg.weight = {5, 7};
  rg.tokens = {1, 1};
  EXPECT_FALSE(max_cycle_ratio_howard(rg).has_cycle);
  EXPECT_FALSE(max_cycle_ratio_lawler(rg).has_cycle);
  EXPECT_FALSE(max_cycle_ratio_brute_force(rg).has_cycle);
}

TEST(CycleRatioTest, ZeroTokenCycleIsInfinite) {
  const RatioGraph rg = ring_graph({3, 5}, {0, 0});
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_TRUE(howard.is_infinite());
  EXPECT_TRUE(max_cycle_ratio_lawler(rg).is_infinite());
  EXPECT_TRUE(max_cycle_ratio_brute_force(rg).is_infinite());
}

TEST(CycleRatioTest, PicksWorstOfTwoRings) {
  // Rings 0<->1 (ratio 6) and 2<->3 (ratio 9).
  RatioGraph rg;
  rg.g.add_nodes(4);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(2, 3);
  rg.g.add_arc(3, 2);
  rg.weight = {2, 4, 4, 5};
  rg.tokens = {1, 0, 1, 0};
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_DOUBLE_EQ(howard.ratio, 9.0);
  EXPECT_EQ(howard.ratio_num, 9);
  EXPECT_EQ(howard.ratio_den, 1);
}

TEST(CycleRatioTest, RationalRatio) {
  const RatioGraph rg = ring_graph({3, 4, 5}, {1, 1, 0});  // 12/2 = 6
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_DOUBLE_EQ(howard.ratio, 6.0);
  EXPECT_EQ(howard.ratio_num, 12);
  EXPECT_EQ(howard.ratio_den, 2);
}

TEST(CycleRatioTest, CriticalCycleIsValidCycle) {
  RatioGraph rg;
  rg.g.add_nodes(3);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 2);
  rg.g.add_arc(2, 0);
  rg.weight = {7, 2, 3, 4};
  rg.tokens = {1, 1, 1, 1};
  const auto result = max_cycle_ratio_howard(rg);
  ASSERT_TRUE(result.has_cycle);
  // Verify closure and exact ratio of the returned cycle.
  std::int64_t w = 0, t = 0;
  for (std::size_t i = 0; i < result.critical_cycle.size(); ++i) {
    const auto a = result.critical_cycle[i];
    const auto b = result.critical_cycle[(i + 1) % result.critical_cycle.size()];
    EXPECT_EQ(rg.g.head(a), rg.g.tail(b));
    w += rg.arc_weight(a);
    t += rg.arc_tokens(a);
  }
  EXPECT_EQ(w, result.ratio_num);
  EXPECT_EQ(t, result.ratio_den);
}

TEST(CycleRatioTest, SelfLoop) {
  RatioGraph rg;
  rg.g.add_nodes(1);
  rg.g.add_arc(0, 0);
  rg.weight = {5};
  rg.tokens = {2};
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_TRUE(howard.has_cycle);
  EXPECT_DOUBLE_EQ(howard.ratio, 2.5);
}

TEST(CycleRatioTest, ParallelArcsPickWorse) {
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 0);
  rg.weight = {1, 1, 9};
  rg.tokens = {1, 1, 1};
  EXPECT_DOUBLE_EQ(max_cycle_ratio_howard(rg).ratio, 5.0);  // (1+9)/2
}

// ---- Karp ------------------------------------------------------------------

TEST(KarpTest, MaxCycleMeanSimple) {
  // Cycle of means: ring 0<->1 with weights 2,6 -> mean 4.
  RatioGraph rg = ring_graph({2, 6}, {1, 1});
  const auto karp = max_cycle_mean_karp(rg);
  EXPECT_TRUE(karp.has_cycle);
  EXPECT_DOUBLE_EQ(karp.ratio, 4.0);
}

TEST(KarpTest, AcyclicHasNoCycle) {
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.weight = {10};
  rg.tokens = {1};
  EXPECT_FALSE(max_cycle_mean_karp(rg).has_cycle);
}

TEST(KarpTest, MatchesHowardOnUnitTokenGraphs) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    RatioGraph rg;
    const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 12));
    rg.g.add_nodes(n);
    // Hamiltonian cycle ensures strong connectivity.
    for (std::int32_t i = 0; i < n; ++i) {
      rg.g.add_arc(i, (i + 1) % n);
      rg.weight.push_back(rng.uniform_int(0, 20));
      rg.tokens.push_back(1);
    }
    const auto extra = rng.uniform_int(0, 2 * n);
    for (std::int64_t e = 0; e < extra; ++e) {
      const auto u = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      const auto v = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      rg.g.add_arc(u, v);
      rg.weight.push_back(rng.uniform_int(0, 20));
      rg.tokens.push_back(1);
    }
    const auto karp = max_cycle_mean_karp(rg);
    const auto howard = max_cycle_ratio_howard(rg);
    ASSERT_TRUE(karp.has_cycle);
    ASSERT_TRUE(howard.has_cycle);
    EXPECT_NEAR(karp.ratio, howard.ratio, 1e-6) << "trial " << trial;
  }
}

// ---- randomized cross-validation (parameterized over seeds) ----------------

class SolverAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

RatioGraph random_live_graph(util::Rng& rng) {
  RatioGraph rg;
  const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 10));
  rg.g.add_nodes(n);
  // Hamiltonian backbone with tokens to guarantee liveness of that cycle.
  for (std::int32_t i = 0; i < n; ++i) {
    rg.g.add_arc(i, (i + 1) % n);
    rg.weight.push_back(rng.uniform_int(0, 30));
    rg.tokens.push_back(rng.uniform_int(0, 2));
  }
  rg.tokens[0] = std::max<std::int64_t>(rg.tokens[0], 1);
  const auto extra = rng.uniform_int(0, 2 * n);
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
    rg.g.add_arc(u, v);
    rg.weight.push_back(rng.uniform_int(0, 30));
    // Bias toward tokens so most graphs stay finite.
    rg.tokens.push_back(rng.uniform_int(0, 3) == 0 ? 0 : 1);
  }
  return rg;
}

TEST_P(SolverAgreementTest, HowardMatchesBruteForceAndLawler) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const RatioGraph rg = random_live_graph(rng);
    const auto howard = max_cycle_ratio_howard(rg);
    const auto brute = max_cycle_ratio_brute_force(rg);
    const auto lawler = max_cycle_ratio_lawler(rg);
    ASSERT_EQ(howard.has_cycle, brute.has_cycle);
    if (!howard.has_cycle) continue;
    EXPECT_EQ(howard.is_infinite(), brute.is_infinite());
    if (brute.is_infinite()) {
      EXPECT_TRUE(lawler.is_infinite());
      continue;
    }
    EXPECT_EQ(compare_ratios(howard.ratio_num, howard.ratio_den,
                             brute.ratio_num, brute.ratio_den),
              0)
        << "howard " << howard.ratio_num << "/" << howard.ratio_den
        << " vs brute " << brute.ratio_num << "/" << brute.ratio_den;
    EXPECT_NEAR(lawler.ratio, brute.ratio, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- agreement with the timed token game -----------------------------------

class SimulationAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationAgreementTest, AsapPeriodEqualsHowardRatio) {
  util::Rng rng(GetParam() * 977);
  // Build a random strongly-connected marked graph with a live marking.
  MarkedGraph g;
  const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 8));
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_transition("t" + std::to_string(i), rng.uniform_int(1, 12));
  }
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_place(i, (i + 1) % n, i == 0 ? 1 : rng.uniform_int(0, 1));
  }
  const auto extra = rng.uniform_int(0, n);
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto u = static_cast<TransitionId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<TransitionId>(rng.index(static_cast<std::size_t>(n)));
    g.add_place(u, v, 1);  // tokened extras keep the graph live
  }
  ASSERT_TRUE(is_live(g));
  const auto howard = max_cycle_ratio_howard(to_ratio_graph(g));
  ASSERT_TRUE(howard.has_cycle);
  ASSERT_FALSE(howard.is_infinite());
  const TimedSimResult sim = simulate_asap(g, 0, 400);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, howard.ratio, 1e-6)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace ermes::tmg
