// Cross-validation of the maximum-cycle-ratio solvers: Howard (production)
// vs Lawler binary search vs brute-force enumeration (Definition 3 applied
// literally), plus Karp's max cycle mean, plus agreement with the timed
// token-game simulation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/scc.h"
#include "tmg/brute_force.h"
#include "tmg/howard.h"
#include "tmg/karp.h"
#include "tmg/liveness.h"
#include "tmg/marked_graph.h"
#include "tmg/token_game.h"
#include "util/rng.h"

namespace ermes::tmg {
namespace {

RatioGraph ring_graph(std::vector<std::int64_t> delays,
                      std::vector<std::int64_t> tokens) {
  // Simple ring over n nodes; arc i: i -> (i+1)%n with weight delays[i].
  RatioGraph rg;
  const auto n = static_cast<std::int32_t>(delays.size());
  rg.g.add_nodes(n);
  for (std::int32_t i = 0; i < n; ++i) {
    rg.g.add_arc(i, (i + 1) % n);
    rg.weight.push_back(delays[static_cast<std::size_t>(i)]);
    rg.tokens.push_back(tokens[static_cast<std::size_t>(i)]);
  }
  return rg;
}

// ---- compare_ratios --------------------------------------------------------

TEST(CompareRatiosTest, Basic) {
  EXPECT_EQ(compare_ratios(1, 2, 2, 3), -1);  // 0.5 < 0.667
  EXPECT_EQ(compare_ratios(2, 3, 1, 2), 1);
  EXPECT_EQ(compare_ratios(2, 4, 1, 2), 0);
}

TEST(CompareRatiosTest, InfinityHandling) {
  EXPECT_EQ(compare_ratios(5, 0, 100, 1), 1);   // inf > 100
  EXPECT_EQ(compare_ratios(100, 1, 5, 0), -1);
  EXPECT_EQ(compare_ratios(1, 0, 2, 0), 0);
}

TEST(CompareRatiosTest, LargeValuesNoOverflow) {
  const std::int64_t big = 2'000'000'000'000LL;
  EXPECT_EQ(compare_ratios(big, big - 1, big, big), 1);
}

// ---- fixed cases, all solvers ---------------------------------------------

TEST(CycleRatioTest, SingleRing) {
  const RatioGraph rg = ring_graph({3, 5}, {0, 1});  // ratio 8/1
  const auto howard = max_cycle_ratio_howard(rg);
  const auto lawler = max_cycle_ratio_lawler(rg);
  const auto brute = max_cycle_ratio_brute_force(rg);
  EXPECT_TRUE(howard.has_cycle);
  EXPECT_DOUBLE_EQ(howard.ratio, 8.0);
  EXPECT_DOUBLE_EQ(lawler.ratio, 8.0);
  EXPECT_DOUBLE_EQ(brute.ratio, 8.0);
}

TEST(CycleRatioTest, AcyclicGraph) {
  RatioGraph rg;
  rg.g.add_nodes(3);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 2);
  rg.weight = {5, 7};
  rg.tokens = {1, 1};
  EXPECT_FALSE(max_cycle_ratio_howard(rg).has_cycle);
  EXPECT_FALSE(max_cycle_ratio_lawler(rg).has_cycle);
  EXPECT_FALSE(max_cycle_ratio_brute_force(rg).has_cycle);
}

TEST(CycleRatioTest, ZeroTokenCycleIsInfinite) {
  const RatioGraph rg = ring_graph({3, 5}, {0, 0});
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_TRUE(howard.is_infinite());
  EXPECT_TRUE(max_cycle_ratio_lawler(rg).is_infinite());
  EXPECT_TRUE(max_cycle_ratio_brute_force(rg).is_infinite());
}

TEST(CycleRatioTest, PicksWorstOfTwoRings) {
  // Rings 0<->1 (ratio 6) and 2<->3 (ratio 9).
  RatioGraph rg;
  rg.g.add_nodes(4);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(2, 3);
  rg.g.add_arc(3, 2);
  rg.weight = {2, 4, 4, 5};
  rg.tokens = {1, 0, 1, 0};
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_DOUBLE_EQ(howard.ratio, 9.0);
  EXPECT_EQ(howard.ratio_num, 9);
  EXPECT_EQ(howard.ratio_den, 1);
}

TEST(CycleRatioTest, RationalRatio) {
  const RatioGraph rg = ring_graph({3, 4, 5}, {1, 1, 0});  // 12/2 = 6
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_DOUBLE_EQ(howard.ratio, 6.0);
  EXPECT_EQ(howard.ratio_num, 12);
  EXPECT_EQ(howard.ratio_den, 2);
}

TEST(CycleRatioTest, CriticalCycleIsValidCycle) {
  RatioGraph rg;
  rg.g.add_nodes(3);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 2);
  rg.g.add_arc(2, 0);
  rg.weight = {7, 2, 3, 4};
  rg.tokens = {1, 1, 1, 1};
  const auto result = max_cycle_ratio_howard(rg);
  ASSERT_TRUE(result.has_cycle);
  // Verify closure and exact ratio of the returned cycle.
  std::int64_t w = 0, t = 0;
  for (std::size_t i = 0; i < result.critical_cycle.size(); ++i) {
    const auto a = result.critical_cycle[i];
    const auto b = result.critical_cycle[(i + 1) % result.critical_cycle.size()];
    EXPECT_EQ(rg.g.head(a), rg.g.tail(b));
    w += rg.arc_weight(a);
    t += rg.arc_tokens(a);
  }
  EXPECT_EQ(w, result.ratio_num);
  EXPECT_EQ(t, result.ratio_den);
}

TEST(CycleRatioTest, SelfLoop) {
  RatioGraph rg;
  rg.g.add_nodes(1);
  rg.g.add_arc(0, 0);
  rg.weight = {5};
  rg.tokens = {2};
  const auto howard = max_cycle_ratio_howard(rg);
  EXPECT_TRUE(howard.has_cycle);
  EXPECT_DOUBLE_EQ(howard.ratio, 2.5);
}

TEST(CycleRatioTest, ParallelArcsPickWorse) {
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.g.add_arc(1, 0);
  rg.g.add_arc(1, 0);
  rg.weight = {1, 1, 9};
  rg.tokens = {1, 1, 1};
  EXPECT_DOUBLE_EQ(max_cycle_ratio_howard(rg).ratio, 5.0);  // (1+9)/2
}

// ---- Karp ------------------------------------------------------------------

TEST(KarpTest, MaxCycleMeanSimple) {
  // Cycle of means: ring 0<->1 with weights 2,6 -> mean 4.
  RatioGraph rg = ring_graph({2, 6}, {1, 1});
  const auto karp = max_cycle_mean_karp(rg);
  EXPECT_TRUE(karp.has_cycle);
  EXPECT_DOUBLE_EQ(karp.ratio, 4.0);
}

TEST(KarpTest, AcyclicHasNoCycle) {
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.weight = {10};
  rg.tokens = {1};
  EXPECT_FALSE(max_cycle_mean_karp(rg).has_cycle);
}

TEST(KarpTest, MatchesHowardOnUnitTokenGraphs) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    RatioGraph rg;
    const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 12));
    rg.g.add_nodes(n);
    // Hamiltonian cycle ensures strong connectivity.
    for (std::int32_t i = 0; i < n; ++i) {
      rg.g.add_arc(i, (i + 1) % n);
      rg.weight.push_back(rng.uniform_int(0, 20));
      rg.tokens.push_back(1);
    }
    const auto extra = rng.uniform_int(0, 2 * n);
    for (std::int64_t e = 0; e < extra; ++e) {
      const auto u = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      const auto v = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      rg.g.add_arc(u, v);
      rg.weight.push_back(rng.uniform_int(0, 20));
      rg.tokens.push_back(1);
    }
    const auto karp = max_cycle_mean_karp(rg);
    const auto howard = max_cycle_ratio_howard(rg);
    ASSERT_TRUE(karp.has_cycle);
    ASSERT_TRUE(howard.has_cycle);
    EXPECT_NEAR(karp.ratio, howard.ratio, 1e-6) << "trial " << trial;
  }
}

// ---- randomized cross-validation (parameterized over seeds) ----------------

class SolverAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

RatioGraph random_live_graph(util::Rng& rng) {
  RatioGraph rg;
  const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 10));
  rg.g.add_nodes(n);
  // Hamiltonian backbone with tokens to guarantee liveness of that cycle.
  for (std::int32_t i = 0; i < n; ++i) {
    rg.g.add_arc(i, (i + 1) % n);
    rg.weight.push_back(rng.uniform_int(0, 30));
    rg.tokens.push_back(rng.uniform_int(0, 2));
  }
  rg.tokens[0] = std::max<std::int64_t>(rg.tokens[0], 1);
  const auto extra = rng.uniform_int(0, 2 * n);
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
    rg.g.add_arc(u, v);
    rg.weight.push_back(rng.uniform_int(0, 30));
    // Bias toward tokens so most graphs stay finite.
    rg.tokens.push_back(rng.uniform_int(0, 3) == 0 ? 0 : 1);
  }
  return rg;
}

TEST_P(SolverAgreementTest, HowardMatchesBruteForceAndLawler) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const RatioGraph rg = random_live_graph(rng);
    const auto howard = max_cycle_ratio_howard(rg);
    const auto brute = max_cycle_ratio_brute_force(rg);
    const auto lawler = max_cycle_ratio_lawler(rg);
    ASSERT_EQ(howard.has_cycle, brute.has_cycle);
    if (!howard.has_cycle) continue;
    EXPECT_EQ(howard.is_infinite(), brute.is_infinite());
    if (brute.is_infinite()) {
      EXPECT_TRUE(lawler.is_infinite());
      continue;
    }
    EXPECT_EQ(compare_ratios(howard.ratio_num, howard.ratio_den,
                             brute.ratio_num, brute.ratio_den),
              0)
        << "howard " << howard.ratio_num << "/" << howard.ratio_den
        << " vs brute " << brute.ratio_num << "/" << brute.ratio_den;
    EXPECT_NEAR(lawler.ratio, brute.ratio, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- agreement with the timed token game -----------------------------------

class SimulationAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationAgreementTest, AsapPeriodEqualsHowardRatio) {
  util::Rng rng(GetParam() * 977);
  // Build a random strongly-connected marked graph with a live marking.
  MarkedGraph g;
  const auto n = static_cast<std::int32_t>(rng.uniform_int(2, 8));
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_transition("t" + std::to_string(i), rng.uniform_int(1, 12));
  }
  for (std::int32_t i = 0; i < n; ++i) {
    g.add_place(i, (i + 1) % n, i == 0 ? 1 : rng.uniform_int(0, 1));
  }
  const auto extra = rng.uniform_int(0, n);
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto u = static_cast<TransitionId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<TransitionId>(rng.index(static_cast<std::size_t>(n)));
    g.add_place(u, v, 1);  // tokened extras keep the graph live
  }
  ASSERT_TRUE(is_live(g));
  const auto howard = max_cycle_ratio_howard(to_ratio_graph(g));
  ASSERT_TRUE(howard.has_cycle);
  ASSERT_FALSE(howard.is_infinite());
  const TimedSimResult sim = simulate_asap(g, 0, 400);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, howard.ratio, 1e-6)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---- per-SCC solves and the fold (the partitioned engine's primitives) -----

TEST(HowardSccTest, TrivialComponentWithoutSelfLoopHasNoCycle) {
  RatioGraph rg;
  rg.g.add_nodes(2);
  rg.g.add_arc(0, 1);
  rg.weight = {3};
  rg.tokens = {1};
  const auto sccs = graph::strongly_connected_components(rg.g);
  ASSERT_EQ(sccs.num_components, 2);
  for (std::int32_t c = 0; c < 2; ++c) {
    int iterations = -1;
    const CycleRatioResult r = max_cycle_ratio_howard_scc(
        rg, sccs.component, c, sccs.members[static_cast<std::size_t>(c)],
        &iterations);
    EXPECT_FALSE(r.has_cycle);
    EXPECT_EQ(iterations, 0) << "fast path must not run policy iteration";
  }
}

TEST(HowardSccTest, TrivialSelfLoopFastPathMatchesTheGeneralSolver) {
  // One node, several self-loops: the closed-form fast path must pick the
  // same ratio AND the same critical arc as whole-graph Howard (which takes
  // the iterative path) — including first-wins on an exact tie.
  RatioGraph rg;
  rg.g.add_nodes(1);
  rg.g.add_arc(0, 0);
  rg.g.add_arc(0, 0);
  rg.g.add_arc(0, 0);
  rg.weight = {6, 9, 12};   // ratios 3, 9, 6
  rg.tokens = {2, 1, 2};
  const auto sccs = graph::strongly_connected_components(rg.g);
  ASSERT_EQ(sccs.num_components, 1);
  int iterations = -1;
  const CycleRatioResult fast = max_cycle_ratio_howard_scc(
      rg, sccs.component, 0, sccs.members[0], &iterations);
  EXPECT_EQ(iterations, 0);
  const CycleRatioResult full = max_cycle_ratio_howard(rg);
  EXPECT_EQ(fast.has_cycle, full.has_cycle);
  EXPECT_EQ(fast.ratio_num, full.ratio_num);
  EXPECT_EQ(fast.ratio_den, full.ratio_den);
  EXPECT_EQ(fast.ratio, full.ratio);
  EXPECT_EQ(fast.critical_cycle, full.critical_cycle);
  EXPECT_EQ(fast.ratio, 9.0);

  // Exact tie between two self-loops: the earlier arc wins on both paths.
  RatioGraph tie;
  tie.g.add_nodes(1);
  tie.g.add_arc(0, 0);
  tie.g.add_arc(0, 0);
  tie.weight = {4, 8};  // both ratio 4
  tie.tokens = {1, 2};
  const auto tie_sccs = graph::strongly_connected_components(tie.g);
  const CycleRatioResult tie_fast = max_cycle_ratio_howard_scc(
      tie, tie_sccs.component, 0, tie_sccs.members[0]);
  const CycleRatioResult tie_full = max_cycle_ratio_howard(tie);
  ASSERT_EQ(tie_fast.critical_cycle.size(), 1u);
  EXPECT_EQ(tie_fast.critical_cycle, tie_full.critical_cycle);
  EXPECT_EQ(tie_fast.critical_cycle[0], 0);
}

TEST(HowardSccTest, TrivialZeroTokenSelfLoopIsInfinite) {
  RatioGraph rg;
  rg.g.add_nodes(1);
  rg.g.add_arc(0, 0);
  rg.weight = {5};
  rg.tokens = {0};
  const auto sccs = graph::strongly_connected_components(rg.g);
  const CycleRatioResult r =
      max_cycle_ratio_howard_scc(rg, sccs.component, 0, sccs.members[0]);
  EXPECT_TRUE(r.is_infinite());
}

TEST(HowardSccTest, FoldPrefersLargerAndKeepsInfiniteSticky) {
  CycleRatioResult acc;  // empty accumulator
  CycleRatioResult small;
  small.has_cycle = true;
  small.ratio_num = 3;
  small.ratio_den = 2;
  small.ratio = 1.5;
  small.critical_cycle = {7};
  fold_cycle_ratio(small, &acc);
  EXPECT_EQ(acc.ratio_num, 3);

  CycleRatioResult tie = small;  // equal ratio: earlier result sticks
  tie.critical_cycle = {9};
  fold_cycle_ratio(tie, &acc);
  EXPECT_EQ(acc.critical_cycle, std::vector<graph::ArcId>{7});

  CycleRatioResult bigger;
  bigger.has_cycle = true;
  bigger.ratio_num = 4;
  bigger.ratio_den = 2;
  bigger.ratio = 2.0;
  bigger.critical_cycle = {1};
  fold_cycle_ratio(bigger, &acc);
  EXPECT_EQ(acc.ratio_num, 4);

  CycleRatioResult infinite;
  infinite.has_cycle = true;
  infinite.ratio_num = 1;
  infinite.ratio_den = 0;
  infinite.ratio = std::numeric_limits<double>::infinity();
  infinite.critical_cycle = {2};
  fold_cycle_ratio(infinite, &acc);
  EXPECT_TRUE(acc.is_infinite());
  fold_cycle_ratio(bigger, &acc);  // finite never displaces infinite
  EXPECT_TRUE(acc.is_infinite());
  EXPECT_EQ(acc.critical_cycle, std::vector<graph::ArcId>{2});

  CycleRatioResult no_cycle;  // trivial components never displace anything
  CycleRatioResult acc2 = small;
  fold_cycle_ratio(no_cycle, &acc2);
  EXPECT_EQ(acc2.ratio_num, 3);
}

TEST(HowardSccPropertyTest, FoldOfPerSccSolvesReproducesGlobalHoward) {
  // The exact contract the partitioned engine is built on: solving each
  // component independently and folding in ascending component index is
  // bit-identical to whole-graph Howard — including the critical cycle.
  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    util::Rng rng = util::Rng::for_shard(0xf01d, iter);
    RatioGraph rg;
    const auto n = static_cast<std::int32_t>(rng.uniform_int(1, 12));
    rg.g.add_nodes(n);
    const auto arcs = rng.uniform_int(0, 3 * n);
    for (std::int64_t a = 0; a < arcs; ++a) {
      const auto u =
          static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      const auto v =
          static_cast<graph::NodeId>(rng.index(static_cast<std::size_t>(n)));
      rg.g.add_arc(u, v);
      rg.weight.push_back(rng.uniform_int(0, 9));
      // Mostly positive tokens; occasional zeros make some components
      // infinite so the sticky-infinite fold rule is exercised too.
      rg.tokens.push_back(rng.flip(0.15) ? 0 : rng.uniform_int(1, 2));
    }
    const CycleRatioResult global = max_cycle_ratio_howard(rg);
    const auto sccs = graph::strongly_connected_components(rg.g);
    CycleRatioResult folded;
    for (std::int32_t c = 0; c < sccs.num_components; ++c) {
      fold_cycle_ratio(
          max_cycle_ratio_howard_scc(rg, sccs.component, c,
                                     sccs.members[static_cast<std::size_t>(c)]),
          &folded);
    }
    EXPECT_EQ(folded.has_cycle, global.has_cycle) << "iter " << iter;
    EXPECT_EQ(folded.is_infinite(), global.is_infinite()) << "iter " << iter;
    if (global.is_infinite()) {
      // Both must report deadlock, but the witness cycle may differ: the
      // global entry screens the whole graph while the fold surfaces the
      // first infinite component. Each witness must still be token-free.
      for (const graph::ArcId a : folded.critical_cycle) {
        EXPECT_EQ(rg.arc_tokens(a), 0) << "iter " << iter;
      }
      continue;
    }
    // Finite results are bit-identical, critical cycle included.
    EXPECT_EQ(folded.ratio_num, global.ratio_num) << "iter " << iter;
    EXPECT_EQ(folded.ratio_den, global.ratio_den) << "iter " << iter;
    EXPECT_EQ(folded.ratio, global.ratio) << "iter " << iter;
    EXPECT_EQ(folded.critical_cycle, global.critical_cycle)
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace ermes::tmg
