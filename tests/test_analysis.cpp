// Unit tests for the analysis module: TMG elaboration, performance report,
// deadlock diagnosis.

#include <gtest/gtest.h>

#include <set>

#include "analysis/deadlock.h"
#include "analysis/performance.h"
#include "analysis/tmg_builder.h"
#include "sysmodel/builder.h"
#include "tmg/liveness.h"
#include "tmg/token_game.h"

namespace ermes::analysis {
namespace {

using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;
using sysmodel::make_dac14_motivating_example;

SystemModel two_stage() {
  SystemModel sys;
  const ProcessId src = sys.add_process("src", 1);
  const ProcessId p = sys.add_process("p", 4);
  const ProcessId snk = sys.add_process("snk", 1);
  sys.add_channel("a", src, p, 2);
  sys.add_channel("b", p, snk, 3);
  return sys;
}

// ---- TMG structure ---------------------------------------------------------

TEST(TmgBuilderTest, TransitionCounts) {
  const SystemTmg stmg = build_tmg(two_stage());
  // One transition per channel + one compute transition per process.
  EXPECT_EQ(stmg.graph.num_transitions(), 2 + 3);
  // Ring places: src has 2 elements, p has 3, snk has 2 -> 7 places.
  EXPECT_EQ(stmg.graph.num_places(), 7);
}

TEST(TmgBuilderTest, ChannelTransitionDelays) {
  const SystemModel sys = two_stage();
  const SystemTmg stmg = build_tmg(sys);
  EXPECT_EQ(stmg.graph.delay(stmg.channel_transition[0]), 2);
  EXPECT_EQ(stmg.graph.delay(stmg.channel_transition[1]), 3);
  EXPECT_EQ(stmg.graph.delay(stmg.compute_transition[1]), 4);
}

TEST(TmgBuilderTest, OneTokenPerProcessRing) {
  const SystemModel sys = make_dac14_motivating_example();
  const SystemTmg stmg = build_tmg(sys);
  EXPECT_EQ(stmg.graph.total_tokens(), sys.num_processes());
}

TEST(TmgBuilderTest, TokenOnFirstGetPlace) {
  const SystemModel sys = two_stage();
  const SystemTmg stmg = build_tmg(sys);
  for (tmg::PlaceId pl = 0; pl < stmg.graph.num_places(); ++pl) {
    if (stmg.graph.tokens(pl) == 0) continue;
    const PlaceRole& role = stmg.place_role[static_cast<std::size_t>(pl)];
    if (role.process == 0) {
      // Source: token on its first put-place.
      EXPECT_EQ(role.kind, PlaceRole::Kind::kPut);
    } else {
      EXPECT_EQ(role.kind, PlaceRole::Kind::kGet);
    }
  }
}

TEST(TmgBuilderTest, PrimedProcessTokenOnPutPlace) {
  SystemModel sys;
  const ProcessId a = sys.add_process("a", 1);
  const ProcessId b = sys.add_process("b", 1);
  const ProcessId c = sys.add_process("c", 1);
  sys.add_channel("ab", a, b, 1);
  sys.add_channel("bc", b, c, 1);
  sys.set_primed(b, true);
  const SystemTmg stmg = build_tmg(sys);
  bool found = false;
  for (tmg::PlaceId pl = 0; pl < stmg.graph.num_places(); ++pl) {
    const PlaceRole& role = stmg.place_role[static_cast<std::size_t>(pl)];
    if (role.process == b && stmg.graph.tokens(pl) == 1) {
      EXPECT_EQ(role.kind, PlaceRole::Kind::kPut);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TmgBuilderTest, ChannelTransitionSharedBetweenRings) {
  const SystemModel sys = two_stage();
  const SystemTmg stmg = build_tmg(sys);
  // Channel transition "a" has exactly two input places: the put-place of
  // src and the get-place of p (Fig. 3 of the paper).
  const tmg::TransitionId t = stmg.channel_transition[0];
  ASSERT_EQ(stmg.graph.in_places(t).size(), 2u);
  const auto role0 =
      stmg.place_role[static_cast<std::size_t>(stmg.graph.in_places(t)[0])];
  const auto role1 =
      stmg.place_role[static_cast<std::size_t>(stmg.graph.in_places(t)[1])];
  EXPECT_NE(role0.kind == PlaceRole::Kind::kPut,
            role1.kind == PlaceRole::Kind::kPut);
}

TEST(TmgBuilderTest, RingOrderFollowsIOOrders) {
  // In the motivating example P2 puts b then d then f; the TMG must chain
  // ch_b -> ch_d -> ch_f through P2's put-places.
  const SystemModel sys = make_dac14_motivating_example();
  const SystemTmg stmg = build_tmg(sys);
  const ProcessId p2 = sys.find_process("P2");
  const tmg::TransitionId tb =
      stmg.channel_transition[static_cast<std::size_t>(sys.find_channel("b"))];
  const tmg::TransitionId td =
      stmg.channel_transition[static_cast<std::size_t>(sys.find_channel("d"))];
  bool found = false;
  for (tmg::PlaceId pl : stmg.graph.out_places(tb)) {
    if (stmg.graph.consumer(pl) == td &&
        stmg.place_role[static_cast<std::size_t>(pl)].process == p2) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- performance -----------------------------------------------------------

TEST(PerformanceTest, TwoStageCycleTime) {
  // p's ring: ch_a(2) + L_p(4) + ch_b(3) = 9; src ring: 1+2=3; snk: 3+1=4.
  const PerformanceReport report = analyze_system(two_stage());
  ASSERT_TRUE(report.live);
  EXPECT_DOUBLE_EQ(report.cycle_time, 9.0);
  EXPECT_DOUBLE_EQ(report.throughput, 1.0 / 9.0);
  EXPECT_EQ(report.ct_num, 9);
  EXPECT_EQ(report.ct_den, 1);
}

TEST(PerformanceTest, CriticalCycleNamesBottleneckProcess) {
  const PerformanceReport report = analyze_system(two_stage());
  ASSERT_TRUE(report.live);
  EXPECT_EQ(report.critical_processes, (std::vector<ProcessId>{1}));
  // Both channels of p's ring are on the critical cycle.
  EXPECT_EQ(report.critical_channels.size(), 2u);
}

TEST(PerformanceTest, LatencyChangeMovesCriticalCycle) {
  SystemModel sys = two_stage();
  sys.set_latency(1, 1);   // p's ring: 2+1+3 = 6
  sys.set_latency(2, 20);  // snk ring: 3+20 = 23 dominates
  const PerformanceReport report = analyze_system(sys);
  EXPECT_DOUBLE_EQ(report.cycle_time, 23.0);
  EXPECT_EQ(report.critical_processes, (std::vector<ProcessId>{2}));
}

TEST(PerformanceTest, SummarizeMentionsProcesses) {
  const SystemModel sys = two_stage();
  const PerformanceReport report = analyze_system(sys);
  const std::string text = summarize(report, sys);
  EXPECT_NE(text.find("cycle time 9"), std::string::npos);
  EXPECT_NE(text.find("p"), std::string::npos);
}

TEST(PerformanceTest, AnalysisMatchesTokenGameSimulation) {
  const SystemModel sys = make_dac14_motivating_example();
  const SystemTmg stmg = build_tmg(sys);
  const PerformanceReport report = analyze(stmg);
  ASSERT_TRUE(report.live);
  const tmg::TimedSimResult sim =
      tmg::simulate_asap(stmg.graph, stmg.compute_transition[0], 300);
  ASSERT_FALSE(sim.deadlocked);
  EXPECT_NEAR(sim.measured_cycle_time, report.cycle_time, 1e-9);
}

// ---- deadlock --------------------------------------------------------------

TEST(DeadlockTest, MotivatingDeadlockOrderIsDead) {
  SystemModel sys = make_dac14_motivating_example();
  // Section 2: P2 puts (b,d,f) with P6 gets (g,d,e) deadlocks.
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const SystemTmg stmg = build_tmg(sys);
  const PerformanceReport report = analyze(stmg);
  ASSERT_FALSE(report.live);
  const DeadlockDiagnosis diag =
      diagnose_deadlock(stmg, sys, report.dead_cycle);
  ASSERT_TRUE(diag.deadlocked);
  // The circular wait is exactly the one narrated in the paper:
  // P2 blocked at put(d) -> P6 blocked at get(g) -> P5 blocked at get(f).
  const std::string text = to_string(diag, sys);
  EXPECT_NE(text.find("P2 blocked at put(d)"), std::string::npos);
  EXPECT_NE(text.find("P6 blocked at get(g)"), std::string::npos);
  EXPECT_NE(text.find("P5 blocked at get(f)"), std::string::npos);
}

TEST(DeadlockTest, LiveSystemYieldsNoDiagnosis) {
  const DeadlockDiagnosis diag =
      diagnose_system(make_dac14_motivating_example());
  EXPECT_FALSE(diag.deadlocked);
  EXPECT_EQ(to_string(diag, make_dac14_motivating_example()), "no deadlock");
}

TEST(DeadlockTest, WaitCycleAlternatesPutsAndGets) {
  SystemModel sys = make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});
  const DeadlockDiagnosis diag = diagnose_system(sys);
  ASSERT_TRUE(diag.deadlocked);
  ASSERT_FALSE(diag.wait_cycle.empty());
  // Every blocked statement involves a distinct process.
  std::set<ProcessId> procs;
  for (const BlockedStatement& blocked : diag.wait_cycle) {
    procs.insert(blocked.process);
  }
  EXPECT_EQ(procs.size(), diag.wait_cycle.size());
}

}  // namespace
}  // namespace ermes::analysis
