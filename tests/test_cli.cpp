// Integration tests for the `ermes` binary's exit-code and error-message
// contract: 0 success, 1 I/O failure, 2 usage, 3 model parse, 4
// analysis-domain failure — and every failure prints a one-line `error: ...`
// to stderr. The binary path arrives via the ERMES_CLI_PATH compile
// definition (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "io/soc_format.h"
#include "sysmodel/builder.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs `ermes <args>` through the shell, capturing stdout/stderr.
RunResult run_cli(const std::string& args) {
  static int counter = 0;
  const std::string base =
      ::testing::TempDir() + "/ermes_cli_" + std::to_string(::getpid()) +
      "_" + std::to_string(counter++);
  const std::string out_path = base + ".out";
  const std::string err_path = base + ".err";
  const std::string command = std::string(ERMES_CLI_PATH) + " " + args +
                              " >" + out_path + " 2>" + err_path;
  const int status = std::system(command.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.out = slurp(out_path);
  result.err = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return result;
}

// A failure's stderr is exactly one line starting with "error: ".
void expect_error_line(const RunResult& result) {
  ASSERT_FALSE(result.err.empty());
  EXPECT_EQ(result.err.rfind("error: ", 0), 0u) << result.err;
  EXPECT_EQ(std::count(result.err.begin(), result.err.end(), '\n'), 1)
      << result.err;
}

std::string demo_path() {
  static std::string path = [] {
    const std::string p = ::testing::TempDir() + "/ermes_cli_demo.soc";
    ermes::io::save_soc(ermes::sysmodel::make_dac14_motivating_example(), p,
                        "dac14_motivating");
    return p;
  }();
  return path;
}

TEST(CliExitCodes, SuccessIsZero) {
  const RunResult result = run_cli("analyze " + demo_path());
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.err.empty()) << result.err;
  EXPECT_NE(result.out.find("cycle time"), std::string::npos) << result.out;
}

TEST(CliExitCodes, NoArgumentsIsUsage) {
  const RunResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_EQ(result.err.rfind("error: ", 0), 0u) << result.err;
}

TEST(CliExitCodes, UnknownCommandIsUsage) {
  const RunResult result = run_cli("frobnicate " + demo_path());
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliExitCodes, NonNumericPositionalIsUsage) {
  const RunResult result = run_cli("dse " + demo_path() + " ten");
  EXPECT_EQ(result.exit_code, 2);
  expect_error_line(result);
}

TEST(CliExitCodes, BadSweepRangeIsUsage) {
  const RunResult result = run_cli("sweep " + demo_path() + " 9 3");
  EXPECT_EQ(result.exit_code, 2);
  expect_error_line(result);
}

TEST(CliExitCodes, MissingFileIsParseError) {
  const RunResult result = run_cli("analyze /nonexistent/no_such.soc");
  EXPECT_EQ(result.exit_code, 3);
  expect_error_line(result);
}

TEST(CliExitCodes, MalformedModelIsParseError) {
  const std::string bad = ::testing::TempDir() + "/ermes_cli_bad.soc";
  std::ofstream(bad) << "process a latency banana\n";
  const RunResult result = run_cli("analyze " + bad);
  EXPECT_EQ(result.exit_code, 3);
  expect_error_line(result);
  EXPECT_NE(result.err.find("line 1"), std::string::npos) << result.err;
  std::remove(bad.c_str());
}

TEST(CliExitCodes, DeadlockIsAnalysisFailure) {
  // Two processes blocked on each other with no primed token: deadlock.
  const std::string dead = ::testing::TempDir() + "/ermes_cli_dead.soc";
  std::ofstream(dead) << "system dead\n"
                         "process a latency 1\n"
                         "process b latency 1\n"
                         "channel ab a -> b latency 0\n"
                         "channel ba b -> a latency 0\n";
  const RunResult result = run_cli("analyze " + dead);
  EXPECT_EQ(result.exit_code, 4);
  expect_error_line(result);
  EXPECT_NE(result.out.find("DEADLOCK"), std::string::npos) << result.out;
  std::remove(dead.c_str());
}

TEST(CliExitCodes, SimulateTextAndJsonAgree) {
  const RunResult text = run_cli("simulate " + demo_path() + " 50");
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_TRUE(text.err.empty()) << text.err;
  EXPECT_NE(text.out.find("cycles/item"), std::string::npos) << text.out;

  // Flag order is free; the object carries the same run (one line, no
  // stderr) and the key stats the text line prints.
  const RunResult json = run_cli("simulate " + demo_path() + " 50 --json");
  const RunResult json2 = run_cli("simulate " + demo_path() + " --json 50");
  EXPECT_EQ(json.exit_code, 0);
  EXPECT_TRUE(json.err.empty()) << json.err;
  EXPECT_EQ(json.out, json2.out);
  EXPECT_EQ(std::count(json.out.begin(), json.out.end(), '\n'), 1)
      << json.out;
  EXPECT_EQ(json.out.rfind("{", 0), 0u) << json.out;
  EXPECT_NE(json.out.find("\"items\":50"), std::string::npos) << json.out;
  EXPECT_NE(json.out.find("\"cycles\":"), std::string::npos) << json.out;
  EXPECT_NE(json.out.find("\"deadlocked\":false"), std::string::npos)
      << json.out;
  EXPECT_NE(json.out.find("\"stalls\":{"), std::string::npos) << json.out;
}

TEST(CliExitCodes, SimulateDeadlockIsAnalysisFailure) {
  const std::string dead = ::testing::TempDir() + "/ermes_cli_simdead.soc";
  std::ofstream(dead) << "system dead\n"
                         "process a latency 1\n"
                         "process b latency 1\n"
                         "channel ab a -> b latency 0\n"
                         "channel ba b -> a latency 0\n";
  const RunResult text = run_cli("simulate " + dead + " 10");
  EXPECT_EQ(text.exit_code, 4);
  expect_error_line(text);
  EXPECT_NE(text.out.find("DEADLOCK"), std::string::npos) << text.out;

  const RunResult json = run_cli("simulate " + dead + " 10 --json");
  EXPECT_EQ(json.exit_code, 4);
  expect_error_line(json);
  EXPECT_NE(json.out.find("\"deadlocked\":true"), std::string::npos)
      << json.out;
  EXPECT_NE(json.out.find("\"deadlock_processes\":["), std::string::npos)
      << json.out;
  std::remove(dead.c_str());
}

TEST(CliExitCodes, SimulateBadItemCountIsUsage) {
  const RunResult result = run_cli("simulate " + demo_path() + " ten");
  EXPECT_EQ(result.exit_code, 2);
  expect_error_line(result);
}

TEST(CliExitCodes, UnmetTargetIsAnalysisFailure) {
  // The demo system cannot reach a cycle time of 1.
  const RunResult result = run_cli("dse " + demo_path() + " 1");
  EXPECT_EQ(result.exit_code, 4);
  expect_error_line(result);
  EXPECT_NE(result.out.find("target NOT met"), std::string::npos)
      << result.out;
}

TEST(CliExitCodes, RequestWithoutEndpointIsUsage) {
  const RunResult result = run_cli("request analyze " + demo_path());
  EXPECT_EQ(result.exit_code, 2);
  expect_error_line(result);
}

TEST(CliExitCodes, RequestAgainstDeadSocketIsFailure) {
  const RunResult result = run_cli(
      "request --socket /nonexistent/ermes.sock analyze " + demo_path());
  EXPECT_EQ(result.exit_code, 1);
  expect_error_line(result);
}

TEST(CliExitCodes, ServeWithoutEndpointIsUsage) {
  const RunResult result = run_cli("serve");
  EXPECT_EQ(result.exit_code, 2);
  expect_error_line(result);
}

}  // namespace
