// Tests for src/comp — the hierarchical composition layer and the
// SCC-partitioned incremental analysis engine:
//
//  * hierarchy IR + io::parse_soc_hier (extended .soc grammar) + flatten:
//    dotted names, deterministic elaboration order, bit-identity of a
//    flattened hierarchy against the same system hand-written flat
//    (fixed case + randomized property over generated hierarchies);
//  * analyze_partitioned: bit-identical reports vs the monolithic path at
//    every (pool, cache) setting, per-component provenance and slack,
//    fingerprint sensitivity, the aux-memo payload codec;
//  * IncrementalAnalyzer: patch-by-patch bit-identity against a cold
//    analysis of a mirror model for randomized patch sequences, patch
//    validation, dirty-tracking stats;
//  * hierarchical DOT export (SCC colors + cluster subgraphs) and the
//    hostile-input corpus for the hierarchical grammar.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/eval_cache.h"
#include "analysis/performance.h"
#include "analysis/tmg_builder.h"
#include "comp/flatten.h"
#include "comp/hierarchy.h"
#include "comp/incremental.h"
#include "comp/partition.h"
#include "exec/thread_pool.h"
#include "graph/dot.h"
#include "graph/scc.h"
#include "io/soc_format.h"
#include "io/soc_hier.h"
#include "soc_bad_corpus.h"
#include "sysmodel/builder.h"
#include "sysmodel/system.h"
#include "tmg/csr.h"
#include "tmg/dot.h"
#include "util/rng.h"

namespace ermes::comp {
namespace {

using analysis::PerformanceReport;
using sysmodel::ChannelId;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

// Field-by-field exact comparison: the partitioned/incremental engines
// promise bit-identity with the monolithic path, so doubles are compared
// with ==, not a tolerance.
void expect_report_eq(const PerformanceReport& a, const PerformanceReport& b,
                      const std::string& what) {
  EXPECT_EQ(a.live, b.live) << what;
  EXPECT_EQ(a.dead_cycle, b.dead_cycle) << what;
  EXPECT_EQ(a.cycle_time, b.cycle_time) << what;
  EXPECT_EQ(a.ct_num, b.ct_num) << what;
  EXPECT_EQ(a.ct_den, b.ct_den) << what;
  EXPECT_EQ(a.throughput, b.throughput) << what;
  EXPECT_EQ(a.critical_processes, b.critical_processes) << what;
  EXPECT_EQ(a.critical_channels, b.critical_channels) << what;
  EXPECT_EQ(a.critical_places, b.critical_places) << what;
}

// The three-stage pipeline of examples/data/hier_pipeline.soc: three
// instances of a two-process bounded-channel stage (one SCC each), joined
// by unbounded feed-forward channels (which keep the stages decoupled).
std::string pipeline_text() {
  return "system hier_pipeline\n"
         "subsystem stage\n"
         "  port in din = head\n"
         "  port out dout = tail\n"
         "  process head latency 4\n"
         "  process tail latency 6\n"
         "  channel link head -> tail latency 1 capacity 2\n"
         "end\n"
         "process src latency 2\n"
         "process snk latency 1\n"
         "instance front stage\n"
         "instance mid stage\n"
         "instance back stage\n"
         "channel feed src -> front.din latency 1 capacity unbounded\n"
         "channel fm front.dout -> mid.din latency 1 capacity unbounded\n"
         "channel mb mid.dout -> back.din latency 1 capacity unbounded\n"
         "channel out back.dout -> snk latency 1 capacity unbounded\n";
}

SystemModel pipeline_flat() {
  const io::ParseResult parsed = io::parse_soc_flattened(pipeline_text());
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.system;
}

// ---------------------------------------------------------------------------
// Parser

TEST(HierParse, ParsesSubsystemsPortsAndInstances) {
  const io::HierParseResult parsed = io::parse_soc_hier(pipeline_text());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.system_name, "hier_pipeline");
  ASSERT_EQ(parsed.hier.defs.size(), 1u);
  const SubsystemDef& stage = parsed.hier.defs[0];
  EXPECT_EQ(stage.name, "stage");
  ASSERT_EQ(stage.ports.size(), 2u);
  EXPECT_EQ(stage.ports[0].name, "din");
  EXPECT_TRUE(stage.ports[0].is_input);
  EXPECT_TRUE(stage.ports[0].binding.is_local());
  EXPECT_EQ(stage.ports[0].binding.name, "head");
  EXPECT_EQ(stage.ports[1].name, "dout");
  EXPECT_FALSE(stage.ports[1].is_input);
  ASSERT_EQ(stage.processes.size(), 2u);
  ASSERT_EQ(stage.channels.size(), 1u);
  EXPECT_EQ(stage.channels[0].capacity, 2);

  const SubsystemDef& top = parsed.hier.top;
  ASSERT_EQ(top.processes.size(), 2u);
  ASSERT_EQ(top.instances.size(), 3u);
  EXPECT_EQ(top.instances[0].name, "front");
  EXPECT_EQ(top.instances[0].subsystem, "stage");
  ASSERT_EQ(top.channels.size(), 4u);
  EXPECT_EQ(top.channels[0].capacity, sysmodel::kUnboundedCapacity);
  EXPECT_FALSE(top.channels[0].to.is_local());
  EXPECT_EQ(top.channels[0].to.instance, "front");
  EXPECT_EQ(top.channels[0].to.name, "din");
  // Declaration order interleaves processes and instances.
  ASSERT_EQ(top.items.size(), 5u);
  EXPECT_EQ(top.items[0].kind, SubsystemDef::Item::Kind::kProcess);
  EXPECT_EQ(top.items[2].kind, SubsystemDef::Item::Kind::kInstance);
}

TEST(HierParse, FlatDocumentsParseIdenticallyThroughTheHierEntry) {
  // The extended grammar is a strict superset: a flat document produces the
  // same model through parse_soc and parse_soc_flattened.
  const std::string flat = io::write_soc(
      sysmodel::make_dac14_motivating_example(), "dac14");
  const io::ParseResult direct = io::parse_soc(flat);
  const io::ParseResult via_hier = io::parse_soc_flattened(flat);
  ASSERT_TRUE(direct.ok) << direct.error;
  ASSERT_TRUE(via_hier.ok) << via_hier.error;
  EXPECT_EQ(io::write_soc(direct.system, "dac14"),
            io::write_soc(via_hier.system, "dac14"));
}

TEST(HierParse, UnboundedCapacityRoundTripsThroughWriteSoc) {
  SystemModel sys;
  const ProcessId a = sys.add_process("a", 1);
  const ProcessId b = sys.add_process("b", 2);
  const ChannelId c = sys.add_channel("ab", a, b, 0);
  sys.set_channel_capacity(c, sysmodel::kUnboundedCapacity);
  const std::string text = io::write_soc(sys, "u");
  EXPECT_NE(text.find("capacity unbounded"), std::string::npos);
  const io::ParseResult parsed = io::parse_soc(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.system.channel_capacity(0), sysmodel::kUnboundedCapacity);
}

// ---------------------------------------------------------------------------
// Flatten

TEST(Flatten, DottedNamesAndDeterministicOrder) {
  const SystemModel flat = pipeline_flat();
  ASSERT_EQ(flat.num_processes(), 8);
  ASSERT_EQ(flat.num_channels(), 7);
  // Processes in declaration order, instances macro-expanded in place.
  EXPECT_EQ(flat.process_name(0), "src");
  EXPECT_EQ(flat.process_name(1), "snk");
  EXPECT_EQ(flat.process_name(2), "front.head");
  EXPECT_EQ(flat.process_name(3), "front.tail");
  EXPECT_EQ(flat.process_name(6), "back.head");
  // Inner channels come before the declaring scope's own channels.
  EXPECT_EQ(flat.channel_name(0), "front.link");
  EXPECT_EQ(flat.channel_name(2), "back.link");
  EXPECT_EQ(flat.channel_name(3), "feed");
  EXPECT_EQ(flat.channel_capacity(0), 2);
  EXPECT_EQ(flat.channel_capacity(3), sysmodel::kUnboundedCapacity);
  // Port bindings resolve to the bound internal processes.
  const ChannelId feed = flat.find_channel("feed");
  EXPECT_EQ(flat.channel_source(feed), flat.find_process("src"));
  EXPECT_EQ(flat.channel_target(feed), flat.find_process("front.head"));
  const ChannelId fm = flat.find_channel("fm");
  EXPECT_EQ(flat.channel_source(fm), flat.find_process("front.tail"));
  EXPECT_EQ(flat.channel_target(fm), flat.find_process("mid.head"));
}

TEST(Flatten, IsDeterministicAcrossRepeats) {
  const io::HierParseResult parsed = io::parse_soc_hier(pipeline_text());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const FlattenResult once = flatten(parsed.hier);
  const FlattenResult twice = flatten(parsed.hier);
  ASSERT_TRUE(once.ok) << once.error;
  ASSERT_TRUE(twice.ok) << twice.error;
  EXPECT_EQ(io::write_soc(once.system, "x"), io::write_soc(twice.system, "x"));
}

TEST(Flatten, MatchesHandFlattenedPipeline) {
  // The same system written out flat by hand, following the documented
  // elaboration order. write_soc covers names, ids, orders, latencies and
  // capacities; the analysis comparison covers everything the TMG sees.
  SystemModel hand;
  const ProcessId src = hand.add_process("src", 2);
  const ProcessId snk = hand.add_process("snk", 1);
  struct Stage {
    ProcessId head, tail;
  };
  std::vector<Stage> stages;
  for (const char* inst : {"front", "mid", "back"}) {
    Stage s;
    s.head = hand.add_process(std::string(inst) + ".head", 4);
    s.tail = hand.add_process(std::string(inst) + ".tail", 6);
    const ChannelId link =
        hand.add_channel(std::string(inst) + ".link", s.head, s.tail, 1);
    hand.set_channel_capacity(link, 2);
    stages.push_back(s);
  }
  const ChannelId feed = hand.add_channel("feed", src, stages[0].head, 1);
  const ChannelId fm =
      hand.add_channel("fm", stages[0].tail, stages[1].head, 1);
  const ChannelId mb =
      hand.add_channel("mb", stages[1].tail, stages[2].head, 1);
  const ChannelId out = hand.add_channel("out", stages[2].tail, snk, 1);
  for (const ChannelId c : {feed, fm, mb, out}) {
    hand.set_channel_capacity(c, sysmodel::kUnboundedCapacity);
  }

  const SystemModel flat = pipeline_flat();
  EXPECT_EQ(io::write_soc(flat, "x"), io::write_soc(hand, "x"));
  expect_report_eq(analysis::analyze_system(flat),
                   analysis::analyze_system(hand), "pipeline");
}

TEST(Flatten, DepthCapRejectsRunawayNesting) {
  const io::ParseResult deep = io::parse_soc_flattened(
      ermes::testing::deep_hier_soc(kMaxHierDepth + 4));
  EXPECT_FALSE(deep.ok);
  EXPECT_FALSE(deep.error.empty());
  EXPECT_NE(deep.error.find("deeper than"), std::string::npos) << deep.error;
  // Just inside the cap elaborates fine.
  const io::ParseResult ok = io::parse_soc_flattened(
      ermes::testing::deep_hier_soc(kMaxHierDepth - 1));
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(Flatten, HostileHierCorpusIsRejectedStructurally) {
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_hier_corpus()) {
    const io::ParseResult parsed = io::parse_soc_flattened(bad.text);
    EXPECT_FALSE(parsed.ok) << bad.label;
    EXPECT_FALSE(parsed.error.empty()) << bad.label;
  }
  // The flat corpus stays rejected through the hierarchical entry too.
  for (const ermes::testing::BadSoc& bad : ermes::testing::bad_soc_corpus()) {
    const io::ParseResult parsed = io::parse_soc_flattened(bad.text);
    EXPECT_FALSE(parsed.ok) << bad.label;
    EXPECT_FALSE(parsed.error.empty()) << bad.label;
  }
}

TEST(Flatten, InstantiationCycleErrorNamesTheCycle) {
  const io::ParseResult parsed = io::parse_soc_flattened(
      "subsystem a\ninstance x b\nend\n"
      "subsystem b\ninstance y a\nend\n"
      "instance top a\n");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("cycle"), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("a"), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("b"), std::string::npos) << parsed.error;
}

// ---------------------------------------------------------------------------
// Randomized flatten-equivalence property

// Generates a random two-level hierarchy together with an independently
// hand-flattened flat model of the same system. Definitions are linear
// chains of processes with bounded channels and an in/out port; the top
// scope interleaves local processes and instances and chains consecutive
// items with channels of random capacity (bounded, rendezvous, unbounded).
struct GeneratedPair {
  HierarchicalModel hier;
  SystemModel flat;
};

GeneratedPair random_hierarchy(util::Rng& rng) {
  GeneratedPair out;

  const int num_defs = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<int> def_procs;
  struct DefImpl {
    sysmodel::ParetoSet set;
    std::size_t selected = 0;
    bool present = false;
  };
  std::vector<DefImpl> def_impls(static_cast<std::size_t>(num_defs));
  for (int d = 0; d < num_defs; ++d) {
    SubsystemDef def;
    def.name = "blk" + std::to_string(d);
    const int np = static_cast<int>(rng.uniform_int(1, 3));
    def_procs.push_back(np);
    for (int p = 0; p < np; ++p) {
      ProcessDecl decl;
      decl.name = "p" + std::to_string(p);
      decl.latency = rng.uniform_int(1, 9);
      decl.primed = rng.flip(0.25);
      def.add_process(decl);
    }
    for (int p = 0; p + 1 < np; ++p) {
      ChannelDecl chan;
      chan.name = "c" + std::to_string(p);
      chan.from = {"", "p" + std::to_string(p)};
      chan.to = {"", "p" + std::to_string(p + 1)};
      chan.latency = rng.uniform_int(0, 3);
      chan.capacity = rng.uniform_int(1, 3);
      def.channels.push_back(chan);
    }
    def.ports.push_back({"din", true, {"", "p0"}});
    def.ports.push_back({"dout", false, {"", "p" + std::to_string(np - 1)}});
    if (rng.flip(0.5)) {
      // Two impl rows for p0 with distinct latencies; mirror the flat
      // parser's finalize: group into a ParetoSet, restore the selection.
      DefImpl& mirror = def_impls[static_cast<std::size_t>(d)];
      mirror.present = true;
      const int selected_row = static_cast<int>(rng.uniform_int(0, 1));
      for (int k = 0; k < 2; ++k) {
        ImplDecl impl;
        impl.process = "p0";
        impl.impl.name = "v" + std::to_string(k);
        impl.impl.latency = (k + 1) * 4 + rng.uniform_int(0, 2);
        impl.impl.area = static_cast<double>(2 - k);
        impl.selected = k == selected_row;
        mirror.set.add(impl.impl);
        def.impls.push_back(impl);
      }
      mirror.selected =
          mirror.set.find(def.impls[def.impls.size() -
                                    (selected_row == 0 ? 2u : 1u)]
                              .impl);
    }
    out.hier.defs.push_back(std::move(def));
  }

  // Top scope: a chain of 2..5 items, each a local process or an instance.
  const int num_items = static_cast<int>(rng.uniform_int(2, 5));
  struct TopItem {
    bool is_instance = false;
    int def = 0;                  // when instance
    Endpoint hier_in, hier_out;   // endpoints as the hier model names them
    std::string flat_in, flat_out;  // the same endpoints in the flat model
  };
  std::vector<TopItem> items;
  struct ImplToApply {
    std::string process;
    int def = 0;
  };
  std::vector<ImplToApply> impls_to_apply;
  for (int i = 0; i < num_items; ++i) {
    TopItem item;
    item.is_instance = rng.flip(0.6);
    const std::string name =
        (item.is_instance ? "u" : "t") + std::to_string(i);
    if (item.is_instance) {
      item.def = static_cast<int>(rng.uniform_int(0, num_defs - 1));
      out.hier.top.add_instance({name, "blk" + std::to_string(item.def)});
      item.hier_in = {name, "din"};
      item.hier_out = {name, "dout"};
      item.flat_in = name + ".p0";
      item.flat_out =
          name + ".p" +
          std::to_string(def_procs[static_cast<std::size_t>(item.def)] - 1);
      // Hand-flatten the instance body in place.
      const SubsystemDef& def =
          out.hier.defs[static_cast<std::size_t>(item.def)];
      for (const ProcessDecl& p : def.processes) {
        const ProcessId id =
            out.flat.add_process(name + "." + p.name, p.latency);
        out.flat.set_primed(id, p.primed);
      }
      for (const ChannelDecl& c : def.channels) {
        const ChannelId id = out.flat.add_channel(
            name + "." + c.name, out.flat.find_process(name + "." + c.from.name),
            out.flat.find_process(name + "." + c.to.name), c.latency);
        out.flat.set_channel_capacity(id, c.capacity);
      }
      if (def_impls[static_cast<std::size_t>(item.def)].present) {
        impls_to_apply.push_back({name + ".p0", item.def});
      }
    } else {
      ProcessDecl decl;
      decl.name = name;
      decl.latency = rng.uniform_int(1, 9);
      decl.primed = rng.flip(0.25);
      out.hier.top.add_process(decl);
      const ProcessId id = out.flat.add_process(name, decl.latency);
      out.flat.set_primed(id, decl.primed);
      item.hier_in = item.hier_out = {"", name};
      item.flat_in = item.flat_out = name;
    }
    items.push_back(std::move(item));
  }

  // Chain consecutive items; channels are added after the top scope's items.
  for (int i = 0; i + 1 < num_items; ++i) {
    ChannelDecl chan;
    chan.name = "tc" + std::to_string(i);
    chan.from = items[static_cast<std::size_t>(i)].hier_out;
    chan.to = items[static_cast<std::size_t>(i + 1)].hier_in;
    chan.latency = rng.uniform_int(0, 3);
    const std::int64_t caps[] = {0, 1, 2, sysmodel::kUnboundedCapacity};
    chan.capacity = caps[rng.index(4)];
    out.hier.top.channels.push_back(chan);
    const ChannelId id = out.flat.add_channel(
        chan.name,
        out.flat.find_process(items[static_cast<std::size_t>(i)].flat_out),
        out.flat.find_process(items[static_cast<std::size_t>(i + 1)].flat_in),
        chan.latency);
    out.flat.set_channel_capacity(id, chan.capacity);
  }

  // Impl sets are applied at the end (order across processes is irrelevant:
  // set_implementations is per-process).
  for (const ImplToApply& apply : impls_to_apply) {
    const DefImpl& mirror = def_impls[static_cast<std::size_t>(apply.def)];
    out.flat.set_implementations(out.flat.find_process(apply.process),
                                 mirror.set, mirror.selected);
  }
  return out;
}

TEST(FlattenProperty, RandomHierarchiesMatchHandFlattening) {
  constexpr int kIterations = 40;
  for (int iter = 0; iter < kIterations; ++iter) {
    util::Rng rng = util::Rng::for_shard(0xf1a77e4, static_cast<std::uint64_t>(iter));
    const GeneratedPair gen = random_hierarchy(rng);
    const FlattenResult flattened = flatten(gen.hier);
    ASSERT_TRUE(flattened.ok) << "iter " << iter << ": " << flattened.error;
    EXPECT_EQ(io::write_soc(flattened.system, "x"),
              io::write_soc(gen.flat, "x"))
        << "iter " << iter;
    expect_report_eq(analysis::analyze_system(flattened.system),
                     analysis::analyze_system(gen.flat),
                     "iter " + std::to_string(iter));
  }
}

// ---------------------------------------------------------------------------
// Partitioned analysis

TEST(Partitioned, BitIdenticalToMonolithicAtEverySetting) {
  std::vector<SystemModel> systems;
  systems.push_back(sysmodel::make_dac14_motivating_example());
  systems.push_back(pipeline_flat());
  for (int iter = 0; iter < 10; ++iter) {
    util::Rng rng = util::Rng::for_shard(0x9a97, static_cast<std::uint64_t>(iter));
    systems.push_back(random_hierarchy(rng).flat);
  }
  exec::ThreadPool pool(4);
  analysis::EvalCache cache;
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const SystemModel& sys = systems[i];
    const PerformanceReport mono = analysis::analyze_system(sys);
    const std::string what = "system " + std::to_string(i);
    expect_report_eq(analyze_partitioned(sys).report, mono, what);
    expect_report_eq(analyze_partitioned(sys, {.pool = &pool}).report, mono,
                     what + " +pool");
    const PartitionedReport cold =
        analyze_partitioned(sys, {.pool = &pool, .cache = &cache});
    expect_report_eq(cold.report, mono, what + " +pool+cache cold");
    // A second run replays every component from the aux memo.
    const PartitionedReport warm =
        analyze_partitioned(sys, {.cache = &cache});
    expect_report_eq(warm.report, mono, what + " +cache warm");
    EXPECT_EQ(warm.solved, 0) << what;
    EXPECT_EQ(warm.reused, static_cast<int>(warm.sccs.size())) << what;
  }
}

TEST(Partitioned, CsrSolverBitIdenticalAcrossPoolAndCache) {
  // The CSR solver branch of analyze_partitioned: per-worker workspaces on
  // the pool path (this test runs under TSan in CI), warm re-prepares on
  // repeated solves, and memo interchangeability with the legacy branch
  // through a shared EvalCache.
  std::vector<SystemModel> systems;
  systems.push_back(sysmodel::make_dac14_motivating_example());
  systems.push_back(pipeline_flat());
  for (int iter = 0; iter < 6; ++iter) {
    util::Rng rng = util::Rng::for_shard(0xc5a, static_cast<std::uint64_t>(iter));
    systems.push_back(random_hierarchy(rng).flat);
  }
  exec::ThreadPool pool(4);
  tmg::CycleMeanSolver solver;
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const SystemModel& sys = systems[i];
    const PerformanceReport mono = analysis::analyze_system(sys);
    const std::string what = "system " + std::to_string(i);
    expect_report_eq(analyze_partitioned(sys, {.solver = &solver}).report,
                     mono, what + " +solver");
    expect_report_eq(
        analyze_partitioned(sys, {.pool = &pool, .solver = &solver}).report,
        mono, what + " +pool+solver");
    // Same structure again: the solver must stay warm (weight refresh, no
    // recompile) and still reproduce the report bit for bit.
    const std::int64_t compiles = solver.stats().compiles;
    expect_report_eq(
        analyze_partitioned(sys, {.pool = &pool, .solver = &solver}).report,
        mono, what + " +pool+solver warm");
    EXPECT_EQ(solver.stats().compiles, compiles) << what;
  }
  EXPECT_GT(solver.stats().weight_refreshes, 0);

  // Memo entries written by the legacy branch are replayed by the solver
  // branch (and vice versa): the CSR fingerprint hashes the identical word
  // sequence, so a shared cache sees one key space.
  analysis::EvalCache cache;
  const SystemModel& sys = systems[0];
  const PerformanceReport mono = analysis::analyze_system(sys);
  const PartitionedReport legacy_cold =
      analyze_partitioned(sys, {.cache = &cache});
  expect_report_eq(legacy_cold.report, mono, "legacy cold");
  const PartitionedReport solver_warm =
      analyze_partitioned(sys, {.cache = &cache, .solver = &solver});
  expect_report_eq(solver_warm.report, mono, "solver replay");
  EXPECT_EQ(solver_warm.solved, 0);
  EXPECT_EQ(solver_warm.reused, static_cast<int>(solver_warm.sccs.size()));
}

TEST(Partitioned, ProvenanceOnTheDecoupledPipeline) {
  const SystemModel flat = pipeline_flat();
  const PartitionedReport part = analyze_partitioned(flat);
  ASSERT_TRUE(part.report.live);
  // Each stage is its own SCC (bounded internal channel); the unbounded
  // joins keep src, snk, and the three stages in five separate components.
  EXPECT_EQ(part.sccs.size(), 5u);
  ASSERT_GE(part.critical_scc, 0);
  const SccInfo& critical =
      part.sccs[static_cast<std::size_t>(part.critical_scc)];
  // All three stages tie at ratio (4+6+1)/1 = 11... with capacity 2 the
  // stage ring carries 2 tokens on the space place; the exact value is
  // whatever the monolithic solver reports — pin the invariants instead:
  EXPECT_EQ(critical.slack, 0.0);
  EXPECT_EQ(critical.cycle_ratio, part.report.cycle_time);
  for (const SccInfo& scc : part.sccs) {
    EXPECT_GE(scc.slack, 0.0);
    if (scc.has_cycle) {
      EXPECT_EQ(scc.slack, part.report.cycle_time - scc.cycle_ratio);
      EXPECT_LE(scc.cycle_ratio, part.report.cycle_time);
    }
  }
  // The critical component is one of the stages; the report's critical
  // processes (those on the witness cycle) are a subset of the component's
  // processes — the cycle need not touch every process in its SCC.
  ASSERT_EQ(critical.processes.size(), 2u);
  const std::string head = flat.process_name(critical.processes[0]);
  EXPECT_NE(head.find(".head"), std::string::npos) << head;
  ASSERT_FALSE(part.report.critical_processes.empty());
  for (const ProcessId p : part.report.critical_processes) {
    EXPECT_NE(std::find(critical.processes.begin(), critical.processes.end(),
                        p),
              critical.processes.end())
        << flat.process_name(p);
  }
  // src and snk sit in their own trivial (but cyclic: process ring)
  // components, strictly slower than the stages.
  bool found_src = false;
  for (const SccInfo& scc : part.sccs) {
    for (const ProcessId p : scc.processes) {
      if (flat.process_name(p) == "src") {
        found_src = true;
        EXPECT_GT(scc.slack, 0.0);
        EXPECT_NE(&scc, &critical);
      }
    }
  }
  EXPECT_TRUE(found_src);
}

TEST(Partitioned, AnalyzeCachedInteroperatesWithEvalCache) {
  const SystemModel sys = pipeline_flat();
  const PerformanceReport mono = analysis::analyze_system(sys);

  // Partitioned first: the whole-report memo is filled for cache.analyze.
  analysis::EvalCache first;
  expect_report_eq(analyze_cached(sys, first), mono, "cold analyze_cached");
  const std::int64_t misses_after_cold = first.misses();
  expect_report_eq(first.analyze(sys), mono, "EvalCache::analyze after");
  EXPECT_EQ(first.misses(), misses_after_cold) << "expected a memo hit";

  // EvalCache::analyze first: analyze_cached replays the same entry.
  analysis::EvalCache second;
  expect_report_eq(second.analyze(sys), mono, "cold EvalCache::analyze");
  const std::int64_t misses_after_mono = second.misses();
  expect_report_eq(analyze_cached(sys, second), mono, "analyze_cached after");
  EXPECT_EQ(second.misses(), misses_after_mono) << "expected a memo hit";
}

TEST(Partitioned, FingerprintIsSensitiveToSolveInputs) {
  const SystemModel sys = pipeline_flat();
  const analysis::SystemTmg stmg = analysis::build_tmg(sys);
  tmg::RatioGraph rg = tmg::to_ratio_graph(stmg.graph);
  const graph::SccResult sccs = graph::strongly_connected_components(rg.g);
  ASSERT_GT(sccs.num_components, 1);

  const auto fp = [&](std::int32_t comp) {
    return scc_fingerprint(rg, sccs.component, comp,
                           sccs.members[static_cast<std::size_t>(comp)]);
  };
  // Deterministic, and distinct across components.
  EXPECT_EQ(fp(0), fp(0));
  EXPECT_NE(fp(0), fp(1));

  // Find a component with an internal arc and perturb that arc.
  for (std::int32_t comp = 0; comp < sccs.num_components; ++comp) {
    const std::vector<graph::NodeId>& members =
        sccs.members[static_cast<std::size_t>(comp)];
    if (members.size() < 2) continue;
    const std::uint64_t base = fp(comp);
    for (graph::ArcId a = 0; a < rg.g.num_arcs(); ++a) {
      if (sccs.component[static_cast<std::size_t>(rg.g.tail(a))] != comp ||
          sccs.component[static_cast<std::size_t>(rg.g.head(a))] != comp) {
        continue;
      }
      rg.weight[static_cast<std::size_t>(a)] += 1;
      EXPECT_NE(fp(comp), base) << "weight change must change the key";
      rg.weight[static_cast<std::size_t>(a)] -= 1;
      rg.tokens[static_cast<std::size_t>(a)] += 1;
      EXPECT_NE(fp(comp), base) << "token change must change the key";
      rg.tokens[static_cast<std::size_t>(a)] -= 1;
      EXPECT_EQ(fp(comp), base) << "restored graph must restore the key";
      return;
    }
  }
  FAIL() << "no multi-member component with an internal arc";
}

TEST(Partitioned, SccResultCodecRoundTrips) {
  tmg::CycleRatioResult finite;
  finite.has_cycle = true;
  finite.ratio_num = 22;
  finite.ratio_den = 7;
  finite.ratio = static_cast<double>(22) / static_cast<double>(7);
  finite.critical_cycle = {3, 1, 4};
  tmg::CycleRatioResult decoded;
  ASSERT_TRUE(decode_scc_result(encode_scc_result(finite), &decoded));
  EXPECT_EQ(decoded.has_cycle, finite.has_cycle);
  EXPECT_EQ(decoded.ratio_num, finite.ratio_num);
  EXPECT_EQ(decoded.ratio_den, finite.ratio_den);
  EXPECT_EQ(decoded.ratio, finite.ratio);
  EXPECT_EQ(decoded.critical_cycle, finite.critical_cycle);

  tmg::CycleRatioResult none;  // trivial component: no cycle
  ASSERT_TRUE(decode_scc_result(encode_scc_result(none), &decoded));
  EXPECT_FALSE(decoded.has_cycle);
  EXPECT_EQ(decoded.ratio, 0.0);

  tmg::CycleRatioResult infinite;  // zero-token cycle
  infinite.has_cycle = true;
  infinite.ratio_num = 5;
  infinite.ratio_den = 0;
  infinite.ratio = std::numeric_limits<double>::infinity();
  infinite.critical_cycle = {2};
  ASSERT_TRUE(decode_scc_result(encode_scc_result(infinite), &decoded));
  EXPECT_TRUE(decoded.is_infinite());
  EXPECT_EQ(decoded.critical_cycle, infinite.critical_cycle);

  // Malformed payloads are rejected, not misread.
  EXPECT_FALSE(decode_scc_result({}, &decoded));
  EXPECT_FALSE(decode_scc_result({1, 2}, &decoded));
  EXPECT_FALSE(decode_scc_result({1, 2, -1}, &decoded));  // negative den
}

// ---------------------------------------------------------------------------
// Incremental sessions

TEST(Incremental, ColdAnalysisMatchesMonolithic) {
  IncrementalAnalyzer inc(pipeline_flat());
  expect_report_eq(inc.analyze().report,
                   analysis::analyze_system(pipeline_flat()), "cold");
  EXPECT_EQ(inc.stats().analyses, 1);
  EXPECT_EQ(inc.stats().structure_rebuilds, 1);
}

TEST(Incremental, LatencyPatchesRecomputeOnlyDirtyComponents) {
  SystemModel mirror = pipeline_flat();
  IncrementalAnalyzer inc(pipeline_flat());
  inc.analyze();

  const ProcessId mid_head = mirror.find_process("mid.head");
  ASSERT_TRUE(inc.set_latency(mid_head, 9));
  mirror.set_latency(mid_head, 9);
  expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                   "after latency patch");
  // Only mid's component was dirtied; the other components were clean.
  EXPECT_EQ(inc.stats().structure_rebuilds, 1);
  EXPECT_GE(inc.stats().sccs_clean, 3);

  const ChannelId fm = mirror.find_channel("fm");
  ASSERT_TRUE(inc.set_channel_latency(fm, 5));
  mirror.set_channel_latency(fm, 5);
  expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                   "after channel-latency patch");
  EXPECT_EQ(inc.stats().structure_rebuilds, 1);
}

TEST(Incremental, RetargetForcesAStructureRebuild) {
  SystemModel mirror = pipeline_flat();
  IncrementalAnalyzer inc(pipeline_flat());
  inc.analyze();
  const ChannelId out = mirror.find_channel("out");
  const ProcessId src = mirror.find_process("src");
  ASSERT_TRUE(inc.retarget_channel(out, src));
  mirror.retarget_channel(out, src);
  expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                   "after retarget");
  EXPECT_EQ(inc.stats().structure_rebuilds, 2);
}

TEST(Incremental, SelectImplementationPatch) {
  // The motivating example ships without Pareto sets; attach one so the
  // select patch has something to pick from.
  SystemModel mirror = sysmodel::make_dac14_motivating_example();
  const ProcessId with_impls = 0;
  sysmodel::ParetoSet set;
  set.add({"fast", mirror.latency(with_impls), 4.0});
  set.add({"slow", mirror.latency(with_impls) + 25, 1.0});
  mirror.set_implementations(with_impls, set, 0);
  SystemModel seed = mirror;
  IncrementalAnalyzer inc(seed);
  inc.analyze();
  ASSERT_GT(mirror.implementations(with_impls).size(), 1u);
  const std::size_t pick = mirror.implementations(with_impls).size() - 1;
  ASSERT_TRUE(inc.select_implementation(with_impls, pick));
  mirror.select_implementation(with_impls, pick);
  expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                   "after select");
  // A rejected out-of-range pick leaves the selection alone.
  EXPECT_FALSE(inc.select_implementation(with_impls, 99));
  expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                   "after rejected select");
}

TEST(Incremental, InvalidPatchesAreRejectedWithoutSideEffects) {
  IncrementalAnalyzer inc(pipeline_flat());
  const PerformanceReport before = inc.analyze().report;
  std::string error;
  EXPECT_FALSE(inc.set_latency(sysmodel::kInvalidProcess, 3, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(inc.set_latency(999, 3, &error));
  EXPECT_FALSE(inc.set_latency(0, -1, &error));
  EXPECT_FALSE(inc.set_channel_latency(999, 1, &error));
  EXPECT_FALSE(inc.set_channel_latency(0, -2, &error));
  EXPECT_FALSE(inc.select_implementation(0, 99, &error));
  EXPECT_FALSE(inc.retarget_channel(999, 0, &error));
  EXPECT_FALSE(inc.retarget_channel(0, 999, &error));
  expect_report_eq(inc.analyze().report, before,
                   "rejected patches must not perturb the analysis");
}

TEST(IncrementalProperty, RandomPatchSequencesMatchColdAnalysis) {
  constexpr int kSystems = 8;
  constexpr int kPatches = 12;
  analysis::EvalCache shared;  // exercised across all sessions
  for (int s = 0; s < kSystems; ++s) {
    util::Rng rng = util::Rng::for_shard(0x1ac4e5, static_cast<std::uint64_t>(s));
    SystemModel mirror = random_hierarchy(rng).flat;
    IncrementalAnalyzer::Options options;
    options.cache = &shared;
    IncrementalAnalyzer inc(mirror, options);
    expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                     "system " + std::to_string(s) + " cold");
    for (int k = 0; k < kPatches; ++k) {
      const std::string what =
          "system " + std::to_string(s) + " patch " + std::to_string(k);
      switch (rng.uniform_int(0, 3)) {
        case 0: {
          const auto p =
              static_cast<ProcessId>(rng.index(
                  static_cast<std::size_t>(mirror.num_processes())));
          const std::int64_t latency = rng.uniform_int(1, 9);
          ASSERT_TRUE(inc.set_latency(p, latency)) << what;
          mirror.set_latency(p, latency);
          break;
        }
        case 1: {
          const auto c =
              static_cast<ChannelId>(rng.index(
                  static_cast<std::size_t>(mirror.num_channels())));
          const std::int64_t latency = rng.uniform_int(0, 4);
          ASSERT_TRUE(inc.set_channel_latency(c, latency)) << what;
          mirror.set_channel_latency(c, latency);
          break;
        }
        case 2: {
          ProcessId with_impls = sysmodel::kInvalidProcess;
          for (ProcessId p = 0; p < mirror.num_processes(); ++p) {
            if (mirror.has_implementations(p)) with_impls = p;
          }
          if (with_impls == sysmodel::kInvalidProcess) continue;
          const std::size_t pick =
              rng.index(mirror.implementations(with_impls).size());
          ASSERT_TRUE(inc.select_implementation(with_impls, pick)) << what;
          mirror.select_implementation(with_impls, pick);
          break;
        }
        default: {
          const auto c =
              static_cast<ChannelId>(rng.index(
                  static_cast<std::size_t>(mirror.num_channels())));
          const auto target =
              static_cast<ProcessId>(rng.index(
                  static_cast<std::size_t>(mirror.num_processes())));
          std::string error;
          if (inc.retarget_channel(c, target, &error)) {
            mirror.retarget_channel(c, target);
          }
          break;
        }
      }
      expect_report_eq(inc.analyze().report, analysis::analyze_system(mirror),
                       what);
    }
    EXPECT_EQ(inc.stats().patches + 1, inc.stats().analyses)
        << "one analyze per patch plus the cold one";
  }
}

// ---------------------------------------------------------------------------
// DOT export

TEST(HierDot, SccColorsAndClusterSubgraphs) {
  const SystemModel flat = pipeline_flat();
  const analysis::SystemTmg stmg = analysis::build_tmg(flat);

  tmg::TmgDotOptions options;
  options.color_sccs = true;
  options.transition_cluster = [&](tmg::TransitionId t) -> std::string {
    // Transition names look like "L_front.head" / "ch_front.link": the
    // instance path sits between the role prefix and the first dot.
    const std::string& name = stmg.graph.transition_name(t);
    const std::size_t us = name.find('_');
    const std::string rest =
        us == std::string::npos ? name : name.substr(us + 1);
    const std::size_t dot = rest.find('.');
    return dot == std::string::npos ? std::string() : rest.substr(0, dot);
  };
  const std::string dot = to_dot(stmg.graph, options);
  EXPECT_NE(dot.find("subgraph \"cluster_front\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("subgraph \"cluster_mid\""), std::string::npos);
  EXPECT_NE(dot.find("subgraph \"cluster_back\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"#"), std::string::npos);
  EXPECT_NE(dot.find(graph::scc_palette(0)), std::string::npos);

  // The legacy export is byte-identical to default options: no SCC colors
  // (the lightgrey token fill predates v2 and stays), no clusters.
  EXPECT_EQ(to_dot(stmg.graph), to_dot(stmg.graph, tmg::TmgDotOptions{}));
  EXPECT_EQ(to_dot(stmg.graph).find("cluster_"), std::string::npos);
  EXPECT_EQ(to_dot(stmg.graph).find("fillcolor=\"#"), std::string::npos);
}

TEST(HierDot, PaletteCyclesAndHandlesSentinels) {
  EXPECT_EQ(graph::scc_palette(-1), "white");
  EXPECT_EQ(graph::scc_palette(0), graph::scc_palette(12));
  EXPECT_NE(graph::scc_palette(0), graph::scc_palette(1));
}

}  // namespace
}  // namespace ermes::comp
