// Unit tests for the VCD waveform tracer.

#include <gtest/gtest.h>

#include "sim/system_sim.h"
#include "sim/trace.h"
#include "sysmodel/builder.h"

namespace ermes::sim {
namespace {

Kernel two_stage_kernel() {
  Kernel kernel;
  const auto prod = kernel.add_process(
      "prod", Program{Statement::put(0), Statement::compute(3)});
  const auto cons = kernel.add_process(
      "cons", Program{Statement::get(0), Statement::compute(5)});
  kernel.add_channel("link", prod, cons, 2);
  return kernel;
}

TEST(TracerTest, RecordsEvents) {
  Kernel kernel = two_stage_kernel();
  Tracer tracer(kernel);
  kernel.run(0, 10);
  EXPECT_FALSE(tracer.events().empty());
  // Times are non-decreasing.
  for (std::size_t i = 1; i < tracer.events().size(); ++i) {
    EXPECT_GE(tracer.events()[i].time, tracer.events()[i - 1].time);
  }
}

TEST(TracerTest, VcdStructure) {
  Kernel kernel = two_stage_kernel();
  Tracer tracer(kernel);
  kernel.run(0, 5);
  const std::string vcd = tracer.to_vcd();
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("proc_prod"), std::string::npos);
  EXPECT_NE(vcd.find("proc_cons"), std::string::npos);
  EXPECT_NE(vcd.find("chan_link"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(TracerTest, ObservesStallStates) {
  // Consumer is slower: the producer must show the waiting state (b10).
  Kernel kernel;
  const auto prod =
      kernel.add_process("prod", Program{Statement::put(0)});
  const auto cons = kernel.add_process(
      "cons", Program{Statement::get(0), Statement::compute(50)});
  kernel.add_channel("c", prod, cons, 1);
  Tracer tracer(kernel);
  kernel.run(0, 3);
  bool saw_wait = false;
  for (const TraceEvent& event : tracer.events()) {
    if (event.kind == TraceEvent::Kind::kProcessState &&
        event.index == prod &&
        event.value ==
            static_cast<std::int32_t>(ProcessState::Status::kWaiting)) {
      saw_wait = true;
    }
  }
  EXPECT_TRUE(saw_wait);
}

TEST(TracerTest, FifoOccupancyTracked) {
  Kernel kernel;
  const auto prod = kernel.add_process(
      "prod", Program{Statement::put(0), Statement::compute(1)});
  const auto cons = kernel.add_process(
      "cons", Program{Statement::get(0), Statement::compute(40)});
  kernel.add_channel("fifo", prod, cons, 1, 3);
  Tracer tracer(kernel);
  kernel.run(0, 100, 60);
  std::int32_t max_level = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (event.kind == TraceEvent::Kind::kChannelOccupancy) {
      max_level = std::max(max_level, event.value);
    }
  }
  EXPECT_EQ(max_level, 3);  // the buffer fills to capacity
}

TEST(TracerTest, DetachesOnDestruction) {
  Kernel kernel = two_stage_kernel();
  {
    Tracer tracer(kernel);
    kernel.run(0, 2);
    EXPECT_FALSE(tracer.events().empty());
  }
  // No tracer attached: further simulation must not crash.
  kernel.run(0, 2);
}

TEST(TracerTest, WorksOnFullSystemSimulation) {
  const sysmodel::SystemModel sys =
      sysmodel::make_dac14_motivating_example();
  Kernel kernel = build_kernel(sys);
  Tracer tracer(kernel);
  kernel.run(sys.find_channel("h"), 20);
  const std::string vcd = tracer.to_vcd();
  EXPECT_NE(vcd.find("proc_P2"), std::string::npos);
  EXPECT_NE(vcd.find("chan_d"), std::string::npos);
  EXPECT_GT(tracer.events().size(), 100u);
}

}  // namespace
}  // namespace ermes::sim
