# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_tmg[1]_include.cmake")
include("/root/repo/build/tests/test_cycle_ratio[1]_include.cmake")
include("/root/repo/build/tests/test_sysmodel[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_motivating[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_ordering_props[1]_include.cmake")
include("/root/repo/build/tests/test_ilp[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_mpeg2[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_safety[1]_include.cmake")
include("/root/repo/build/tests/test_reporting[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
