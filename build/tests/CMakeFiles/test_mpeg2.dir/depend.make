# Empty dependencies file for test_mpeg2.
# This may be replaced when dependencies are built.
