file(REMOVE_RECURSE
  "CMakeFiles/test_mpeg2.dir/test_mpeg2.cpp.o"
  "CMakeFiles/test_mpeg2.dir/test_mpeg2.cpp.o.d"
  "test_mpeg2"
  "test_mpeg2.pdb"
  "test_mpeg2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpeg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
