file(REMOVE_RECURSE
  "CMakeFiles/test_ordering_props.dir/test_ordering_props.cpp.o"
  "CMakeFiles/test_ordering_props.dir/test_ordering_props.cpp.o.d"
  "test_ordering_props"
  "test_ordering_props.pdb"
  "test_ordering_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ordering_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
