# Empty compiler generated dependencies file for test_ordering_props.
# This may be replaced when dependencies are built.
