file(REMOVE_RECURSE
  "CMakeFiles/test_motivating.dir/test_motivating.cpp.o"
  "CMakeFiles/test_motivating.dir/test_motivating.cpp.o.d"
  "test_motivating"
  "test_motivating.pdb"
  "test_motivating[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
