# Empty dependencies file for test_tmg.
# This may be replaced when dependencies are built.
