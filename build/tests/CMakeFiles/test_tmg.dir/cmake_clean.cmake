file(REMOVE_RECURSE
  "CMakeFiles/test_tmg.dir/test_tmg.cpp.o"
  "CMakeFiles/test_tmg.dir/test_tmg.cpp.o.d"
  "test_tmg"
  "test_tmg.pdb"
  "test_tmg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
