# Empty compiler generated dependencies file for test_sysmodel.
# This may be replaced when dependencies are built.
