file(REMOVE_RECURSE
  "CMakeFiles/test_sysmodel.dir/test_sysmodel.cpp.o"
  "CMakeFiles/test_sysmodel.dir/test_sysmodel.cpp.o.d"
  "test_sysmodel"
  "test_sysmodel.pdb"
  "test_sysmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
