file(REMOVE_RECURSE
  "CMakeFiles/test_cycle_ratio.dir/test_cycle_ratio.cpp.o"
  "CMakeFiles/test_cycle_ratio.dir/test_cycle_ratio.cpp.o.d"
  "test_cycle_ratio"
  "test_cycle_ratio.pdb"
  "test_cycle_ratio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
