# Empty compiler generated dependencies file for test_cycle_ratio.
# This may be replaced when dependencies are built.
