file(REMOVE_RECURSE
  "CMakeFiles/ermes_graph.dir/graph/cycles.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/cycles.cpp.o.d"
  "CMakeFiles/ermes_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/ermes_graph.dir/graph/dot.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/dot.cpp.o.d"
  "CMakeFiles/ermes_graph.dir/graph/scc.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/scc.cpp.o.d"
  "CMakeFiles/ermes_graph.dir/graph/topo.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/topo.cpp.o.d"
  "CMakeFiles/ermes_graph.dir/graph/traversal.cpp.o"
  "CMakeFiles/ermes_graph.dir/graph/traversal.cpp.o.d"
  "libermes_graph.a"
  "libermes_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
