
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/cycles.cpp" "src/CMakeFiles/ermes_graph.dir/graph/cycles.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/cycles.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/ermes_graph.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/ermes_graph.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/CMakeFiles/ermes_graph.dir/graph/scc.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/scc.cpp.o.d"
  "/root/repo/src/graph/topo.cpp" "src/CMakeFiles/ermes_graph.dir/graph/topo.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/topo.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/CMakeFiles/ermes_graph.dir/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/ermes_graph.dir/graph/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
