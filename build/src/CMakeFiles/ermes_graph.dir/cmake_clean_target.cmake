file(REMOVE_RECURSE
  "libermes_graph.a"
)
