# Empty dependencies file for ermes_graph.
# This may be replaced when dependencies are built.
