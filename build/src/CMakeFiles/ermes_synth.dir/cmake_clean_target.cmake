file(REMOVE_RECURSE
  "libermes_synth.a"
)
