# Empty dependencies file for ermes_synth.
# This may be replaced when dependencies are built.
