
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generator.cpp" "src/CMakeFiles/ermes_synth.dir/synth/generator.cpp.o" "gcc" "src/CMakeFiles/ermes_synth.dir/synth/generator.cpp.o.d"
  "/root/repo/src/synth/pareto_gen.cpp" "src/CMakeFiles/ermes_synth.dir/synth/pareto_gen.cpp.o" "gcc" "src/CMakeFiles/ermes_synth.dir/synth/pareto_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
