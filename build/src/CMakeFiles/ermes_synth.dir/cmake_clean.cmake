file(REMOVE_RECURSE
  "CMakeFiles/ermes_synth.dir/synth/generator.cpp.o"
  "CMakeFiles/ermes_synth.dir/synth/generator.cpp.o.d"
  "CMakeFiles/ermes_synth.dir/synth/pareto_gen.cpp.o"
  "CMakeFiles/ermes_synth.dir/synth/pareto_gen.cpp.o.d"
  "libermes_synth.a"
  "libermes_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
