file(REMOVE_RECURSE
  "CMakeFiles/ermes_analysis.dir/analysis/buffer_sizing.cpp.o"
  "CMakeFiles/ermes_analysis.dir/analysis/buffer_sizing.cpp.o.d"
  "CMakeFiles/ermes_analysis.dir/analysis/deadlock.cpp.o"
  "CMakeFiles/ermes_analysis.dir/analysis/deadlock.cpp.o.d"
  "CMakeFiles/ermes_analysis.dir/analysis/performance.cpp.o"
  "CMakeFiles/ermes_analysis.dir/analysis/performance.cpp.o.d"
  "CMakeFiles/ermes_analysis.dir/analysis/sensitivity.cpp.o"
  "CMakeFiles/ermes_analysis.dir/analysis/sensitivity.cpp.o.d"
  "CMakeFiles/ermes_analysis.dir/analysis/tmg_builder.cpp.o"
  "CMakeFiles/ermes_analysis.dir/analysis/tmg_builder.cpp.o.d"
  "libermes_analysis.a"
  "libermes_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
