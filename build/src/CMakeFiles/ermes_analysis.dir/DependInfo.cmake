
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/buffer_sizing.cpp" "src/CMakeFiles/ermes_analysis.dir/analysis/buffer_sizing.cpp.o" "gcc" "src/CMakeFiles/ermes_analysis.dir/analysis/buffer_sizing.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/CMakeFiles/ermes_analysis.dir/analysis/deadlock.cpp.o" "gcc" "src/CMakeFiles/ermes_analysis.dir/analysis/deadlock.cpp.o.d"
  "/root/repo/src/analysis/performance.cpp" "src/CMakeFiles/ermes_analysis.dir/analysis/performance.cpp.o" "gcc" "src/CMakeFiles/ermes_analysis.dir/analysis/performance.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/CMakeFiles/ermes_analysis.dir/analysis/sensitivity.cpp.o" "gcc" "src/CMakeFiles/ermes_analysis.dir/analysis/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/tmg_builder.cpp" "src/CMakeFiles/ermes_analysis.dir/analysis/tmg_builder.cpp.o" "gcc" "src/CMakeFiles/ermes_analysis.dir/analysis/tmg_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_tmg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
