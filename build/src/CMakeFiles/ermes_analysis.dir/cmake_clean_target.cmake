file(REMOVE_RECURSE
  "libermes_analysis.a"
)
