# Empty compiler generated dependencies file for ermes_analysis.
# This may be replaced when dependencies are built.
