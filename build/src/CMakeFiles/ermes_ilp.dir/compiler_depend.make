# Empty compiler generated dependencies file for ermes_ilp.
# This may be replaced when dependencies are built.
