file(REMOVE_RECURSE
  "libermes_ilp.a"
)
