file(REMOVE_RECURSE
  "CMakeFiles/ermes_ilp.dir/ilp/branch_and_bound.cpp.o"
  "CMakeFiles/ermes_ilp.dir/ilp/branch_and_bound.cpp.o.d"
  "CMakeFiles/ermes_ilp.dir/ilp/mckp.cpp.o"
  "CMakeFiles/ermes_ilp.dir/ilp/mckp.cpp.o.d"
  "CMakeFiles/ermes_ilp.dir/ilp/model.cpp.o"
  "CMakeFiles/ermes_ilp.dir/ilp/model.cpp.o.d"
  "CMakeFiles/ermes_ilp.dir/ilp/simplex.cpp.o"
  "CMakeFiles/ermes_ilp.dir/ilp/simplex.cpp.o.d"
  "libermes_ilp.a"
  "libermes_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
