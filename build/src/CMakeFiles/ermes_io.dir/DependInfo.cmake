
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/soc_format.cpp" "src/CMakeFiles/ermes_io.dir/io/soc_format.cpp.o" "gcc" "src/CMakeFiles/ermes_io.dir/io/soc_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
