# Empty compiler generated dependencies file for ermes_io.
# This may be replaced when dependencies are built.
