file(REMOVE_RECURSE
  "libermes_io.a"
)
