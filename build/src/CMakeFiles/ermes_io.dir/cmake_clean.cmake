file(REMOVE_RECURSE
  "CMakeFiles/ermes_io.dir/io/soc_format.cpp.o"
  "CMakeFiles/ermes_io.dir/io/soc_format.cpp.o.d"
  "libermes_io.a"
  "libermes_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
