file(REMOVE_RECURSE
  "CMakeFiles/ermes_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/ermes_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/ermes_sim.dir/sim/program.cpp.o"
  "CMakeFiles/ermes_sim.dir/sim/program.cpp.o.d"
  "CMakeFiles/ermes_sim.dir/sim/system_sim.cpp.o"
  "CMakeFiles/ermes_sim.dir/sim/system_sim.cpp.o.d"
  "CMakeFiles/ermes_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/ermes_sim.dir/sim/trace.cpp.o.d"
  "libermes_sim.a"
  "libermes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
