# Empty dependencies file for ermes_sim.
# This may be replaced when dependencies are built.
