file(REMOVE_RECURSE
  "libermes_sim.a"
)
