# Empty compiler generated dependencies file for ermes_mpeg2.
# This may be replaced when dependencies are built.
