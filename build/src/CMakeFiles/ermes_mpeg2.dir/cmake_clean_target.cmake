file(REMOVE_RECURSE
  "libermes_mpeg2.a"
)
