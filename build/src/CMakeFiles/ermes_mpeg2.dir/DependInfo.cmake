
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/mpeg2/characterization.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/characterization.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/characterization.cpp.o.d"
  "/root/repo/src/apps/mpeg2/functional_pipeline.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/functional_pipeline.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/functional_pipeline.cpp.o.d"
  "/root/repo/src/apps/mpeg2/kernels/dct.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/dct.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/dct.cpp.o.d"
  "/root/repo/src/apps/mpeg2/kernels/motion.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/motion.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/motion.cpp.o.d"
  "/root/repo/src/apps/mpeg2/kernels/quant.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/quant.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/quant.cpp.o.d"
  "/root/repo/src/apps/mpeg2/kernels/vlc.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/vlc.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/vlc.cpp.o.d"
  "/root/repo/src/apps/mpeg2/kernels/zigzag.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/zigzag.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/zigzag.cpp.o.d"
  "/root/repo/src/apps/mpeg2/topology.cpp" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/topology.cpp.o" "gcc" "src/CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_tmg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
