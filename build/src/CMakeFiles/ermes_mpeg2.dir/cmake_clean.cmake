file(REMOVE_RECURSE
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/characterization.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/characterization.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/functional_pipeline.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/functional_pipeline.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/dct.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/dct.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/motion.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/motion.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/quant.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/quant.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/vlc.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/vlc.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/zigzag.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/kernels/zigzag.cpp.o.d"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/topology.cpp.o"
  "CMakeFiles/ermes_mpeg2.dir/apps/mpeg2/topology.cpp.o.d"
  "libermes_mpeg2.a"
  "libermes_mpeg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_mpeg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
