file(REMOVE_RECURSE
  "libermes_dse.a"
)
