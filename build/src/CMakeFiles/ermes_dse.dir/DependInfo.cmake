
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/area_recovery.cpp" "src/CMakeFiles/ermes_dse.dir/dse/area_recovery.cpp.o" "gcc" "src/CMakeFiles/ermes_dse.dir/dse/area_recovery.cpp.o.d"
  "/root/repo/src/dse/explorer.cpp" "src/CMakeFiles/ermes_dse.dir/dse/explorer.cpp.o" "gcc" "src/CMakeFiles/ermes_dse.dir/dse/explorer.cpp.o.d"
  "/root/repo/src/dse/report.cpp" "src/CMakeFiles/ermes_dse.dir/dse/report.cpp.o" "gcc" "src/CMakeFiles/ermes_dse.dir/dse/report.cpp.o.d"
  "/root/repo/src/dse/selection.cpp" "src/CMakeFiles/ermes_dse.dir/dse/selection.cpp.o" "gcc" "src/CMakeFiles/ermes_dse.dir/dse/selection.cpp.o.d"
  "/root/repo/src/dse/timing_opt.cpp" "src/CMakeFiles/ermes_dse.dir/dse/timing_opt.cpp.o" "gcc" "src/CMakeFiles/ermes_dse.dir/dse/timing_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_tmg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
