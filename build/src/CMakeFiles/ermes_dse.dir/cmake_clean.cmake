file(REMOVE_RECURSE
  "CMakeFiles/ermes_dse.dir/dse/area_recovery.cpp.o"
  "CMakeFiles/ermes_dse.dir/dse/area_recovery.cpp.o.d"
  "CMakeFiles/ermes_dse.dir/dse/explorer.cpp.o"
  "CMakeFiles/ermes_dse.dir/dse/explorer.cpp.o.d"
  "CMakeFiles/ermes_dse.dir/dse/report.cpp.o"
  "CMakeFiles/ermes_dse.dir/dse/report.cpp.o.d"
  "CMakeFiles/ermes_dse.dir/dse/selection.cpp.o"
  "CMakeFiles/ermes_dse.dir/dse/selection.cpp.o.d"
  "CMakeFiles/ermes_dse.dir/dse/timing_opt.cpp.o"
  "CMakeFiles/ermes_dse.dir/dse/timing_opt.cpp.o.d"
  "libermes_dse.a"
  "libermes_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
