# Empty compiler generated dependencies file for ermes_dse.
# This may be replaced when dependencies are built.
