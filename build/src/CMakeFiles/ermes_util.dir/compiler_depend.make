# Empty compiler generated dependencies file for ermes_util.
# This may be replaced when dependencies are built.
