# Empty dependencies file for ermes_util.
# This may be replaced when dependencies are built.
