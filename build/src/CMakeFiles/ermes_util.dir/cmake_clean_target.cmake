file(REMOVE_RECURSE
  "libermes_util.a"
)
