file(REMOVE_RECURSE
  "CMakeFiles/ermes_util.dir/util/log.cpp.o"
  "CMakeFiles/ermes_util.dir/util/log.cpp.o.d"
  "CMakeFiles/ermes_util.dir/util/period.cpp.o"
  "CMakeFiles/ermes_util.dir/util/period.cpp.o.d"
  "CMakeFiles/ermes_util.dir/util/rng.cpp.o"
  "CMakeFiles/ermes_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ermes_util.dir/util/stopwatch.cpp.o"
  "CMakeFiles/ermes_util.dir/util/stopwatch.cpp.o.d"
  "CMakeFiles/ermes_util.dir/util/table.cpp.o"
  "CMakeFiles/ermes_util.dir/util/table.cpp.o.d"
  "libermes_util.a"
  "libermes_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
