file(REMOVE_RECURSE
  "libermes_ordering.a"
)
