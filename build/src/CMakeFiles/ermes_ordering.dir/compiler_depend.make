# Empty compiler generated dependencies file for ermes_ordering.
# This may be replaced when dependencies are built.
