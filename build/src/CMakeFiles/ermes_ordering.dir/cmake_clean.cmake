file(REMOVE_RECURSE
  "CMakeFiles/ermes_ordering.dir/ordering/baselines.cpp.o"
  "CMakeFiles/ermes_ordering.dir/ordering/baselines.cpp.o.d"
  "CMakeFiles/ermes_ordering.dir/ordering/channel_ordering.cpp.o"
  "CMakeFiles/ermes_ordering.dir/ordering/channel_ordering.cpp.o.d"
  "CMakeFiles/ermes_ordering.dir/ordering/labeling.cpp.o"
  "CMakeFiles/ermes_ordering.dir/ordering/labeling.cpp.o.d"
  "CMakeFiles/ermes_ordering.dir/ordering/local_search.cpp.o"
  "CMakeFiles/ermes_ordering.dir/ordering/local_search.cpp.o.d"
  "CMakeFiles/ermes_ordering.dir/ordering/repair.cpp.o"
  "CMakeFiles/ermes_ordering.dir/ordering/repair.cpp.o.d"
  "libermes_ordering.a"
  "libermes_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
