
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/baselines.cpp" "src/CMakeFiles/ermes_ordering.dir/ordering/baselines.cpp.o" "gcc" "src/CMakeFiles/ermes_ordering.dir/ordering/baselines.cpp.o.d"
  "/root/repo/src/ordering/channel_ordering.cpp" "src/CMakeFiles/ermes_ordering.dir/ordering/channel_ordering.cpp.o" "gcc" "src/CMakeFiles/ermes_ordering.dir/ordering/channel_ordering.cpp.o.d"
  "/root/repo/src/ordering/labeling.cpp" "src/CMakeFiles/ermes_ordering.dir/ordering/labeling.cpp.o" "gcc" "src/CMakeFiles/ermes_ordering.dir/ordering/labeling.cpp.o.d"
  "/root/repo/src/ordering/local_search.cpp" "src/CMakeFiles/ermes_ordering.dir/ordering/local_search.cpp.o" "gcc" "src/CMakeFiles/ermes_ordering.dir/ordering/local_search.cpp.o.d"
  "/root/repo/src/ordering/repair.cpp" "src/CMakeFiles/ermes_ordering.dir/ordering/repair.cpp.o" "gcc" "src/CMakeFiles/ermes_ordering.dir/ordering/repair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_tmg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
