# Empty compiler generated dependencies file for ermes_tmg.
# This may be replaced when dependencies are built.
