file(REMOVE_RECURSE
  "CMakeFiles/ermes_tmg.dir/tmg/brute_force.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/brute_force.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/cycle_ratio.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/cycle_ratio.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/dot.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/dot.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/howard.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/howard.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/karp.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/karp.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/liveness.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/liveness.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/marked_graph.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/marked_graph.cpp.o.d"
  "CMakeFiles/ermes_tmg.dir/tmg/token_game.cpp.o"
  "CMakeFiles/ermes_tmg.dir/tmg/token_game.cpp.o.d"
  "libermes_tmg.a"
  "libermes_tmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_tmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
