
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmg/brute_force.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/brute_force.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/brute_force.cpp.o.d"
  "/root/repo/src/tmg/cycle_ratio.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/cycle_ratio.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/cycle_ratio.cpp.o.d"
  "/root/repo/src/tmg/dot.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/dot.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/dot.cpp.o.d"
  "/root/repo/src/tmg/howard.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/howard.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/howard.cpp.o.d"
  "/root/repo/src/tmg/karp.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/karp.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/karp.cpp.o.d"
  "/root/repo/src/tmg/liveness.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/liveness.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/liveness.cpp.o.d"
  "/root/repo/src/tmg/marked_graph.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/marked_graph.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/marked_graph.cpp.o.d"
  "/root/repo/src/tmg/token_game.cpp" "src/CMakeFiles/ermes_tmg.dir/tmg/token_game.cpp.o" "gcc" "src/CMakeFiles/ermes_tmg.dir/tmg/token_game.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
