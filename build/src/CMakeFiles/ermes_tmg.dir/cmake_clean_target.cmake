file(REMOVE_RECURSE
  "libermes_tmg.a"
)
