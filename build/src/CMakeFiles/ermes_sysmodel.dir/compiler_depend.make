# Empty compiler generated dependencies file for ermes_sysmodel.
# This may be replaced when dependencies are built.
