
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysmodel/builder.cpp" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/builder.cpp.o" "gcc" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/builder.cpp.o.d"
  "/root/repo/src/sysmodel/implementation.cpp" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/implementation.cpp.o" "gcc" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/implementation.cpp.o.d"
  "/root/repo/src/sysmodel/stats.cpp" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/stats.cpp.o" "gcc" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/stats.cpp.o.d"
  "/root/repo/src/sysmodel/system.cpp" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/system.cpp.o" "gcc" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/system.cpp.o.d"
  "/root/repo/src/sysmodel/validate.cpp" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/validate.cpp.o" "gcc" "src/CMakeFiles/ermes_sysmodel.dir/sysmodel/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
