file(REMOVE_RECURSE
  "libermes_sysmodel.a"
)
