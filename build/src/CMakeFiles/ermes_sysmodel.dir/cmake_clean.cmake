file(REMOVE_RECURSE
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/builder.cpp.o"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/builder.cpp.o.d"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/implementation.cpp.o"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/implementation.cpp.o.d"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/stats.cpp.o"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/stats.cpp.o.d"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/system.cpp.o"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/system.cpp.o.d"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/validate.cpp.o"
  "CMakeFiles/ermes_sysmodel.dir/sysmodel/validate.cpp.o.d"
  "libermes_sysmodel.a"
  "libermes_sysmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
