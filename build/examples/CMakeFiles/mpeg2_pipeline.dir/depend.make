# Empty dependencies file for mpeg2_pipeline.
# This may be replaced when dependencies are built.
