file(REMOVE_RECURSE
  "CMakeFiles/mpeg2_pipeline.dir/mpeg2_pipeline.cpp.o"
  "CMakeFiles/mpeg2_pipeline.dir/mpeg2_pipeline.cpp.o.d"
  "mpeg2_pipeline"
  "mpeg2_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg2_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
