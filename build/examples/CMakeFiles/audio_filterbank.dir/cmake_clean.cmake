file(REMOVE_RECURSE
  "CMakeFiles/audio_filterbank.dir/audio_filterbank.cpp.o"
  "CMakeFiles/audio_filterbank.dir/audio_filterbank.cpp.o.d"
  "audio_filterbank"
  "audio_filterbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_filterbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
