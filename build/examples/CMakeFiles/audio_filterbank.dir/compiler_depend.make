# Empty compiler generated dependencies file for audio_filterbank.
# This may be replaced when dependencies are built.
