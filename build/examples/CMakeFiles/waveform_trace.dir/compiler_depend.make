# Empty compiler generated dependencies file for waveform_trace.
# This may be replaced when dependencies are built.
