file(REMOVE_RECURSE
  "CMakeFiles/waveform_trace.dir/waveform_trace.cpp.o"
  "CMakeFiles/waveform_trace.dir/waveform_trace.cpp.o.d"
  "waveform_trace"
  "waveform_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
