# Empty dependencies file for mpeg2_dse.
# This may be replaced when dependencies are built.
