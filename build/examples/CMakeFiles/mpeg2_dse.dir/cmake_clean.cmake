file(REMOVE_RECURSE
  "CMakeFiles/mpeg2_dse.dir/mpeg2_dse.cpp.o"
  "CMakeFiles/mpeg2_dse.dir/mpeg2_dse.cpp.o.d"
  "mpeg2_dse"
  "mpeg2_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg2_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
