file(REMOVE_RECURSE
  "CMakeFiles/soc_generator.dir/soc_generator.cpp.o"
  "CMakeFiles/soc_generator.dir/soc_generator.cpp.o.d"
  "soc_generator"
  "soc_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
