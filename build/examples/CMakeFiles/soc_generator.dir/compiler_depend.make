# Empty compiler generated dependencies file for soc_generator.
# This may be replaced when dependencies are built.
