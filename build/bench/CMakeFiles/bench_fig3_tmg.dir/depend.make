# Empty dependencies file for bench_fig3_tmg.
# This may be replaced when dependencies are built.
