file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tmg.dir/bench_fig3_tmg.cpp.o"
  "CMakeFiles/bench_fig3_tmg.dir/bench_fig3_tmg.cpp.o.d"
  "bench_fig3_tmg"
  "bench_fig3_tmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
