file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_explorations.dir/bench_fig6_explorations.cpp.o"
  "CMakeFiles/bench_fig6_explorations.dir/bench_fig6_explorations.cpp.o.d"
  "bench_fig6_explorations"
  "bench_fig6_explorations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_explorations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
