# Empty dependencies file for bench_fig6_explorations.
# This may be replaced when dependencies are built.
