# Empty dependencies file for bench_fig4_motivating.
# This may be replaced when dependencies are built.
