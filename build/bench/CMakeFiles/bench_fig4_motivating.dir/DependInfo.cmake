
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_motivating.cpp" "bench/CMakeFiles/bench_fig4_motivating.dir/bench_fig4_motivating.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_motivating.dir/bench_fig4_motivating.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ermes_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_mpeg2.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_tmg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_sysmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
