file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_mean.dir/bench_cycle_mean.cpp.o"
  "CMakeFiles/bench_cycle_mean.dir/bench_cycle_mean.cpp.o.d"
  "bench_cycle_mean"
  "bench_cycle_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
