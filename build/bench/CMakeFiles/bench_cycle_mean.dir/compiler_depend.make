# Empty compiler generated dependencies file for bench_cycle_mean.
# This may be replaced when dependencies are built.
