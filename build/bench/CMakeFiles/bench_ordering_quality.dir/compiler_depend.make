# Empty compiler generated dependencies file for bench_ordering_quality.
# This may be replaced when dependencies are built.
