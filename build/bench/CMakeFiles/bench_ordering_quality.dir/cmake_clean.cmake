file(REMOVE_RECURSE
  "CMakeFiles/bench_ordering_quality.dir/bench_ordering_quality.cpp.o"
  "CMakeFiles/bench_ordering_quality.dir/bench_ordering_quality.cpp.o.d"
  "bench_ordering_quality"
  "bench_ordering_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ordering_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
