file(REMOVE_RECURSE
  "CMakeFiles/bench_m1_reordering.dir/bench_m1_reordering.cpp.o"
  "CMakeFiles/bench_m1_reordering.dir/bench_m1_reordering.cpp.o.d"
  "bench_m1_reordering"
  "bench_m1_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
