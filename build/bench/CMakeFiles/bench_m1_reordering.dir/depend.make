# Empty dependencies file for bench_m1_reordering.
# This may be replaced when dependencies are built.
