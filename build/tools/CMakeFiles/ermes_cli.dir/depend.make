# Empty dependencies file for ermes_cli.
# This may be replaced when dependencies are built.
