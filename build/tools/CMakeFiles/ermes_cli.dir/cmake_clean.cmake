file(REMOVE_RECURSE
  "CMakeFiles/ermes_cli.dir/ermes_cli.cpp.o"
  "CMakeFiles/ermes_cli.dir/ermes_cli.cpp.o.d"
  "ermes"
  "ermes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ermes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
