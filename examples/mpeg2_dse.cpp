// Design-space exploration of the MPEG-2 encoder case study: the full
// ERMES methodology (Fig. 5 of the paper) driven from the command line.
//
//   mpeg2_dse [target_kcycles]
//
// Starts from the area-lean M2 configuration, runs the iterative
// {performance analysis -> IP selection -> channel reordering} loop toward
// the target cycle time, and prints the Fig. 6-style (CT, area) series.

#include <cstdio>
#include <cstdlib>

#include "analysis/performance.h"
#include "apps/mpeg2/characterization.h"
#include "dse/explorer.h"
#include "util/table.h"

using namespace ermes;

int main(int argc, char** argv) {
  sysmodel::SystemModel sys = mpeg2::make_characterized_mpeg2_encoder();
  const analysis::PerformanceReport initial = analysis::analyze_system(sys);
  std::printf("MPEG-2 encoder: %d processes, %d channels, %zu Pareto points\n",
              sys.num_processes() - 2, sys.num_channels(),
              sys.total_pareto_points());
  std::printf("start (M2): CT %s KCycles, area %s mm2\n\n",
              util::format_double(initial.cycle_time / 1e3, 0).c_str(),
              util::format_double(sys.total_area(), 3).c_str());

  dse::ExplorerOptions options;
  if (argc > 1) {
    options.target_cycle_time = std::atoll(argv[1]) * 1000;
  } else {
    options.target_cycle_time =
        static_cast<std::int64_t>(initial.cycle_time * 0.6);
  }
  std::printf("target cycle time: %s KCycles\n\n",
              util::format_double(
                  static_cast<double>(options.target_cycle_time) / 1e3, 0)
                  .c_str());

  const dse::ExplorationResult result = dse::explore(sys, options);

  util::Table table(
      {"iter", "action", "CT (KCycles)", "area (mm2)", "slack", "critical"});
  for (const dse::IterationRecord& rec : result.history) {
    std::string critical;
    for (std::size_t i = 0; i < rec.critical_processes.size() && i < 4; ++i) {
      critical += (i ? "," : "") +
                  sys.process_name(rec.critical_processes[i]);
    }
    if (rec.critical_processes.size() > 4) critical += ",...";
    table.add_row({std::to_string(rec.iteration), dse::to_string(rec.action),
                   util::format_double(rec.cycle_time / 1e3, 0),
                   util::format_double(rec.area, 3),
                   util::format_double(static_cast<double>(rec.slack) / 1e3, 0),
                   critical});
  }
  std::printf("%s", table.to_text(0).c_str());

  const dse::IterationRecord& last = result.history.back();
  std::printf("\n%s after %zu iterations: CT %s KCycles, area %s mm2 (%s)\n",
              result.met_target ? "target met" : "target NOT met",
              result.history.size() - 1,
              util::format_double(last.cycle_time / 1e3, 0).c_str(),
              util::format_double(last.area, 3).c_str(),
              result.converged ? "converged" : "iteration cap");

  // Show the selected implementation of each process in the final system.
  std::printf("\nfinal IP selection (process: implementation, latency):\n");
  const sysmodel::SystemModel& final_sys = result.final_system;
  for (sysmodel::ProcessId p = 0; p < final_sys.num_processes(); ++p) {
    if (!final_sys.has_implementations(p)) continue;
    const auto idx = final_sys.selected_implementation(p);
    std::printf("  %-12s %s (%s KCycles)\n",
                final_sys.process_name(p).c_str(),
                final_sys.implementations(p).at(idx).name.c_str(),
                util::format_double(
                    static_cast<double>(final_sys.latency(p)) / 1e3, 0)
                    .c_str());
  }
  return 0;
}
