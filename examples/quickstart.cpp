// Quickstart: model a small communication-centric SoC, analyze its
// performance, let ERMES order the channel accesses, and check the result
// against the cycle-accurate simulator.
//
// The system is the motivating example of the DAC'14 paper (Fig. 2): five
// processes between a testbench source and sink, communicating through
// eight blocking point-to-point channels.

#include <cstdio>

#include "analysis/performance.h"
#include "util/table.h"
#include "ordering/channel_ordering.h"
#include "sim/system_sim.h"
#include "sysmodel/system.h"
#include "sysmodel/validate.h"

using namespace ermes;

int main() {
  // 1. Describe the system: processes with computation latencies...
  sysmodel::SystemModel sys;
  const auto src = sys.add_process("src", 1);
  const auto p2 = sys.add_process("P2", 5);
  const auto p3 = sys.add_process("P3", 2);
  const auto p4 = sys.add_process("P4", 1);
  const auto p5 = sys.add_process("P5", 2);
  const auto p6 = sys.add_process("P6", 2);
  const auto snk = sys.add_process("snk", 1);

  // ... and blocking channels with their minimum transfer latencies.
  sys.add_channel("a", src, p2, 2);
  sys.add_channel("b", p2, p3, 1);
  sys.add_channel("c", p3, p4, 2);
  sys.add_channel("d", p2, p6, 3);
  sys.add_channel("e", p4, p6, 1);
  sys.add_channel("f", p2, p5, 1);
  sys.add_channel("g", p5, p6, 2);
  sys.add_channel("h", p6, snk, 1);

  // 2. Validate the specification.
  const sysmodel::ValidationReport validation = sysmodel::validate(sys);
  std::printf("validation: %s\n", validation.ok() ? "ok" : "FAILED");

  // 3. Analyze the current (insertion) order: cycle time and critical cycle
  //    come from the Timed Marked Graph model, no simulation needed.
  analysis::PerformanceReport before = analysis::analyze_system(sys);
  std::printf("designer order:  %s\n",
              analysis::summarize(before, sys).c_str());

  // 4. Run the channel-ordering algorithm (Algorithm 1 of the paper).
  sys = ordering::with_optimal_ordering(sys);
  analysis::PerformanceReport after = analysis::analyze_system(sys);
  std::printf("ERMES order:     %s\n", analysis::summarize(after, sys).c_str());

  // 5. Cross-check with the cycle-accurate rendezvous simulation.
  const sim::SystemSimResult simulated = sim::simulate_system(sys, 200);
  std::printf("simulation:      %s cycles/item over %lld items (%s)\n",
              util::format_double(simulated.measured_cycle_time).c_str(),
              static_cast<long long>(simulated.items),
              simulated.measured_cycle_time == after.cycle_time
                  ? "matches the model exactly"
                  : "MISMATCH");

  // 6. The new I/O orders, ready to be folded back into the SystemC code.
  for (sysmodel::ProcessId p = 0; p < sys.num_processes(); ++p) {
    if (sys.input_order(p).size() < 2 && sys.output_order(p).size() < 2) {
      continue;
    }
    std::printf("%s: gets(", sys.process_name(p).c_str());
    for (std::size_t i = 0; i < sys.input_order(p).size(); ++i) {
      std::printf("%s%s", i ? "," : "",
                  sys.channel_name(sys.input_order(p)[i]).c_str());
    }
    std::printf(") puts(");
    for (std::size_t i = 0; i < sys.output_order(p).size(); ++i) {
      std::printf("%s%s", i ? "," : "",
                  sys.channel_name(sys.output_order(p)[i]).c_str());
    }
    std::printf(")\n");
  }
  return 0;
}
