// Audio filterbank SoC: a second domain-specific scenario. An N-band
// analysis/synthesis filterbank (analysis split -> per-band biquad chains of
// very different depths -> synthesis merge) is the textbook reconvergent
// fan-out the paper's motivating example abstracts: the merge process's get
// order and the split's put order decide whether the slow band serializes
// everybody.
//
//   audio_filterbank [bands]

#include <cstdio>
#include <cstdlib>

#include "analysis/buffer_sizing.h"
#include "analysis/performance.h"
#include "analysis/sensitivity.h"
#include "ordering/channel_ordering.h"
#include "sim/system_sim.h"
#include "sysmodel/stats.h"
#include "sysmodel/system.h"
#include "util/table.h"

using namespace ermes;
using sysmodel::ProcessId;
using sysmodel::SystemModel;

namespace {

SystemModel make_filterbank(int bands) {
  SystemModel sys;
  const ProcessId adc = sys.add_process("adc", 2);
  const ProcessId split = sys.add_process("analysis_split", 4);
  const ProcessId merge = sys.add_process("synthesis_merge", 4);
  const ProcessId dac = sys.add_process("dac", 2);
  sys.add_channel("pcm_in", adc, split, 1);
  sys.add_channel("pcm_out", merge, dac, 1);
  for (int b = 0; b < bands; ++b) {
    // Lower bands run longer biquad cascades (narrower transition bands).
    const std::int64_t stages = 2 + (bands - b);
    const ProcessId filter = sys.add_process(
        "band" + std::to_string(b), 8 * stages);
    sys.add_channel("a" + std::to_string(b), split, filter, 2);
    sys.add_channel("s" + std::to_string(b), filter, merge, 2);
  }
  return sys;
}

double cycle_time(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int bands = argc > 1 ? std::atoi(argv[1]) : 6;
  SystemModel sys = make_filterbank(bands);
  std::printf("%s\n\n", sysmodel::to_string(sysmodel::compute_stats(sys))
                            .c_str());

  util::Table table({"ordering", "cycle time", "simulated"});
  auto row = [&](const char* name, const SystemModel& s) {
    const double ct = cycle_time(s);
    const sim::SystemSimResult sim = sim::simulate_system(s, 200);
    table.add_row({name,
                   ct < 0 ? "DEADLOCK" : util::format_double(ct).c_str(),
                   sim.deadlocked
                       ? "DEADLOCK"
                       : util::format_double(sim.measured_cycle_time)});
  };

  row("designer (band 0 first)", sys);

  // Adversarial: the split feeds the slowest band *last* while the merge
  // still reads it *first* — every band serializes behind band 0's feed.
  SystemModel worst = sys;
  {
    const ProcessId split = worst.find_process("analysis_split");
    auto puts = worst.output_order(split);
    std::reverse(puts.begin(), puts.end());
    worst.set_output_order(split, puts);
  }
  row("adversarial split order", worst);

  SystemModel ordered = ordering::with_optimal_ordering(sys);
  row("Algorithm 1", ordered);
  std::printf("%s\n", table.to_text(0).c_str());

  // Where would more HLS effort help?
  const analysis::SensitivityReport sensitivity =
      analysis::latency_sensitivity(ordered);
  std::printf("most sensitive process: %s (CT gain %s per latency cycle)\n",
              ordered.process_name(sensitivity.processes[0].process).c_str(),
              util::format_double(
                  sensitivity.processes[0].ct_gain_per_cycle, 2)
                  .c_str());

  // And how much does a little buffering buy on top?
  SystemModel buffered = ordered;
  const analysis::SizingResult sized = analysis::size_for_cycle_time(
      buffered, static_cast<std::int64_t>(cycle_time(ordered)), 32);
  if (sized.slots_added > 0) {
    std::printf("buffer sizing: %lld slots -> CT %s\n",
                static_cast<long long>(sized.slots_added),
                util::format_double(sized.cycle_time).c_str());
  } else {
    std::printf("buffer sizing: no improvement available\n");
  }
  return 0;
}
