// Deadlock doctor: take a system whose designer-chosen statement order
// deadlocks (the exact scenario of the paper's Section 2), diagnose the
// circular wait both analytically (token-free TMG cycle) and dynamically
// (stalled rendezvous simulation), and repair it.

#include <cstdio>

#include "analysis/deadlock.h"
#include "analysis/performance.h"
#include "util/table.h"
#include "ordering/channel_ordering.h"
#include "sim/system_sim.h"
#include "sysmodel/builder.h"

using namespace ermes;

int main() {
  sysmodel::SystemModel sys = sysmodel::make_dac14_motivating_example();

  // The order a designer might accidentally write (paper Section 2):
  // P2 writes b, then d, then f; P6 reads g, then d, then e.
  sysmodel::apply_motivating_orders(sys, {"b", "d", "f"}, {"g", "d", "e"});

  std::printf("== analytic diagnosis (TMG liveness) ==\n");
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  if (report.live) {
    std::printf("system is live -- nothing to do\n");
    return 0;
  }
  const analysis::DeadlockDiagnosis diag = analysis::diagnose_system(sys);
  std::printf("circular wait: %s\n\n", analysis::to_string(diag, sys).c_str());

  std::printf("== dynamic confirmation (rendezvous simulation) ==\n");
  const sim::SystemSimResult simulated = sim::simulate_system(sys, 10);
  if (simulated.deadlocked) {
    std::printf("simulation stalls at cycle %lld; blocked processes:",
                static_cast<long long>(simulated.deadlock.at_cycle));
    for (std::size_t i = 0; i < simulated.deadlock.processes.size(); ++i) {
      std::printf(" %s@%s",
                  sys.process_name(simulated.deadlock.processes[i]).c_str(),
                  sys.channel_name(simulated.deadlock.channels[i]).c_str());
    }
    std::printf("\n\n");
  }

  std::printf("== repair (Algorithm 1) ==\n");
  sys = ordering::with_optimal_ordering(sys);
  const analysis::PerformanceReport fixed = analysis::analyze_system(sys);
  std::printf("after reordering: %s\n",
              analysis::summarize(fixed, sys).c_str());
  const sim::SystemSimResult rerun = sim::simulate_system(sys, 100);
  std::printf("simulation now runs at %s cycles/item (deadlocked: %s)\n",
              util::format_double(rerun.measured_cycle_time).c_str(),
              rerun.deadlocked ? "yes" : "no");
  return 0;
}
