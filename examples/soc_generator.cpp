// Synthetic SoC playground: generate a random communication-centric SoC
// (feedback loops, reconvergent paths, Pareto-characterized processes),
// then run the whole ERMES flow on it — ordering, analysis, DSE — and
// compare ordering strategies.
//
//   soc_generator [processes channels seed]

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "analysis/performance.h"
#include "dse/explorer.h"
#include "ordering/baselines.h"
#include "ordering/channel_ordering.h"
#include "ordering/local_search.h"
#include "synth/generator.h"
#include "synth/pareto_gen.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ermes;
using sysmodel::SystemModel;

namespace {

double cost(const SystemModel& sys) {
  const analysis::PerformanceReport report = analysis::analyze_system(sys);
  return report.live ? report.cycle_time
                     : std::numeric_limits<double>::infinity();
}

std::string show(double ct) {
  return ct == std::numeric_limits<double>::infinity()
             ? "DEADLOCK"
             : util::format_double(ct, 0);
}

}  // namespace

int main(int argc, char** argv) {
  synth::GeneratorConfig config;
  config.num_processes = argc > 1 ? std::atoi(argv[1]) : 64;
  config.num_channels = argc > 2 ? std::atoi(argv[2]) : 112;
  config.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;
  config.feedback_fraction = 0.15;

  SystemModel sys = synth::generate_soc(config);
  const std::size_t points = synth::attach_pareto_sets(sys, config.seed + 1);
  std::printf("generated SoC: %d processes, %d channels, %zu Pareto points "
              "(seed %llu)\n\n",
              sys.num_processes(), sys.num_channels(), points,
              static_cast<unsigned long long>(config.seed));

  // Compare ordering strategies on the same system.
  util::Table table({"ordering strategy", "cycle time"});
  {
    SystemModel s = sys;
    util::Rng rng(99);
    ordering::apply_random_ordering(s, rng);
    table.add_row({"random", show(cost(s))});
  }
  {
    SystemModel s = sys;
    ordering::apply_conservative_ordering(s);
    table.add_row({"conservative (unit latencies)", show(cost(s))});
  }
  SystemModel ordered = ordering::with_optimal_ordering(sys);
  table.add_row({"Algorithm 1", show(cost(ordered))});
  {
    SystemModel s = ordered;
    const ordering::LocalSearchResult hc = ordering::hill_climb_ordering(s);
    table.add_row({"Algorithm 1 + hill-climb",
                   show(hc.final_cycle_time)});
  }
  std::printf("%s\n", table.to_text(0).c_str());

  // Drive a timing-oriented exploration.
  const double ct0 = cost(ordered);
  dse::ExplorerOptions options;
  options.target_cycle_time = static_cast<std::int64_t>(ct0 * 0.7);
  std::printf("exploring toward TCT = %s (70%% of current)...\n",
              util::format_double(
                  static_cast<double>(options.target_cycle_time), 0)
                  .c_str());
  const dse::ExplorationResult result = dse::explore(ordered, options);
  for (const dse::IterationRecord& rec : result.history) {
    std::printf("  iter %d [%s] CT %s area %s\n", rec.iteration,
                dse::to_string(rec.action),
                util::format_double(rec.cycle_time, 0).c_str(),
                util::format_double(rec.area, 2).c_str());
  }
  std::printf("%s\n", result.met_target ? "target met" : "target not met");
  return 0;
}
