// Waveform tracing: run the motivating example under two orderings and dump
// VCD waveforms (open them in GTKWave to *see* the stalls the channel
// ordering removes).
//
//   waveform_trace [out_prefix]

#include <cstdio>
#include <fstream>
#include <string>

#include "ordering/channel_ordering.h"
#include "sim/system_sim.h"
#include "sim/trace.h"
#include "util/table.h"
#include "sysmodel/builder.h"

using namespace ermes;

namespace {

void trace_run(const sysmodel::SystemModel& sys, const std::string& path) {
  sim::Kernel kernel = sim::build_kernel(sys);
  sim::Tracer tracer(kernel);
  const sim::RunResult run = kernel.run(sys.find_channel("h"), 40);
  std::ofstream out(path);
  out << tracer.to_vcd();
  std::int64_t stall_total = 0;
  for (sysmodel::ProcessId p = 0; p < sys.num_processes(); ++p) {
    stall_total += kernel.process(p).stall_cycles;
  }
  std::printf("  %-24s %s cycles/item, %lld stall cycles, %zu events -> %s\n",
              path.c_str(),
              util::format_double(run.measured_cycle_time).c_str(),
              static_cast<long long>(stall_total), tracer.events().size(),
              path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "motivating";

  std::printf("tracing 40 items through the DAC'14 motivating example\n");
  sysmodel::SystemModel suboptimal = sysmodel::make_dac14_motivating_example();
  sysmodel::apply_motivating_orders(suboptimal, {"f", "b", "d"},
                                    {"e", "g", "d"});
  trace_run(suboptimal, prefix + "_suboptimal.vcd");

  sysmodel::SystemModel optimal =
      ordering::with_optimal_ordering(suboptimal);
  trace_run(optimal, prefix + "_optimal.vcd");

  std::printf("open the .vcd files in GTKWave: proc_* shows "
              "ready/computing/waiting/transferring, chan_* the transfers\n");
  return 0;
}
