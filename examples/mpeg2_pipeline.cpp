// Functional MPEG-2-style pipeline: real DCT / quantization / VLC / motion
// estimation kernels running as concurrent processes on the blocking-
// rendezvous simulation kernel, with the reconstruction loop closed through
// a primed frame store — and a full decoder at the sink that verifies the
// stream (PSNR against the source).
//
//   mpeg2_pipeline [width height frames qscale]

#include <cstdio>
#include <cstdlib>

#include "analysis/performance.h"
#include "apps/mpeg2/functional_pipeline.h"
#include "util/table.h"
#include "ordering/channel_ordering.h"
#include "sysmodel/system.h"

using namespace ermes;

int main(int argc, char** argv) {
  mpeg2::PipelineConfig config;
  if (argc > 2) {
    config.width = std::atoi(argv[1]);
    config.height = std::atoi(argv[2]);
  }
  if (argc > 3) config.frames = std::atoi(argv[3]);
  if (argc > 4) config.qscale = std::atoi(argv[4]);

  std::printf("functional pipeline: %dx%d, %d frames, qscale %d\n",
              config.width, config.height, config.frames, config.qscale);

  // The analytic side: model, ordering, predicted throughput.
  sysmodel::SystemModel model = mpeg2::make_functional_pipeline_model(config);
  std::printf("model: %d processes, %d channels\n", model.num_processes(),
              model.num_channels());
  const analysis::PerformanceReport unordered =
      analysis::analyze_system(model);
  model = ordering::with_optimal_ordering(model);
  const analysis::PerformanceReport ordered = analysis::analyze_system(model);
  std::printf("predicted cycle time: %s -> %s cycles/block after ordering\n",
              util::format_double(unordered.cycle_time).c_str(),
              util::format_double(ordered.cycle_time).c_str());

  // The functional side: push real pixels through the blocking channels.
  const mpeg2::PipelineResult result = mpeg2::run_functional_pipeline(config);
  if (result.deadlocked) {
    std::printf("DEADLOCK during simulation\n");
    return 1;
  }
  const double pixels =
      static_cast<double>(config.width) * config.height * config.frames;
  std::printf("encoded %lld blocks in %lld cycles "
              "(measured %s cycles/block, model %s)\n",
              static_cast<long long>(result.blocks_encoded),
              static_cast<long long>(result.cycles),
              util::format_double(result.measured_cycle_time).c_str(),
              util::format_double(result.predicted_cycle_time).c_str());
  std::printf("bitstream: %lld bits (%s bits/pixel)\n",
              static_cast<long long>(result.total_bits),
              util::format_double(
                  static_cast<double>(result.total_bits) / pixels, 3)
                  .c_str());
  std::printf("decoder PSNR vs source: %s dB\n",
              util::format_double(result.psnr_db, 2).c_str());
  return 0;
}
